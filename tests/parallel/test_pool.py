"""WorkerPool: scheduling, failure isolation, retries, timeouts, fallback.

The crash/timeout paths exercise real worker processes (with sub-second
timeouts so CI stays fast); the semantic properties are also checked on
the in-process serial fallback, which must behave identically for
everything it can express.
"""

import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.parallel import Task, TaskOutcome, WorkerPool, cpu_workers
from repro.telemetry import default_registry


# ---------------------------------------------------------------- tasks
# Module-level so they stay picklable under any start method.

def square(x):
    return x * x


def report_pid():
    return os.getpid()


def boom(x):
    raise ValueError(f"bad point {x}")


def hard_crash():
    os._exit(13)  # simulates a segfaulting worker: no exception, no cleanup


def crash_once(flag_path):
    """Crash on the first attempt, succeed on the retry."""
    if not os.path.exists(flag_path):
        with open(flag_path, "w") as handle:
            handle.write("attempted")
        os._exit(13)
    return "recovered"


def sleep_forever():
    time.sleep(60)


def count_calls(x):
    default_registry().counter("pooltest.calls").inc()
    default_registry().histogram("pooltest.values").observe(x)
    return x


def return_unpicklable():
    return lambda: None


class TestHappyPath:
    def test_map_preserves_order(self):
        pool = WorkerPool(max_workers=3)
        outcomes = pool.map(square, [{"x": i} for i in range(10)])
        assert [o.value for o in outcomes] == [i * i for i in range(10)]
        assert all(o.ok and o.index == i for i, o in enumerate(outcomes))

    def test_runs_in_separate_processes(self):
        pool = WorkerPool(max_workers=2, chunk_size=1)
        outcomes = pool.run([Task(report_pid) for _ in range(4)])
        assert all(o.value != os.getpid() for o in outcomes)

    def test_empty_task_list(self):
        assert WorkerPool(max_workers=2).run([]) == []

    def test_chunked_scheduling_covers_everything(self):
        pool = WorkerPool(max_workers=2, chunk_size=3)
        outcomes = pool.map(square, [{"x": i} for i in range(8)])
        assert [o.value for o in outcomes] == [i * i for i in range(8)]

    def test_auto_worker_detection(self):
        assert WorkerPool().max_workers == cpu_workers() >= 1


class TestFailureIsolation:
    def test_exception_becomes_failure_record(self):
        pool = WorkerPool(max_workers=2)
        outcomes = pool.run([Task(square, (1,)), Task(boom, (2,)),
                             Task(square, (3,))])
        assert [o.ok for o in outcomes] == [True, False, True]
        failed = outcomes[1]
        assert failed.error_kind == "exception"
        assert "bad point 2" in failed.error
        assert failed.attempts == 1  # exceptions are deterministic: no retry

    def test_crash_does_not_kill_siblings(self):
        pool = WorkerPool(max_workers=2, retries=1, chunk_size=2)
        outcomes = pool.run([Task(square, (1,)), Task(hard_crash),
                             Task(square, (3,)), Task(square, (4,))])
        assert [o.ok for o in outcomes] == [True, False, True, True]
        assert outcomes[1].error_kind == "crash"
        assert "exitcode" in outcomes[1].error

    def test_crash_retry_is_bounded(self):
        pool = WorkerPool(max_workers=2, retries=2)
        outcome = pool.run([Task(hard_crash)])[0]
        assert not outcome.ok
        assert outcome.attempts == 3  # 1 first try + 2 retries

    def test_zero_retries(self):
        pool = WorkerPool(max_workers=2, retries=0)
        outcome = pool.run([Task(hard_crash)])[0]
        assert not outcome.ok and outcome.attempts == 1

    def test_crash_then_recover(self, tmp_path):
        flag = str(tmp_path / "attempted.flag")
        pool = WorkerPool(max_workers=2, retries=1)
        outcome = pool.run([Task(crash_once, (flag,))])[0]
        assert outcome.ok and outcome.value == "recovered"
        assert outcome.attempts == 2

    def test_unpicklable_result_is_reported_not_fatal(self):
        pool = WorkerPool(max_workers=2)
        outcomes = pool.run([Task(return_unpicklable), Task(square, (2,))])
        assert not outcomes[0].ok
        assert "unpicklable" in outcomes[0].error
        assert outcomes[1].ok and outcomes[1].value == 4


class TestTimeouts:
    def test_timeout_is_reported_not_hung(self):
        pool = WorkerPool(max_workers=2, timeout=0.3, retries=0)
        start = time.perf_counter()
        outcomes = pool.run([Task(sleep_forever), Task(square, (2,))])
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0  # far below the task's 60s sleep
        assert not outcomes[0].ok and outcomes[0].error_kind == "timeout"
        assert outcomes[1].ok and outcomes[1].value == 4

    def test_timeout_retry_bounded(self):
        pool = WorkerPool(max_workers=2, timeout=0.2, retries=1)
        outcome = pool.run([Task(sleep_forever)])[0]
        assert not outcome.ok
        assert outcome.error_kind == "timeout"
        assert outcome.attempts == 2


class TestSerialFallback:
    def test_single_worker_runs_in_process(self):
        outcomes = WorkerPool(max_workers=1).run([Task(report_pid)])
        assert outcomes[0].value == os.getpid()

    def test_serial_failure_semantics_match(self):
        outcomes = WorkerPool(max_workers=1).run(
            [Task(square, (1,)), Task(boom, (2,)), Task(square, (3,))])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error_kind == "exception"
        assert "bad point 2" in outcomes[1].error

    def test_unpicklable_tasks_fall_back_to_serial(self):
        pool = WorkerPool(max_workers=2, start_method="spawn")
        outcomes = pool.run([Task(lambda: os.getpid())])
        assert outcomes[0].ok and outcomes[0].value == os.getpid()

    def test_serial_metrics_flow_into_parent_registry(self):
        registry = default_registry()
        registry.counter("pooltest.calls").reset()
        WorkerPool(max_workers=1).map(count_calls, [{"x": i} for i in range(3)])
        assert registry.counter("pooltest.calls").value == 3.0


class TestTelemetryShipBack:
    def test_worker_metrics_merge_into_parent(self):
        registry = default_registry()
        registry.counter("pooltest.calls").reset()
        registry.histogram("pooltest.values").reset()
        pool = WorkerPool(max_workers=2)
        outcomes = pool.map(count_calls, [{"x": float(i)} for i in range(5)])
        assert all(o.ok for o in outcomes)
        assert registry.counter("pooltest.calls").value == 5.0
        hist = registry.histogram("pooltest.values")
        assert hist.count == 5
        assert hist.min == 0.0 and hist.max == 4.0

    def test_outcome_carries_typed_snapshot(self):
        pool = WorkerPool(max_workers=2)
        outcome = pool.map(count_calls, [{"x": 1.0}])[0]
        assert outcome.telemetry["counters"]["pooltest.calls"] == 1.0


class TestValidation:
    def test_bad_timeout(self):
        with pytest.raises(ConfigError):
            WorkerPool(timeout=0.0)

    def test_bad_retries(self):
        with pytest.raises(ConfigError):
            WorkerPool(retries=-1)

    def test_bad_chunk_size(self):
        with pytest.raises(ConfigError):
            WorkerPool(chunk_size=0)

    def test_bad_start_method(self):
        with pytest.raises(ConfigError):
            WorkerPool(start_method="teleport")


class TestProperties:
    @given(st.lists(st.one_of(st.integers(-100, 100),
                              st.just("boom")), max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_outcomes_align_with_tasks(self, spec):
        """Any ok/raise mix yields one aligned outcome per task and
        failures never leak into siblings (serial fallback path)."""
        tasks = [Task(boom, (i,)) if s == "boom" else Task(square, (s,))
                 for i, s in enumerate(spec)]
        outcomes = WorkerPool(max_workers=1).run(tasks)
        assert len(outcomes) == len(spec)
        for i, (s, outcome) in enumerate(zip(spec, outcomes)):
            assert outcome.index == i
            if s == "boom":
                assert not outcome.ok and outcome.error_kind == "exception"
            else:
                assert outcome.ok and outcome.value == s * s

    @given(st.integers(1, 6), st.integers(1, 4), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_chunking_never_drops_tasks(self, n, workers, chunk):
        pool = WorkerPool(max_workers=workers, chunk_size=chunk)
        outcomes = pool.map(square, [{"x": i} for i in range(n)])
        assert [o.value for o in outcomes] == [i * i for i in range(n)]


def run_kernels(n):
    """Exercise named backend kernels inside the worker process."""
    import numpy as np
    from repro import backend
    a = np.ones((8, 8), dtype=np.float64)
    for _ in range(n):
        backend.active().matmul(a, a)
    return n


class TestKernelShipBack:
    """Worker kernel stats must reach the parent's active profile."""

    def test_worker_kernels_merge_into_parent_profile(self):
        from repro.telemetry import profile

        pool = WorkerPool(max_workers=2, chunk_size=1, start_method="fork")
        with profile() as prof:
            outcomes = pool.run([Task(run_kernels, (3,)),
                                 Task(run_kernels, (2,))])
        assert all(o.ok for o in outcomes)
        stat = prof.kernel_stats["reference/matmul"]
        assert stat.calls == 5
        assert stat.total_time > 0.0

    def test_outcome_carries_kernel_stats(self):
        from repro.telemetry import profile

        pool = WorkerPool(max_workers=2, chunk_size=1, start_method="fork")
        with profile():
            outcomes = pool.run([Task(run_kernels, (4,))])
        kernels = outcomes[0].kernels
        assert kernels["reference/matmul"]["calls"] == 4
        assert kernels["reference/matmul"]["backend"] == "reference"

    def test_no_collection_outside_profile_region(self):
        pool = WorkerPool(max_workers=2, chunk_size=1, start_method="fork")
        outcomes = pool.run([Task(run_kernels, (2,))])
        assert outcomes[0].ok
        assert outcomes[0].kernels == {}

    def test_serial_fallback_hooks_see_kernels_directly(self):
        from repro.telemetry import profile

        pool = WorkerPool(max_workers=1)
        with profile() as prof:
            outcomes = pool.run([Task(run_kernels, (2,))])
        assert outcomes[0].ok
        # in-process: the parent's own kernel hook records the calls,
        # so nothing ships via the outcome
        assert outcomes[0].kernels == {}
        assert prof.kernel_stats["reference/matmul"].calls == 2
