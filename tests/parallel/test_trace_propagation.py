"""Distributed tracing: worker spans merge into one multi-lane trace.

The acceptance shape from the issue: a fixed-seed ``parallel=4`` sweep
must produce a *single* Chrome-trace file containing spans from all 4
worker processes on distinct pid lanes, with >= 90% of the sweep's
wall-clock covered by named spans.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.parallel.pool import Task, WorkerPool
from repro.pipeline.sweep import Sweep
from repro.telemetry.metrics import default_registry
from repro.telemetry.trace import (
    TraceContext,
    TraceRecorder,
    current_trace_context,
    recording,
    span,
    worker_recorder,
)

pytestmark = pytest.mark.skipif(
    "fork" not in __import__("multiprocessing").get_all_start_methods(),
    reason="pooled tracing tests need the fork start method",
)


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    default_registry().clear()


def _traced_point(i: int, rng=None) -> dict:
    with span("point.work", i=i):
        time.sleep(0.05)
    return {"i": i, "pid": os.getpid()}


def _plain_task(i: int) -> int:
    time.sleep(0.01)
    return i


class TestContextPlumbing:
    def test_no_recorder_means_no_context(self):
        assert current_trace_context() is None

    def test_context_carries_open_span_id(self):
        with recording() as recorder:
            assert recorder.context().parent_span_id == 0
            with span("outer"):
                ctx = current_trace_context()
                assert ctx is not None
                assert ctx.trace_id == recorder.trace_id
                assert ctx.parent_span_id != 0

    def test_worker_recorder_aligns_origin(self):
        parent = TraceRecorder()
        ctx = parent.context()
        child = worker_recorder(ctx)
        assert child.trace_id == parent.trace_id
        # the two clocks agree to well under a second
        assert abs(child._origin - parent._origin) < 0.5

    def test_worker_root_spans_parent_onto_context(self):
        parent = TraceRecorder()
        with recording(parent):
            with span("dispatch"):
                ctx = current_trace_context()
        child = worker_recorder(ctx)
        with recording(child):
            with span("task"):
                pass
        record = child.spans[0]
        assert record.parent_id == ctx.parent_span_id
        # worker ids live in a per-pid block, disjoint from parent ids
        assert record.span_id >= 1_000_000


class TestPoolShipsSpans:
    def test_outcomes_carry_worker_spans(self):
        with recording() as recorder:
            pool = WorkerPool(max_workers=2, chunk_size=1)
            outcomes = pool.run([Task(_traced_point, (i,)) for i in range(4)])
        assert all(o.ok for o in outcomes)
        for outcome in outcomes:
            names = {s["name"] for s in outcome.spans}
            assert "pool.task" in names
            assert "point.work" in names
        # every worker span was merged into the parent recorder
        merged = [s for s in recorder.spans if s.name == "point.work"]
        assert len(merged) == 4
        worker_pids = {s.pid for s in merged}
        assert os.getpid() not in worker_pids

    def test_no_recorder_ships_no_spans(self):
        pool = WorkerPool(max_workers=2, chunk_size=1)
        outcomes = pool.run([Task(_plain_task, (i,)) for i in range(2)])
        assert all(o.ok for o in outcomes)
        assert all(o.spans == [] for o in outcomes)

    def test_serial_fallback_records_directly(self):
        with recording() as recorder:
            pool = WorkerPool(max_workers=1)
            outcomes = pool.run([Task(_traced_point, (i,)) for i in range(2)])
        assert all(o.ok for o in outcomes)
        assert all(o.spans == [] for o in outcomes)  # nothing shipped...
        # ...because the spans landed in the parent recorder in-process
        assert len(recorder.by_name("point.work")) == 2


class TestSweepAcceptance:
    def test_parallel_sweep_renders_single_multilane_trace(self, tmp_path):
        grid = {"i": [0, 1, 2, 3]}
        sweep = Sweep(grid, _traced_point)
        with recording() as recorder:
            wall_start = time.perf_counter()
            result = sweep.run(parallel=4, seed=123)
            wall = time.perf_counter() - wall_start
        assert len(result.ok()) == 4
        worker_pids = {record["pid"] for record in result.records}
        assert len(worker_pids) == 4  # chunk_size 1: one process per point

        # one root sweep span covering >= 90% of the sweep wall-clock
        roots = recorder.by_name("sweep")
        assert len(roots) == 1
        assert roots[0].duration >= 0.9 * wall

        # spans from all 4 workers, each on its own pid lane
        point_spans = [s for s in recorder.spans if s.name == "point.work"]
        assert {s.pid for s in point_spans} == worker_pids

        # single valid chrome-trace file with all lanes + metadata
        path = tmp_path / "sweep.trace.json"
        recorder.to_chrome_trace(path)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        x_pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert x_pids == worker_pids | {os.getpid()}
        labels = {e["pid"]: e["args"]["name"] for e in events
                  if e["ph"] == "M" and e["name"] == "process_name"}
        assert labels[os.getpid()] == "repro main"
        for pid in worker_pids:
            assert labels[pid] == f"worker pid={pid}"
        # worker point spans nest inside the parent sweep interval
        root = roots[0]
        for s in point_spans:
            assert s.start >= root.start - 0.05
            assert s.end <= root.end + 0.05

    def test_trace_id_is_shared_across_processes(self):
        with recording() as recorder:
            pool = WorkerPool(max_workers=2, chunk_size=1)
            pool.run([Task(_traced_point, (i,)) for i in range(2)])
        trace = recorder.chrome_trace()
        assert trace["otherData"]["trace_id"] == recorder.trace_id
