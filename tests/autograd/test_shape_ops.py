"""Gradient and value checks for shape-manipulation ops."""

import numpy as np

from repro.autograd import Tensor, functional as F, grad_check

RNG = np.random.default_rng(11)


def randn(*shape):
    return RNG.standard_normal(shape)


class TestReshape:
    def test_gradient(self):
        weights = Tensor(randn(6))
        grad_check(lambda a: F.sum(F.mul(F.reshape(a, (6,)), weights)), [randn(2, 3)])

    def test_minus_one(self):
        out = F.reshape(Tensor(randn(2, 3, 4)), (2, -1))
        assert out.shape == (2, 12)

    def test_tuple_or_varargs(self):
        t = Tensor(randn(6))
        assert F.reshape(t, (2, 3)).shape == (2, 3)
        assert F.reshape(t, 3, 2).shape == (3, 2)

    def test_flatten(self):
        out = F.flatten(Tensor(randn(2, 3, 4)))
        assert out.shape == (2, 12)

    def test_flatten_start_axis(self):
        out = F.flatten(Tensor(randn(2, 3, 4)), start_axis=2)
        assert out.shape == (2, 3, 4)


class TestTranspose:
    def test_default_reverses(self):
        out = F.transpose(Tensor(randn(2, 3, 4)))
        assert out.shape == (4, 3, 2)

    def test_explicit_axes(self):
        out = F.transpose(Tensor(randn(2, 3, 4)), (1, 0, 2))
        assert out.shape == (3, 2, 4)

    def test_gradient_default(self):
        weights = Tensor(randn(3, 2))
        grad_check(lambda a: F.sum(F.mul(F.transpose(a), weights)), [randn(2, 3)])

    def test_gradient_permutation(self):
        weights = randn(4, 2, 3)
        grad_check(
            lambda a: F.sum(F.mul(F.transpose(a, (2, 0, 1)), Tensor(weights))),
            [randn(2, 3, 4)],
        )


class TestGetItem:
    def test_row_slice(self):
        grad_check(lambda a: F.sum(F.getitem(a, slice(1, 3))), [randn(4, 3)])

    def test_fancy_index_with_duplicates_accumulates(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        F.sum(F.getitem(x, np.array([0, 0, 1]))).backward()
        assert np.allclose(x.grad, [2.0, 1.0, 0.0])

    def test_values(self):
        a = randn(4, 5)
        assert np.allclose(F.getitem(Tensor(a), (2, slice(1, 4))).data, a[2, 1:4])


class TestConcat:
    def test_axis0_gradient(self):
        grad_check(lambda a, b: F.sum(F.concat([a, b], axis=0)), [randn(2, 3), randn(4, 3)])

    def test_axis1_gradient(self):
        grad_check(lambda a, b: F.sum(F.concat([a, b], axis=1)), [randn(2, 3), randn(2, 2)])

    def test_three_way_values(self):
        parts = [randn(2, 2) for _ in range(3)]
        out = F.concat([Tensor(p) for p in parts], axis=0)
        assert np.allclose(out.data, np.concatenate(parts, axis=0))

    def test_gradient_routes_to_correct_part(self):
        a = Tensor(randn(2, 2), requires_grad=True)
        b = Tensor(randn(3, 2), requires_grad=True)
        out = F.concat([a, b], axis=0)
        F.sum(F.mul(F.getitem(out, slice(0, 2)), Tensor(np.ones((2, 2))))).backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 0.0)


class TestPad2d:
    def test_shape(self):
        out = F.pad2d(Tensor(randn(1, 2, 3, 3)), 2)
        assert out.shape == (1, 2, 7, 7)

    def test_zero_padding_is_identity(self):
        x = Tensor(randn(1, 1, 3, 3))
        assert F.pad2d(x, 0).shape == x.shape

    def test_gradient(self):
        grad_check(lambda a: F.sum(F.pad2d(a, 1)), [randn(1, 2, 3, 3)])

    def test_values_are_zero_in_border(self):
        out = F.pad2d(Tensor(np.ones((1, 1, 2, 2))), 1)
        assert out.data[0, 0, 0, 0] == 0.0
        assert out.data[0, 0, 1, 1] == 1.0
