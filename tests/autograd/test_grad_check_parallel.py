"""Parallel finite-difference probes: identical verdicts and values."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, grad_check
from repro.autograd.function import Function
from repro.autograd.grad_check import numerical_gradient


def randn(*shape):
    return np.random.default_rng(0).standard_normal(shape)


def scalar_fn(a, b):
    return F.sum(F.mul(a, b))


def softmax_loss(a):
    from repro.autograd.ops_nn import softmax
    s = softmax(a)
    return F.sum(F.mul(s, s))


class BadDouble(Function):  # module-level so fork/spawn workers see it
    def forward(self, a):
        return a * 2.0

    def backward(self, grad):
        return (grad * 3.0,)  # wrong on purpose


def bad_double(a):
    return BadDouble.apply(a)


class TestParallelProbes:
    def test_numeric_gradient_identical_to_serial(self):
        inputs = [randn(4, 5), randn(4, 5)]
        serial = numerical_gradient(scalar_fn, inputs, 0)
        pooled = numerical_gradient(scalar_fn, inputs, 0, workers=4)
        assert np.array_equal(serial, pooled)

    def test_grad_check_passes_with_workers(self):
        assert grad_check(scalar_fn, [randn(3, 4), randn(3, 4)], workers=3)
        assert grad_check(softmax_loss, [randn(2, 6)], workers=2)

    def test_grad_check_still_catches_wrong_gradients(self):
        with pytest.raises(AssertionError):
            grad_check(lambda a: F.sum(bad_double(a)), [randn(2, 3)],
                       workers=2)

    def test_scalar_input_stays_serial(self):
        # size-1 inputs skip the pool (not worth a process spawn)
        assert grad_check(lambda a: F.sum(F.mul(a, a)),
                          [np.array([1.5])], workers=4)
