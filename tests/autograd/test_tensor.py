"""Tensor mechanics: construction, grad bookkeeping, backward rules."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, no_grad, is_grad_enabled
from repro.errors import GradientError


class TestConstruction:
    def test_from_list(self):
        # lists and scalars materialize at the compute-dtype policy
        # (float32 by default; see repro.precision)
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float32

    def test_int_data_promoted_to_float(self):
        t = Tensor(np.arange(4))
        assert t.data.dtype == np.float32

    def test_bool_data_promoted_to_float(self):
        t = Tensor(np.array([True, False]))
        assert t.data.dtype == np.float32

    def test_explicit_float_array_keeps_dtype(self):
        assert Tensor(np.ones(3, dtype=np.float64)).data.dtype == np.float64
        assert Tensor(np.ones(3, dtype=np.float32)).data.dtype == np.float32

    def test_policy_scopes_construction(self):
        from repro import precision

        with precision.use_dtype("float64"):
            assert Tensor([1.0, 2.0]).data.dtype == np.float64
            assert Tensor(np.arange(3)).data.dtype == np.float64
        assert Tensor([1.0, 2.0]).data.dtype == np.float32

    def test_from_tensor_shares_nothing_structural(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor(a)
        assert not b.requires_grad

    def test_scalar_item(self):
        assert Tensor(3.5).item() == 3.5

    def test_size_ndim(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.size == 6
        assert t.ndim == 2
        assert len(t) == 2

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor(1.0, requires_grad=True))
        assert "requires_grad" not in repr(Tensor(1.0))


class TestBackward:
    def test_scalar_backward_default_grad(self):
        x = Tensor(2.0, requires_grad=True)
        y = F.mul(x, x)
        y.backward()
        assert np.isclose(x.grad, 4.0)

    def test_backward_on_non_scalar_requires_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = F.mul(x, x)
        with pytest.raises(GradientError):
            y.backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = F.mul(x, x)
        y.backward(np.array([1.0, 1.0]))
        assert np.allclose(x.grad, [2.0, 4.0])

    def test_backward_gradient_shape_mismatch(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = F.mul(x, x)
        with pytest.raises(GradientError):
            y.backward(np.zeros(3))

    def test_backward_on_leaf_without_grad_raises(self):
        x = Tensor(1.0)
        with pytest.raises(GradientError):
            x.backward()

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(3.0, requires_grad=True)
        F.mul(x, x).backward()
        first = float(x.grad)
        F.mul(x, x).backward()
        assert np.isclose(x.grad, 2 * first)

    def test_zero_grad(self):
        x = Tensor(3.0, requires_grad=True)
        F.mul(x, x).backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_accumulates(self):
        # y = x*x + x*x: gradient must be 4x, not 2x.
        x = Tensor(3.0, requires_grad=True)
        a = F.mul(x, x)
        y = F.add(a, a)
        y.backward()
        assert np.isclose(x.grad, 12.0)

    def test_shared_subexpression(self):
        x = Tensor(2.0, requires_grad=True)
        a = F.mul(x, Tensor(3.0))
        y = F.add(F.mul(a, a), a)  # y = 9x^2 + 3x -> dy/dx = 18x + 3
        y.backward()
        assert np.isclose(x.grad, 39.0)

    def test_deep_chain_does_not_recurse(self):
        x = Tensor(1.0, requires_grad=True)
        y = x
        for _ in range(2000):
            y = F.add(y, Tensor(0.001))
        y.backward()
        assert np.isclose(x.grad, 1.0)

    def test_detach_cuts_graph(self):
        x = Tensor(2.0, requires_grad=True)
        y = F.mul(x, x).detach()
        assert y._creator is None
        assert not y.requires_grad


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        x = Tensor(2.0, requires_grad=True)
        with no_grad():
            y = F.mul(x, x)
        assert not y.requires_grad
        assert y._creator is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_nested(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        try:
            with no_grad():
                raise ValueError("boom")
        except ValueError:
            pass
        assert is_grad_enabled()


class TestOperators:
    def test_add_operator(self):
        assert np.allclose((Tensor([1.0]) + Tensor([2.0])).data, [3.0])

    def test_radd_scalar(self):
        assert np.allclose((1.0 + Tensor([2.0])).data, [3.0])

    def test_sub_and_rsub(self):
        assert np.allclose((Tensor([5.0]) - 2.0).data, [3.0])
        assert np.allclose((5.0 - Tensor([2.0])).data, [3.0])

    def test_mul_div(self):
        assert np.allclose((Tensor([4.0]) * 2.0).data, [8.0])
        assert np.allclose((Tensor([4.0]) / 2.0).data, [2.0])
        assert np.allclose((8.0 / Tensor([4.0])).data, [2.0])

    def test_neg_pow(self):
        assert np.allclose((-Tensor([2.0])).data, [-2.0])
        assert np.allclose((Tensor([2.0]) ** 3).data, [8.0])

    def test_matmul_operator(self):
        a = Tensor(np.eye(2))
        b = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert np.allclose((a @ b).data, b.data)

    def test_getitem_operator(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert np.allclose(t[0].data, [0.0, 1.0, 2.0])

    def test_method_aliases_match_functional(self):
        x = np.random.default_rng(0).standard_normal((3, 4))
        t = Tensor(x)
        assert np.allclose(t.sum().data, x.sum())
        assert np.allclose(t.mean(axis=1).data, x.mean(axis=1))
        assert np.allclose(t.reshape(4, 3).data, x.reshape(4, 3))
        assert np.allclose(t.transpose().data, x.T)
        assert np.allclose(t.exp().data, np.exp(x))
        assert np.allclose(t.abs().data, np.abs(x))
