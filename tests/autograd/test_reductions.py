"""Gradient and value checks for reduction ops."""

import numpy as np

from repro.autograd import Tensor, functional as F, grad_check

RNG = np.random.default_rng(7)


def randn(*shape):
    return RNG.standard_normal(shape)


class TestSum:
    def test_full_reduction(self):
        grad_check(lambda a: F.sum(a), [randn(3, 4)])

    def test_axis_reduction(self):
        grad_check(lambda a: F.sum(F.sum(a, axis=0)), [randn(3, 4)])

    def test_axis_keepdims(self):
        grad_check(lambda a: F.sum(F.sum(a, axis=1, keepdims=True)), [randn(3, 4)])

    def test_tuple_axis(self):
        grad_check(lambda a: F.sum(F.sum(a, axis=(0, 2))), [randn(2, 3, 4)])

    def test_negative_axis(self):
        a = randn(2, 3)
        out = F.sum(Tensor(a), axis=-1)
        assert np.allclose(out.data, a.sum(axis=-1))

    def test_values(self):
        a = randn(2, 3, 4)
        assert np.allclose(F.sum(Tensor(a), axis=1).data, a.sum(axis=1))


class TestMean:
    def test_full_reduction(self):
        grad_check(lambda a: F.mean(a), [randn(3, 4)])

    def test_axis(self):
        grad_check(lambda a: F.sum(F.mean(a, axis=0)), [randn(3, 4)])

    def test_keepdims(self):
        grad_check(lambda a: F.sum(F.mean(a, axis=1, keepdims=True)), [randn(3, 4)])

    def test_tuple_axis_values(self):
        a = randn(2, 3, 4)
        out = F.mean(Tensor(a), axis=(0, 2))
        assert np.allclose(out.data, a.mean(axis=(0, 2)))

    def test_mean_gradient_is_uniform(self):
        x = Tensor(randn(4), requires_grad=True)
        F.mean(x).backward()
        assert np.allclose(x.grad, 0.25)


class TestMaxMin:
    def test_max_full(self):
        grad_check(lambda a: F.max(a), [np.array([1.0, 3.0, 2.0])])

    def test_max_axis(self):
        grad_check(lambda a: F.sum(F.max(a, axis=1)), [randn(4, 5)])

    def test_max_keepdims_shape(self):
        out = F.max(Tensor(randn(3, 4)), axis=1, keepdims=True)
        assert out.shape == (3, 1)

    def test_min_axis(self):
        grad_check(lambda a: F.sum(F.min(a, axis=0)), [randn(4, 5)])

    def test_max_values(self):
        a = randn(3, 5)
        assert np.allclose(F.max(Tensor(a), axis=0).data, a.max(axis=0))
        assert np.allclose(F.min(Tensor(a)).data, a.min())

    def test_tied_maxima_split_gradient(self):
        x = Tensor(np.array([2.0, 2.0, 1.0]), requires_grad=True)
        F.max(x).backward()
        assert np.allclose(x.grad, [0.5, 0.5, 0.0])


class TestVar:
    def test_var_full(self):
        grad_check(lambda a: F.var(a), [randn(6)])

    def test_var_axis(self):
        grad_check(lambda a: F.sum(F.var(a, axis=0)), [randn(5, 3)])

    def test_var_matches_numpy(self):
        a = randn(4, 6)
        assert np.allclose(F.var(Tensor(a), axis=1).data, a.var(axis=1))
