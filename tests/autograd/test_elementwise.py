"""Gradient checks for every elementwise and linear-algebra op."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, grad_check
from repro.errors import ShapeError

RNG = np.random.default_rng(42)


def randn(*shape):
    return RNG.standard_normal(shape)


class TestBinaryGradients:
    def test_add(self):
        grad_check(lambda a, b: F.sum(F.add(a, b)), [randn(3, 4), randn(3, 4)])

    def test_sub(self):
        grad_check(lambda a, b: F.sum(F.sub(a, b)), [randn(3, 4), randn(3, 4)])

    def test_mul(self):
        grad_check(lambda a, b: F.sum(F.mul(a, b)), [randn(3, 4), randn(3, 4)])

    def test_div(self):
        grad_check(lambda a, b: F.sum(F.div(a, b)), [randn(3, 4), RNG.random((3, 4)) + 0.5])

    def test_maximum(self):
        grad_check(lambda a, b: F.sum(F.maximum(a, b)), [randn(4, 4), randn(4, 4)])

    def test_matmul(self):
        grad_check(lambda a, b: F.sum(F.matmul(a, b)), [randn(3, 4), randn(4, 5)])

    def test_matmul_rejects_1d(self):
        with pytest.raises(ShapeError):
            F.matmul(Tensor(randn(3)), Tensor(randn(3)))


class TestBroadcastGradients:
    def test_add_row_broadcast(self):
        grad_check(lambda a, b: F.sum(F.add(a, b)), [randn(3, 4), randn(4)])

    def test_add_column_broadcast(self):
        grad_check(lambda a, b: F.sum(F.add(a, b)), [randn(3, 4), randn(3, 1)])

    def test_mul_scalar_broadcast(self):
        grad_check(lambda a, b: F.sum(F.mul(a, b)), [randn(3, 4), randn(1)])

    def test_div_broadcast(self):
        grad_check(
            lambda a, b: F.sum(F.div(a, b)),
            [randn(2, 3, 4), RNG.random((3, 1)) + 0.5],
        )

    def test_sub_both_broadcast(self):
        grad_check(lambda a, b: F.sum(F.sub(a, b)), [randn(3, 1), randn(1, 4)])

    def test_forward_values_match_numpy(self):
        a, b = randn(3, 4), randn(4)
        assert np.allclose(F.add(Tensor(a), Tensor(b)).data, a + b)
        assert np.allclose(F.mul(Tensor(a), Tensor(b)).data, a * b)


class TestUnaryGradients:
    def test_neg(self):
        grad_check(lambda a: F.sum(F.neg(a)), [randn(5)])

    def test_pow(self):
        grad_check(lambda a: F.sum(F.pow(a, 3.0)), [RNG.random(5) + 0.5])

    def test_exp(self):
        grad_check(lambda a: F.sum(F.exp(a)), [randn(5)])

    def test_log(self):
        grad_check(lambda a: F.sum(F.log(a)), [RNG.random(5) + 0.5])

    def test_sqrt(self):
        grad_check(lambda a: F.sum(F.sqrt(a)), [RNG.random(5) + 0.5])

    def test_abs_away_from_zero(self):
        grad_check(lambda a: F.sum(F.abs(a)), [randn(6) + np.sign(randn(6)) * 0.5])

    def test_tanh(self):
        grad_check(lambda a: F.sum(F.tanh(a)), [randn(5)])

    def test_sigmoid(self):
        grad_check(lambda a: F.sum(F.sigmoid(a)), [randn(5)])

    def test_relu(self):
        values = randn(8)
        values[np.abs(values) < 0.1] = 0.5  # stay off the kink
        grad_check(lambda a: F.sum(F.relu(a)), [values])

    def test_leaky_relu(self):
        values = randn(8)
        values[np.abs(values) < 0.1] = 0.5
        grad_check(lambda a: F.sum(F.leaky_relu(a, 0.1)), [values])

    def test_clip(self):
        values = np.array([-2.0, -0.5, 0.3, 0.9, 2.0])
        grad_check(lambda a: F.sum(F.clip(a, -1.0, 1.0)), [values])


class TestUnaryForwardValues:
    def test_relu_values(self):
        out = F.relu(Tensor([-1.0, 0.0, 2.0]))
        assert np.allclose(out.data, [0.0, 0.0, 2.0])

    def test_sigmoid_at_zero(self):
        assert np.isclose(F.sigmoid(Tensor(0.0)).item(), 0.5)

    def test_leaky_relu_negative_slope(self):
        out = F.leaky_relu(Tensor([-2.0]), 0.1)
        assert np.isclose(out.data[0], -0.2)

    def test_clip_values(self):
        out = F.clip(Tensor([-5.0, 0.0, 5.0]), -1.0, 1.0)
        assert np.allclose(out.data, [-1.0, 0.0, 1.0])

    def test_maximum_values(self):
        out = F.maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        assert np.allclose(out.data, [3.0, 5.0])
