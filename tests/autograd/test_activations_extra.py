"""Softplus / GELU / SiLU activations."""

import numpy as np

from repro.autograd import Tensor, functional as F, grad_check

RNG = np.random.default_rng(101)


class TestSoftplus:
    def test_values(self):
        out = F.softplus(Tensor([0.0]))
        assert np.isclose(out.data[0], np.log(2.0))

    def test_stable_for_large_inputs(self):
        out = F.softplus(Tensor([1000.0, -1000.0]))
        assert np.isclose(out.data[0], 1000.0)
        assert np.isclose(out.data[1], 0.0)
        assert np.all(np.isfinite(out.data))

    def test_gradient(self):
        grad_check(lambda a: F.sum(F.softplus(a)), [RNG.standard_normal(6)])

    def test_positive_everywhere(self):
        out = F.softplus(Tensor(RNG.standard_normal(20)))
        assert np.all(out.data > 0)


class TestGelu:
    def test_zero_at_zero(self):
        assert F.gelu(Tensor([0.0])).data[0] == 0.0

    def test_approaches_identity_for_large_positive(self):
        assert np.isclose(F.gelu(Tensor([10.0])).data[0], 10.0, atol=1e-6)

    def test_approaches_zero_for_large_negative(self):
        assert np.isclose(F.gelu(Tensor([-10.0])).data[0], 0.0, atol=1e-6)

    def test_gradient(self):
        grad_check(lambda a: F.sum(F.gelu(a)), [RNG.standard_normal(6)], rtol=1e-3)

    def test_known_value(self):
        # gelu(1) = 1 * Phi(1) ~ 0.8413
        assert np.isclose(F.gelu(Tensor([1.0])).data[0], 0.8413, atol=1e-3)


class TestSilu:
    def test_zero_at_zero(self):
        assert F.silu(Tensor([0.0])).data[0] == 0.0

    def test_known_value(self):
        # silu(1) = sigmoid(1) ~ 0.7311
        assert np.isclose(F.silu(Tensor([1.0])).data[0], 0.7311, atol=1e-3)

    def test_gradient(self):
        grad_check(lambda a: F.sum(F.silu(a)), [RNG.standard_normal(6)], rtol=1e-3)

    def test_lower_bound(self):
        out = F.silu(Tensor(np.linspace(-20, 20, 100)))
        assert out.data.min() > -0.3  # silu's global minimum ~ -0.278
