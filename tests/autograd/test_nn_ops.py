"""Conv / pool / softmax ops: values against naive references, gradients
against finite differences."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, grad_check
from repro.autograd.ops_nn import col2im, im2col
from repro.errors import ShapeError

RNG = np.random.default_rng(23)


def randn(*shape):
    return RNG.standard_normal(shape)


def naive_conv2d(x, w, stride, padding):
    batch, _, height, width = x.shape
    out_c, in_c, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kh) // stride + 1
    out_w = (x.shape[3] - kw) // stride + 1
    out = np.zeros((batch, out_c, out_h, out_w))
    for n in range(batch):
        for f in range(out_c):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[n, :, i * stride:i * stride + kh, j * stride:j * stride + kw]
                    out[n, f, i, j] = (patch * w[f]).sum()
    return out


class TestIm2Col:
    def test_roundtrip_counts(self):
        x = randn(2, 3, 5, 5)
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (27, 2 * 5 * 5)

    def test_col2im_adjointness(self):
        # <im2col(x), y> == <x, col2im(y)> -- the two must be adjoint maps.
        x = randn(2, 2, 4, 4)
        cols = im2col(x, 2, 2, 2, 0)
        y = randn(*cols.shape)
        lhs = (cols * y).sum()
        rhs = (x * col2im(y, x.shape, 2, 2, 2, 0)).sum()
        assert np.isclose(lhs, rhs)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, stride, padding):
        x, w = randn(2, 3, 6, 6), randn(4, 3, 3, 3)
        out = F.conv2d(Tensor(x), Tensor(w), stride=stride, padding=padding)
        assert np.allclose(out.data, naive_conv2d(x, w, stride, padding), atol=1e-10)

    def test_bias_broadcast(self):
        x, w, b = randn(1, 2, 4, 4), randn(3, 2, 3, 3), randn(3)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), padding=1)
        no_bias = F.conv2d(Tensor(x), Tensor(w), padding=1)
        assert np.allclose(out.data - no_bias.data, b.reshape(1, 3, 1, 1))

    def test_gradients(self):
        x, w = randn(2, 2, 5, 5), randn(3, 2, 3, 3)
        grad_check(
            lambda x, w: F.sum(F.conv2d(x, w, stride=2, padding=1)), [x, w], rtol=1e-3
        )

    def test_gradient_with_bias(self):
        x, w, b = randn(1, 2, 4, 4), randn(2, 2, 3, 3), randn(2)
        grad_check(
            lambda x, w, b: F.sum(F.mul(F.conv2d(x, w, b, padding=1), F.conv2d(x, w, b, padding=1))),
            [x, w, b], rtol=1e-3,
        )

    def test_channel_mismatch_raises(self):
        with pytest.raises(ShapeError):
            F.conv2d(Tensor(randn(1, 3, 4, 4)), Tensor(randn(2, 4, 3, 3)))

    def test_too_small_input_raises(self):
        with pytest.raises(ShapeError):
            F.conv2d(Tensor(randn(1, 1, 2, 2)), Tensor(randn(1, 1, 5, 5)))

    def test_1x1_conv(self):
        x, w = randn(2, 3, 4, 4), randn(5, 3, 1, 1)
        out = F.conv2d(Tensor(x), Tensor(w))
        assert out.shape == (2, 5, 4, 4)
        assert np.allclose(out.data, naive_conv2d(x, w, 1, 0))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        assert np.allclose(out.data.reshape(2, 2), [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        assert np.allclose(out.data.reshape(2, 2), [[2.5, 4.5], [10.5, 12.5]])

    def test_max_pool_gradient(self):
        x = randn(2, 3, 4, 4)
        grad_check(lambda x: F.sum(F.max_pool2d(x, 2)), [x], rtol=1e-3)

    def test_avg_pool_gradient(self):
        grad_check(lambda x: F.sum(F.avg_pool2d(x, 2)), [randn(2, 3, 4, 4)], rtol=1e-3)

    def test_strided_pool_shape(self):
        out = F.max_pool2d(Tensor(randn(1, 1, 6, 6)), 3, stride=3)
        assert out.shape == (1, 1, 2, 2)

    def test_global_avg_pool(self):
        x = randn(2, 3, 4, 4)
        out = F.global_avg_pool2d(Tensor(x))
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.mean(axis=(2, 3)))

    def test_global_avg_pool_gradient(self):
        grad_check(lambda x: F.sum(F.global_avg_pool2d(x)), [randn(2, 2, 3, 3)])


class TestSoftmaxOps:
    def test_softmax_rows_sum_to_one(self):
        out = F.softmax(Tensor(randn(5, 7)))
        assert np.allclose(out.data.sum(axis=1), 1.0)

    def test_log_softmax_matches_softmax(self):
        logits = randn(4, 6)
        assert np.allclose(
            np.exp(F.log_softmax(Tensor(logits)).data), F.softmax(Tensor(logits)).data
        )

    def test_log_softmax_gradient(self):
        weights = Tensor(randn(3, 5))
        grad_check(lambda a: F.sum(F.mul(F.log_softmax(a), weights)),
                   [randn(3, 5)], rtol=1e-3)

    def test_log_softmax_numerically_stable(self):
        logits = np.array([[1000.0, 0.0], [0.0, -1000.0]])
        out = F.log_softmax(Tensor(logits))
        assert np.all(np.isfinite(out.data))

    def test_cross_entropy_known_value(self):
        # Uniform logits over K classes -> loss = log(K).
        logits = np.zeros((3, 4))
        loss = F.softmax_cross_entropy(Tensor(logits), np.array([0, 1, 2]))
        assert np.isclose(loss.item(), np.log(4))

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = F.softmax_cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_cross_entropy_gradient(self):
        logits = randn(5, 8)
        targets = RNG.integers(0, 8, 5)
        grad_check(lambda l: F.softmax_cross_entropy(l, targets), [logits], rtol=1e-3)

    def test_cross_entropy_rejects_bad_shapes(self):
        with pytest.raises(ShapeError):
            F.softmax_cross_entropy(Tensor(randn(3, 4, 5)), np.zeros(3, dtype=int))
        with pytest.raises(ShapeError):
            F.softmax_cross_entropy(Tensor(randn(3, 4)), np.zeros(5, dtype=int))

    def test_cross_entropy_accepts_tensor_targets(self):
        loss = F.softmax_cross_entropy(Tensor(np.zeros((2, 3))), Tensor([0.0, 1.0]))
        assert np.isclose(loss.item(), np.log(3))
