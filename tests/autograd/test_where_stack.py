"""where / stack ops and the RMSProp optimizer."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, grad_check

RNG = np.random.default_rng(107)


class TestWhere:
    def test_values(self):
        condition = np.array([True, False, True])
        out = F.where(condition, Tensor([1.0, 1.0, 1.0]), Tensor([9.0, 9.0, 9.0]))
        assert np.allclose(out.data, [1.0, 9.0, 1.0])

    def test_gradient_routes_by_mask(self):
        condition = np.array([True, False])
        a = Tensor(np.zeros(2), requires_grad=True)
        b = Tensor(np.zeros(2), requires_grad=True)
        F.sum(F.where(condition, a, b)).backward()
        assert np.allclose(a.grad, [1.0, 0.0])
        assert np.allclose(b.grad, [0.0, 1.0])

    def test_grad_check(self):
        condition = RNG.random(6) > 0.5
        grad_check(lambda a, b: F.sum(F.where(condition, a, b)),
                   [RNG.standard_normal(6), RNG.standard_normal(6)])

    def test_tensor_condition_accepted(self):
        condition = Tensor(np.array([1.0, 0.0]))
        out = F.where(condition, Tensor([5.0, 5.0]), Tensor([7.0, 7.0]))
        assert np.allclose(out.data, [5.0, 7.0])


class TestStack:
    def test_shapes(self):
        parts = [Tensor(RNG.standard_normal((2, 3))) for _ in range(4)]
        assert F.stack(parts, axis=0).shape == (4, 2, 3)
        assert F.stack(parts, axis=1).shape == (2, 4, 3)

    def test_values(self):
        arrays = [RNG.standard_normal(3) for _ in range(2)]
        out = F.stack([Tensor(a) for a in arrays], axis=0)
        assert np.allclose(out.data, np.stack(arrays))

    def test_gradient(self):
        grad_check(lambda a, b: F.sum(F.stack([a, b], axis=0)),
                   [RNG.standard_normal((2, 2)), RNG.standard_normal((2, 2))])

    def test_gradient_axis1(self):
        grad_check(lambda a, b: F.sum(F.mul(F.stack([a, b], axis=1),
                                            F.stack([a, b], axis=1))),
                   [RNG.standard_normal(3), RNG.standard_normal(3)])


class TestRMSProp:
    def test_converges_on_quadratic(self):
        from repro.nn import RMSProp
        from repro.nn.module import Parameter
        p = Parameter(np.array([5.0, -7.0]))
        opt = RMSProp([p], lr=0.1)
        for _ in range(400):
            diff = F.sub(p, Tensor(3.0))
            loss = F.sum(F.mul(diff, diff))
            p.grad = None
            loss.backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=0.05)

    def test_skips_gradless(self):
        from repro.nn import RMSProp
        from repro.nn.module import Parameter
        p = Parameter(np.ones(2))
        RMSProp([p], lr=0.1).step()
        assert np.allclose(p.data, 1.0)

    def test_weight_decay(self):
        from repro.nn import RMSProp
        from repro.nn.module import Parameter
        p = Parameter(np.array([100.0]))
        p.grad = np.zeros(1)
        RMSProp([p], lr=0.1, weight_decay=1.0).step()
        assert p.data[0] < 100.0
