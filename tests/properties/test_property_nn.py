"""Property-based tests: nn-layer algebra and optimizer invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.autograd import Tensor, functional as F
from repro.nn import SGD, Linear
from repro.nn.module import Parameter

finite = st.floats(min_value=-5, max_value=5, allow_nan=False,
                   allow_infinity=False, width=64)


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(1, 5), st.just(4)), elements=finite),
       arrays(np.float64, st.tuples(st.integers(1, 5), st.just(4)), elements=finite))
def test_linear_is_additive(x1, x2):
    """f(x1 + x2) == f(x1) + f(x2) - b  for an affine layer."""
    if x1.shape != x2.shape:
        return
    layer = Linear(4, 3, rng=np.random.default_rng(0))
    layer.bias.data = np.random.default_rng(1).standard_normal(3)
    lhs = layer(Tensor(x1 + x2)).data
    rhs = layer(Tensor(x1)).data + layer(Tensor(x2)).data - layer.bias.data
    assert np.allclose(lhs, rhs, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, st.tuples(st.integers(1, 4), st.just(6)), elements=finite),
       st.floats(min_value=0.1, max_value=3.0, allow_nan=False, width=64))
def test_linear_is_homogeneous(x, scale):
    layer = Linear(6, 2, bias=False, rng=np.random.default_rng(2))
    lhs = layer(Tensor(scale * x)).data
    rhs = scale * layer(Tensor(x)).data
    assert np.allclose(lhs, rhs, rtol=1e-9, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, st.integers(2, 30), elements=finite),
       st.floats(min_value=1e-3, max_value=0.5, allow_nan=False, width=64))
def test_sgd_step_direction_reduces_quadratic(start, lr):
    """One small plain-SGD step on a convex quadratic never increases it."""
    p = Parameter(start.copy())
    def loss_value():
        diff = F.sub(p, Tensor(1.0))
        return F.sum(F.mul(diff, diff))
    before = loss_value().item()
    loss = loss_value()
    p.grad = None
    loss.backward()
    # Guard: step small enough for guaranteed descent (lr < 1/L, L=2).
    if lr >= 0.5:
        return
    SGD([p], lr=lr).step()
    after = loss_value().item()
    assert after <= before + 1e-9


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, st.integers(2, 20), elements=finite))
def test_weight_decay_shrinks_norm_on_zero_gradient(start):
    p = Parameter(start.copy())
    p.grad = np.zeros_like(start)
    norm_before = float(np.linalg.norm(p.data))
    SGD([p], lr=0.1, weight_decay=0.5).step()
    assert np.linalg.norm(p.data) <= norm_before + 1e-12


@settings(max_examples=20, deadline=None)
@given(arrays(np.float64, st.tuples(st.just(3), st.just(4), st.just(5), st.just(5)),
              elements=finite))
def test_batchnorm_output_scale_invariant(x):
    """BN(ax) == BN(x) for a > 0 in training mode (scale invariance)."""
    from repro.nn import BatchNorm2d
    # Exact invariance needs per-channel variance well above BN's eps
    # (for sigma^2 comparable to eps the epsilon term breaks scaling).
    if x.std(axis=(0, 2, 3)).min() < 0.3:
        return
    bn_a = BatchNorm2d(4)
    bn_b = BatchNorm2d(4)
    out_1 = bn_a(Tensor(x)).data
    out_3 = bn_b(Tensor(3.0 * x)).data
    assert np.allclose(out_1, out_3, rtol=1e-3, atol=1e-3)
