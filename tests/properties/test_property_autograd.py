"""Property-based tests: autograd invariants over random inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, functional as F

finite_floats = st.floats(min_value=-100, max_value=100, allow_nan=False,
                          allow_infinity=False, width=64)


def finite_arrays(max_dims=2, max_side=6):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=finite_floats,
    )


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_sum_gradient_is_ones(data):
    x = Tensor(data, requires_grad=True)
    F.sum(x).backward()
    assert np.allclose(x.grad, 1.0)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_linearity_of_grad(data):
    # d/dx sum(3x) == 3 everywhere.
    x = Tensor(data, requires_grad=True)
    F.sum(F.mul(x, Tensor(3.0))).backward()
    assert np.allclose(x.grad, 3.0)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_add_commutes(data):
    a, b = Tensor(data), Tensor(data[::-1].copy())
    assert np.allclose(F.add(a, b).data, F.add(b, a).data)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_relu_idempotent(data):
    x = Tensor(data)
    once = F.relu(x)
    assert np.allclose(F.relu(once).data, once.data)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_exp_log_roundtrip(data):
    x = Tensor(np.abs(data) + 0.1)
    assert np.allclose(F.exp(F.log(x)).data, x.data, rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(finite_arrays())
def test_tanh_bounded(data):
    assert np.all(np.abs(F.tanh(Tensor(data)).data) <= 1.0)


@settings(max_examples=40, deadline=None)
@given(finite_arrays(max_dims=2))
def test_reshape_preserves_sum(data):
    x = Tensor(data)
    assert np.isclose(F.sum(F.reshape(x, (-1,))).item(), F.sum(x).item())


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=6),
              elements=finite_floats))
def test_softmax_rows_are_distributions(logits):
    out = F.softmax(Tensor(logits)).data
    assert np.allclose(out.sum(axis=1), 1.0)
    assert np.all(out >= 0)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, st.integers(min_value=2, max_value=40),
              elements=finite_floats))
def test_mean_equals_sum_over_n(data):
    x = Tensor(data)
    assert np.isclose(F.mean(x).item(), F.sum(x).item() / data.size)


@settings(max_examples=30, deadline=None)
@given(arrays(np.float64, st.integers(min_value=2, max_value=30), elements=finite_floats))
def test_max_ge_mean_ge_min(data):
    x = Tensor(data)
    eps = 1e-12 * max(1.0, float(np.abs(data).max()))
    assert F.max(x).item() >= F.mean(x).item() - eps
    assert F.mean(x).item() >= F.min(x).item() - eps
