"""Property-based tests for the extension modules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quantization import MagnitudePruner, build_huffman
from repro.quantization.sensitivity import LayerSensitivity, suggest_groups

weight_vectors = arrays(
    np.float64, st.integers(min_value=32, max_value=300),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False,
                       allow_infinity=False, width=64),
)


@settings(max_examples=30, deadline=None)
@given(weight_vectors, st.floats(min_value=0.0, max_value=0.95))
def test_pruning_mask_sparsity(weights, sparsity):
    pruner = MagnitudePruner(sparsity, scope="per_layer")
    mask = pruner._mask_for(weights)
    kept = mask.mean()
    # Kept fraction is close to 1 - sparsity (ties can shift it slightly).
    assert kept <= 1.0
    if len(np.unique(np.abs(weights))) == len(weights):
        assert abs(kept - (1.0 - sparsity)) < 0.05 + 2.0 / len(weights)


@settings(max_examples=30, deadline=None)
@given(weight_vectors, st.floats(min_value=0.1, max_value=0.9))
def test_pruning_keeps_largest(weights, sparsity):
    pruner = MagnitudePruner(sparsity, scope="per_layer")
    mask = pruner._mask_for(weights)
    if mask.any() and (~mask).any():
        assert np.abs(weights[mask]).min() >= np.abs(weights[~mask]).max() - 1e-12


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(st.integers(min_value=0, max_value=63),
                       st.integers(min_value=1, max_value=10_000),
                       min_size=1, max_size=32))
def test_huffman_kraft_inequality(counts):
    code = build_huffman(counts)
    kraft = sum(2.0 ** -len(word) for word in code.codes.values())
    assert kraft <= 1.0 + 1e-9


@settings(max_examples=30, deadline=None)
@given(st.dictionaries(st.integers(min_value=0, max_value=63),
                       st.integers(min_value=1, max_value=10_000),
                       min_size=2, max_size=32))
def test_huffman_within_entropy_plus_one(counts):
    code = build_huffman(counts)
    assert code.entropy_bits_per_symbol() <= code.average_bits_per_symbol() + 1e-9
    assert code.average_bits_per_symbol() < code.entropy_bits_per_symbol() + 1.0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=32),
                min_size=1, max_size=40),
       st.integers(min_value=1, max_value=6))
def test_suggest_groups_partition_invariants(drops, num_groups):
    profile = [LayerSensitivity(f"l{i}", 1.0, 1.0 - d) for i, d in enumerate(drops)]
    ranges = suggest_groups(profile, num_groups)
    # Contiguous cover of 1..n with non-empty groups.
    assert ranges[0][0] == 1
    assert ranges[-1][1] == len(drops)
    for (start, end) in ranges:
        assert end >= start
    for (_, end), (start, _) in zip(ranges, ranges[1:]):
        assert start == end + 1


@settings(max_examples=30, deadline=None)
@given(weight_vectors)
def test_noise_injection_scales_with_std(weights):
    from repro.models import set_parameter_vector
    from repro.models.mlp import MLP
    from repro.defenses import inject_noise
    size = 8 * 8 + 8 * 4  # fc0 + fc1 weights of MLP([8, 8, 4])
    if weights.size < 4:
        return
    model = MLP([8, 8, 4], rng=np.random.default_rng(0))
    before = np.concatenate([model.fc0.weight.data.reshape(-1),
                             model.fc1.weight.data.reshape(-1)])
    inject_noise(model, 0.2, seed=1)
    after = np.concatenate([model.fc0.weight.data.reshape(-1),
                            model.fc1.weight.data.reshape(-1)])
    delta = np.abs(after - before)
    # Noise is bounded: nothing moves more than ~6 sigma of 20% weight std.
    assert delta.max() < 6 * 0.2 * max(model.fc0.weight.data.std(),
                                       model.fc1.weight.data.std(), 1e-9) + 1e-6
