"""Property-based tests: dataset generators and selection invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    ImageDataset,
    SyntheticCifarConfig,
    SyntheticDigitsConfig,
    make_synthetic_cifar,
    make_synthetic_digits,
    to_grayscale,
    train_test_split,
)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=10, max_value=60), st.integers(min_value=0, max_value=5))
def test_cifar_generator_invariants(num_images, seed):
    ds = make_synthetic_cifar(SyntheticCifarConfig(
        num_images=num_images, num_classes=5, image_size=12, seed=seed))
    assert len(ds) == num_images
    assert ds.images.dtype == np.uint8
    assert ds.labels.min() >= 0 and ds.labels.max() < 5
    # Per-image std is always within the representable bound.
    stds = ds.per_image_std()
    assert np.all(stds >= 0) and np.all(stds <= 127.5)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=10, max_value=50), st.integers(min_value=0, max_value=5))
def test_digits_generator_invariants(num_images, seed):
    ds = make_synthetic_digits(SyntheticDigitsConfig(
        num_images=num_images, image_size=14, seed=seed))
    assert len(ds) == num_images
    assert ds.image_shape == (14, 14, 1)
    assert set(np.unique(ds.labels)).issubset(set(range(10)))


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=20, max_value=80),
       st.floats(min_value=0.1, max_value=0.5),
       st.integers(min_value=0, max_value=9))
def test_split_partition_property(n, fraction, seed):
    rng = np.random.default_rng(seed)
    ds = ImageDataset(
        rng.integers(0, 256, (n, 6, 6, 1), dtype=np.uint8), np.arange(n) % 4)
    train, test = train_test_split(ds, test_fraction=fraction, seed=seed)
    assert len(train) + len(test) == n
    assert len(train) > 0 and len(test) > 0
    # Stratification: every class present in the train split.
    assert set(train.labels.tolist()) == set(range(4))


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=5, max_value=30), st.integers(min_value=0, max_value=5))
def test_grayscale_preserves_count_and_brightness_order(n, seed):
    ds = make_synthetic_cifar(SyntheticCifarConfig(
        num_images=n, num_classes=5, image_size=12, seed=seed))
    gray = to_grayscale(ds)
    assert len(gray) == len(ds)
    # Luma is a convex combination of the channels, so every gray pixel
    # lies between that pixel's channel min and max (within rounding).
    channel_min = ds.images.min(axis=3).astype(float)
    channel_max = ds.images.max(axis=3).astype(float)
    gray_values = gray.images[..., 0].astype(float)
    assert np.all(gray_values >= channel_min - 1.0)
    assert np.all(gray_values <= channel_max + 1.0)
