"""Property-based tests: quantizer invariants over random weight vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quantization import (
    KMeansQuantizer,
    TargetCorrelatedQuantizer,
    UniformQuantizer,
    WeightedEntropyQuantizer,
)

weight_vectors = arrays(
    np.float64,
    st.integers(min_value=64, max_value=400),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False,
                       allow_infinity=False, width=64),
)


def quantizers(levels=8):
    target = np.random.default_rng(0).integers(0, 256, (4, 8, 8, 1), dtype=np.uint8)
    return [
        UniformQuantizer(levels),
        KMeansQuantizer(levels),
        WeightedEntropyQuantizer(levels),
        TargetCorrelatedQuantizer(target, levels),
    ]


@settings(max_examples=25, deadline=None)
@given(weight_vectors)
def test_assignments_in_range(weights):
    for quantizer in quantizers():
        codebook, assignment = quantizer.quantize_vector(weights)
        assert assignment.min() >= 0
        assert assignment.max() < len(codebook)
        assert len(codebook) <= quantizer.levels


@settings(max_examples=25, deadline=None)
@given(weight_vectors)
def test_reconstruction_in_weight_hull(weights):
    for quantizer in quantizers():
        codebook, assignment = quantizer.quantize_vector(weights)
        recon = codebook[assignment]
        assert recon.min() >= weights.min() - 1e-9
        assert recon.max() <= weights.max() + 1e-9


@settings(max_examples=25, deadline=None)
@given(weight_vectors)
def test_distinct_values_bounded_by_levels(weights):
    for quantizer in quantizers(levels=4):
        codebook, assignment = quantizer.quantize_vector(weights)
        assert len(np.unique(codebook[assignment])) <= 4


@settings(max_examples=25, deadline=None)
@given(weight_vectors)
def test_shape_preserved(weights):
    for quantizer in quantizers():
        _, assignment = quantizer.quantize_vector(weights)
        assert assignment.shape == weights.shape


@settings(max_examples=25, deadline=None)
@given(weight_vectors, st.integers(min_value=2, max_value=7))
def test_uniform_worst_case_error_shrinks_with_levels(weights, bits):
    # Note: per-instance MSE is NOT monotone in levels (a coarse grid can
    # align exactly with the data), but the worst-case bound span/(2(l-1))
    # is -- that is the property a uniform quantizer guarantees.
    levels = 1 << bits
    codebook, assignment = UniformQuantizer(levels=levels).quantize_vector(weights)
    span = weights.max() - weights.min()
    if span > 0:
        bound = span / (2 * (levels - 1))
        assert np.abs(codebook[assignment] - weights).max() <= bound + 1e-9


@settings(max_examples=25, deadline=None)
@given(weight_vectors)
def test_uniform_error_bound(weights):
    quantizer = UniformQuantizer(levels=16)
    codebook, assignment = quantizer.quantize_vector(weights)
    span = weights.max() - weights.min()
    if span > 0:
        step = span / 15
        assert np.abs(codebook[assignment] - weights).max() <= step / 2 + 1e-9
