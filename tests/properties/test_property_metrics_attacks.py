"""Property-based tests: metric bounds and encode/decode invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.attacks import SecretPayload, decode_slice, total_variation
from repro.attacks.correlated import pearson_correlation
from repro.autograd import Tensor
from repro.metrics import histogram_overlap, mape, ssim

images_uint8 = arrays(
    np.uint8,
    st.tuples(st.integers(8, 16), st.integers(8, 16), st.just(1)),
    elements=st.integers(min_value=0, max_value=255),
)

vectors = arrays(
    np.float64, st.integers(min_value=8, max_value=200),
    elements=st.floats(min_value=-50, max_value=50, allow_nan=False,
                       allow_infinity=False, width=64),
)


@settings(max_examples=30, deadline=None)
@given(images_uint8, images_uint8)
def test_mape_bounds(a, b):
    if a.shape != b.shape:
        return
    value = mape(a, b)
    assert 0.0 <= value <= 255.0


@settings(max_examples=30, deadline=None)
@given(images_uint8)
def test_mape_identity_is_zero(image):
    assert mape(image, image) == 0.0


@settings(max_examples=20, deadline=None)
@given(images_uint8)
def test_ssim_self_is_one(image):
    assert np.isclose(ssim(image, image), 1.0, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(images_uint8, images_uint8)
def test_ssim_bounds_and_symmetry(a, b):
    if a.shape != b.shape:
        return
    forward = ssim(a, b)
    backward = ssim(b, a)
    assert -1.0 - 1e-9 <= forward <= 1.0 + 1e-9
    assert np.isclose(forward, backward, atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(vectors)
def test_pearson_bounds(data):
    rng = np.random.default_rng(1)
    other = rng.standard_normal(data.size)
    if data.std() < 1e-9:
        return
    corr = pearson_correlation(Tensor(data), Tensor(other)).item()
    assert -1.0 - 1e-9 <= corr <= 1.0 + 1e-9


@settings(max_examples=30, deadline=None)
@given(vectors)
def test_histogram_overlap_bounds(data):
    rng = np.random.default_rng(2)
    other = rng.standard_normal(data.size)
    value = histogram_overlap(data, other)
    assert 0.0 <= value <= 1.0 + 1e-9


@settings(max_examples=30, deadline=None)
@given(images_uint8)
def test_decode_slice_polarity_involution(image):
    """pos and neg decodes must be exact mirrors of each other."""
    weights = image.reshape(-1).astype(np.float64)
    if weights.max() - weights.min() < 1e-9:
        return
    shape = (image.shape[0], image.shape[1], 1)
    pos = decode_slice(weights, shape, polarity="pos").astype(int)
    neg = decode_slice(weights, shape, polarity="neg").astype(int)
    assert np.all(np.abs((255 - pos) - neg) <= 1)


@settings(max_examples=30, deadline=None)
@given(images_uint8)
def test_total_variation_nonnegative(image):
    assert total_variation(image) >= 0.0


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=4, max_value=8))
def test_secret_vector_length_invariant(n, size):
    rng = np.random.default_rng(n)
    images = rng.integers(0, 256, (n, size, size, 1), dtype=np.uint8)
    payload = SecretPayload(images, np.zeros(n, dtype=np.int64))
    assert payload.secret_vector().size == n * size * size
    slices = payload.image_slices()
    assert slices[-1].stop == payload.total_pixels
