"""ASCII visualization helpers."""

import numpy as np

from repro.viz import ascii_histogram, ascii_image, side_by_side


class TestAsciiImage:
    def test_gray_2d(self):
        art = ascii_image(np.zeros((4, 4)))
        lines = art.splitlines()
        assert len(lines) == 4
        assert all(line == "  " * 4 for line in lines)  # all-dark = spaces

    def test_bright_is_dense(self):
        art = ascii_image(np.full((2, 2), 255.0))
        assert set(art.replace("\n", "")) == {"@"}

    def test_channel_image(self):
        art = ascii_image(np.zeros((3, 3, 1), dtype=np.uint8))
        assert len(art.splitlines()) == 3

    def test_rgb_uses_luma(self):
        red = np.zeros((1, 1, 3), dtype=np.uint8)
        red[..., 0] = 255
        green = np.zeros((1, 1, 3), dtype=np.uint8)
        green[..., 1] = 255
        # Green is brighter than red in luma.
        ramp = " .:-=+*#%@"
        assert ramp.index(ascii_image(green)[0]) > ramp.index(ascii_image(red)[0])

    def test_wide_images_subsampled(self):
        art = ascii_image(np.zeros((4, 200)), max_width=40)
        assert max(len(line) for line in art.splitlines()) <= 2 * 40


class TestSideBySide:
    def test_joined_width(self):
        joined = side_by_side("ab\ncd", "xy\nzw", gap=2)
        lines = joined.splitlines()
        assert lines[0] == "ab  xy"
        assert lines[1] == "cd  zw"

    def test_uneven_heights_padded(self):
        joined = side_by_side("ab", "xy\nzw")
        assert len(joined.splitlines()) == 2

    def test_titles(self):
        joined = side_by_side("ab", "xy", titles=["left", "right"])
        assert joined.splitlines()[0].startswith("left")
        assert "right" in joined.splitlines()[0]


class TestAsciiHistogram:
    def test_bin_count(self):
        art = ascii_histogram(np.random.default_rng(0).standard_normal(100), bins=10)
        assert len(art.splitlines()) == 10

    def test_title(self):
        art = ascii_histogram(np.ones(10), bins=4, title="weights")
        assert art.splitlines()[0] == "weights"

    def test_peak_bin_longest(self):
        values = np.concatenate([np.zeros(90), np.ones(10)])
        art = ascii_histogram(values, bins=2, width=20)
        bars = [line.split("|")[1] for line in art.splitlines()]
        assert len(bars[0].strip()) > len(bars[1].strip())


class TestSparkline:
    def test_empty_series(self):
        from repro.viz import sparkline
        assert sparkline([]) == ""

    def test_constant_series_uses_mid_tick(self):
        from repro.viz import sparkline
        out = sparkline([3.0, 3.0, 3.0])
        assert len(out) == 3
        assert len(set(out)) == 1
        assert out[0] in "▁▂▃▄▅▆▇█"

    def test_monotone_rise(self):
        from repro.viz import sparkline
        out = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert out == "▁▂▃▄▅▆▇█"

    def test_nan_becomes_placeholder(self):
        from repro.viz import sparkline
        out = sparkline([0.0, float("nan"), 1.0])
        assert out[1] == "·"
        assert out[0] == "▁" and out[2] == "█"

    def test_all_nan_series(self):
        from repro.viz import sparkline
        assert sparkline([float("nan")] * 4) == "····"

    def test_width_subsamples(self):
        from repro.viz import sparkline
        out = sparkline(list(range(100)), width=10)
        assert len(out) == 10
        assert out[0] == "▁" and out[-1] == "█"


class TestTrend:
    def test_first_to_last(self):
        from repro.viz import trend
        assert trend([1.0, 5.0, 2.0]) == "1 -> 2"

    def test_no_finite_values(self):
        from repro.viz import trend
        assert trend([]) == "n/a"
        assert trend([float("nan")]) == "n/a"
