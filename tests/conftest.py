"""Shared fixtures: tiny datasets and a trained attack model.

Expensive artifacts (trained models) are session-scoped so that the many
tests that inspect them pay the training cost once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    SyntheticCifarConfig,
    SyntheticFacesConfig,
    make_synthetic_cifar,
    make_synthetic_faces,
    train_test_split,
)
from repro.models import resnet8_tiny


@pytest.fixture(scope="session")
def cifar_small():
    """180-image, 6-class, 16x16 RGB synthetic CIFAR dataset."""
    return make_synthetic_cifar(
        SyntheticCifarConfig(num_images=180, num_classes=6, image_size=16, seed=3)
    )


@pytest.fixture(scope="session")
def cifar_splits(cifar_small):
    return train_test_split(cifar_small, test_fraction=0.2, seed=0)


@pytest.fixture(scope="session")
def faces_small():
    return make_synthetic_faces(
        SyntheticFacesConfig(num_identities=8, images_per_identity=6, image_size=24, seed=5)
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def no_shm_leaks():
    """Fail any test that leaves a new ``/dev/shm/repro_*`` segment behind.

    Shared-memory segments survive the process that created them; a test
    that crashes a DDP worker or skips teardown would silently fill
    ``/dev/shm`` for every suite run after it.  Segments already present
    before the test (e.g. leaked by an unrelated process) are ignored.
    """
    from repro.parallel.arena import live_segments

    before = set(live_segments())
    yield
    leaked = sorted(set(live_segments()) - before)
    assert not leaked, f"test leaked shared-memory segments: {leaked}"


def tiny_model_builder(num_classes=6, seed=7):
    """A deterministic tiny ResNet builder used across tests."""
    return lambda: resnet8_tiny(
        num_classes=num_classes, in_channels=3, width=8,
        rng=np.random.default_rng(seed),
    )


@pytest.fixture(scope="session")
def trained_attack():
    """One trained layer-wise correlation attack, shared across tests.

    Returns the full AttackFlowResult (uncompressed; quantization done
    separately by the tests that need it) plus the datasets.
    """
    from repro.pipeline import AttackConfig, TrainingConfig, run_quantized_correlation_attack

    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=180, num_classes=6, image_size=16, seed=3)
    )
    train, test = train_test_split(data, test_fraction=0.2, seed=0)
    result = run_quantized_correlation_attack(
        train, test, tiny_model_builder(),
        TrainingConfig(epochs=10, batch_size=32, lr=0.08, seed=0),
        AttackConfig(layer_ranges=((1, 3), (4, -1)), rates=(0.0, 20.0), std_window=8.0),
        quantization=None,
    )
    return {"result": result, "train": train, "test": test}
