"""SimpleCNN, MLP, FaceNetMini and the model registry."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.errors import ConfigError
from repro.models import (
    MLP,
    FaceNetMini,
    SimpleCNN,
    available_models,
    build_model,
    face_net_mini,
    register_model,
)

RNG = np.random.default_rng(29)


class TestSimpleCNN:
    def test_output_shape(self):
        model = SimpleCNN(in_channels=3, num_classes=5, image_size=16, width=4,
                          rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 5)

    def test_grayscale(self):
        model = SimpleCNN(in_channels=1, num_classes=2, image_size=16, width=4,
                          rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((1, 1, 16, 16))))
        assert out.shape == (1, 2)


class TestMLP:
    def test_output_shape(self):
        model = MLP([12, 8, 3], rng=np.random.default_rng(0))
        with no_grad():
            assert model(Tensor(RNG.standard_normal((4, 12)))).shape == (4, 3)

    def test_flattens_images(self):
        model = MLP([27, 5], rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((2, 3, 3, 3))))
        assert out.shape == (2, 5)

    def test_too_few_sizes_raises(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_depth(self):
        assert MLP([4, 4, 4, 2]).depth == 3


class TestFaceNetMini:
    def test_classifier_shape(self):
        model = face_net_mini(num_identities=9, width=4, rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((2, 1, 24, 24))))
        assert out.shape == (2, 9)

    def test_embedding_is_normalized(self):
        model = FaceNetMini(num_identities=5, width=4, rng=np.random.default_rng(0))
        model.eval()
        with no_grad():
            emb = model.embed(Tensor(RNG.standard_normal((3, 1, 24, 24))))
        norms = np.linalg.norm(emb.data, axis=1)
        assert np.allclose(norms, 1.0, atol=1e-6)

    def test_rgb_variant(self):
        model = face_net_mini(num_identities=4, in_channels=3, width=4,
                              rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((1, 3, 24, 24))))
        assert out.shape == (1, 4)


class TestRegistry:
    def test_defaults_registered(self):
        names = available_models()
        for expected in ["resnet34_cifar", "resnet8_tiny", "simple_cnn", "face_net_mini"]:
            assert expected in names

    def test_build_by_name(self):
        model = build_model("resnet8_tiny", num_classes=4, width=4,
                            rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((1, 3, 16, 16))))
        assert out.shape == (1, 4)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            build_model("not_a_model")

    def test_register_custom_and_duplicate(self):
        @register_model("test_custom_model")
        def _build(**kwargs):
            return MLP([4, 2])

        assert "test_custom_model" in available_models()
        with pytest.raises(ConfigError):
            register_model("test_custom_model", _build)
