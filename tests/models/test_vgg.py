"""VGG-style plain conv stacks."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.models import VGG, build_model, vgg_small, vgg_tiny

RNG = np.random.default_rng(79)


class TestVGG:
    def test_tiny_output_shape(self):
        model = vgg_tiny(num_classes=5, image_size=16, rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 5)

    def test_small_output_shape(self):
        model = vgg_small(num_classes=4, image_size=16, rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((1, 3, 16, 16))))
        assert out.shape == (1, 4)

    def test_grayscale(self):
        model = vgg_tiny(num_classes=3, in_channels=1, image_size=16,
                         rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((1, 1, 16, 16))))
        assert out.shape == (1, 3)

    def test_too_many_pools_raises(self):
        with pytest.raises(ValueError):
            VGG(("M",) * 5, image_size=16)

    def test_registered(self):
        model = build_model("vgg_tiny", num_classes=3, image_size=16,
                            rng=np.random.default_rng(0))
        with no_grad():
            assert model(Tensor(RNG.standard_normal((1, 3, 16, 16)))).shape == (1, 3)

    def test_encodable_layers_ordered(self):
        from repro.models import encodable_parameters
        model = vgg_small(rng=np.random.default_rng(0))
        names = [n for n, _ in encodable_parameters(model)]
        assert names[0].startswith("features.0")
        assert names[-1].startswith("classifier")

    def test_trainable(self):
        from repro.autograd import functional as F
        from repro.nn import SGD
        model = vgg_tiny(num_classes=2, image_size=8, rng=np.random.default_rng(1))
        x = RNG.standard_normal((8, 3, 8, 8))
        y = np.array([0, 1] * 4)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        for _ in range(25):
            loss = F.softmax_cross_entropy(model(Tensor(x)), y)
            model.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.2
