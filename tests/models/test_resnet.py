"""ResNet family: shapes, layer counts, determinism, trainability."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.models import ResNet, resnet8_tiny, resnet10, resnet18_cifar, resnet34_cifar

RNG = np.random.default_rng(17)


class TestConstruction:
    def test_resnet34_conv_layer_count(self):
        # ResNet-34: 1 stem + 2 * (3+4+6+3) = 33 main-path convs + FC = 34 layers.
        model = resnet34_cifar(rng=np.random.default_rng(0))
        assert model.num_conv_layers == 33

    def test_resnet34_parameter_scale(self):
        model = resnet34_cifar(rng=np.random.default_rng(0))
        assert model.num_parameters() > 20_000_000  # the paper's full model

    def test_resnet18_blocks(self):
        model = resnet18_cifar(rng=np.random.default_rng(0))
        assert model.block_counts == (2, 2, 2, 2)

    def test_mismatched_config_raises(self):
        with pytest.raises(ValueError):
            ResNet([1, 1], [8], num_classes=2)

    def test_deterministic_init(self):
        a = resnet8_tiny(rng=np.random.default_rng(4))
        b = resnet8_tiny(rng=np.random.default_rng(4))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.allclose(pa.data, pb.data)


class TestForward:
    def test_tiny_output_shape(self):
        model = resnet8_tiny(num_classes=7, width=8, rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, 7)

    def test_resnet10_downsampling(self):
        model = resnet10(num_classes=4, width=4, rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((1, 3, 32, 32))))
        assert out.shape == (1, 4)

    def test_grayscale_input(self):
        model = resnet8_tiny(num_classes=3, in_channels=1, width=4,
                             rng=np.random.default_rng(0))
        with no_grad():
            out = model(Tensor(RNG.standard_normal((2, 1, 16, 16))))
        assert out.shape == (2, 3)

    def test_all_params_get_gradients(self):
        from repro.autograd import functional as F
        model = resnet8_tiny(num_classes=3, width=4, rng=np.random.default_rng(0))
        logits = model(Tensor(RNG.standard_normal((4, 3, 16, 16))))
        loss = F.softmax_cross_entropy(logits, np.array([0, 1, 2, 0]))
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert missing == []


class TestTrainability:
    def test_overfits_tiny_batch(self):
        from repro.autograd import functional as F
        from repro.nn import SGD
        model = resnet8_tiny(num_classes=2, width=4, rng=np.random.default_rng(0))
        x = RNG.standard_normal((8, 3, 12, 12))
        y = np.array([0, 1] * 4)
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        for _ in range(30):
            loss = F.softmax_cross_entropy(model(Tensor(x)), y)
            model.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.1
