"""encodable_parameters / parameter_vector round trips."""

import numpy as np
import pytest

from repro.models import (
    encodable_parameters,
    parameter_vector,
    resnet8_tiny,
    set_parameter_vector,
)
from repro.models.mlp import MLP


class TestEncodableParameters:
    def test_excludes_biases_and_bn(self):
        model = resnet8_tiny(width=4, rng=np.random.default_rng(0))
        names = [n for n, _ in encodable_parameters(model)]
        assert all(name.endswith(".weight") for name in names)
        assert not any("bn" in name or "bias" in name for name in names)

    def test_layer_order_is_input_to_output(self):
        model = resnet8_tiny(width=4, rng=np.random.default_rng(0))
        names = [n for n, _ in encodable_parameters(model)]
        assert names[0].startswith("stem")
        assert names[-1].startswith("fc")

    def test_mlp_layers(self):
        model = MLP([4, 3, 2], rng=np.random.default_rng(0))
        names = [n for n, _ in encodable_parameters(model)]
        assert names == ["fc0.weight", "fc1.weight"]


class TestParameterVector:
    def test_roundtrip(self):
        model = resnet8_tiny(width=4, rng=np.random.default_rng(0))
        vec = parameter_vector(model)
        set_parameter_vector(model, vec * 2.0)
        assert np.allclose(parameter_vector(model), vec * 2.0)

    def test_subset_by_name(self):
        model = MLP([4, 3, 2], rng=np.random.default_rng(0))
        vec = parameter_vector(model, ["fc1.weight"])
        assert vec.size == 3 * 2

    def test_wrong_length_raises(self):
        model = MLP([4, 3, 2], rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            set_parameter_vector(model, np.zeros(5))

    def test_empty_selection(self):
        model = MLP([4, 2], rng=np.random.default_rng(0))
        assert parameter_vector(model, []).size == 0

    def test_vector_matches_concatenation(self):
        model = MLP([4, 3, 2], rng=np.random.default_rng(0))
        expected = np.concatenate([
            model.fc0.weight.data.reshape(-1), model.fc1.weight.data.reshape(-1)
        ])
        assert np.allclose(parameter_vector(model), expected)
