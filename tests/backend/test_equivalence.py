"""Backend equivalence harness: fast must agree with reference everywhere."""

import numpy as np
import pytest

from repro import backend as B
from repro.backend import equivalence
from repro.backend.equivalence import (
    CASES,
    check_all,
    check_kernel,
    compare_outputs,
)


class TestCaseInventory:
    def test_every_reachable_kernel_has_a_case(self):
        # a fast kernel without an equivalence case is an unchecked kernel
        for name in ("reference", "fast"):
            missing = set(B.get_backend(name).kernels()) - set(CASES)
            assert not missing, f"kernels without equivalence cases: {missing}"

    def test_every_case_names_a_kernel(self):
        reference = B.get_backend("reference")
        stale = {name for name in CASES if not reference.has(name)}
        assert not stale, f"cases for unregistered kernels: {stale}"


class TestCheckKernel:
    @pytest.mark.parametrize("kernel", sorted(CASES))
    def test_fast_matches_reference(self, kernel):
        assert check_kernel(kernel, "fast", trials=5, seed=11) == 5

    def test_check_all_covers_everything(self):
        checked = check_all("fast", trials=2, seed=3)
        assert checked == sorted(B.get_backend("fast").kernels())

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="no equivalence case"):
            check_kernel("flux_capacitor", "fast")

    def test_detects_wrong_values(self):
        from repro.backend.registry import Backend

        broken = Backend("broken", fallback=B.get_backend("reference"))

        @broken.register()
        def matmul(a, b):
            return a @ b + 1e-3

        with pytest.raises(AssertionError):
            check_kernel("matmul", broken)


class TestCompareOutputs:
    def test_shape_mismatch(self):
        with pytest.raises(AssertionError, match="shape"):
            compare_outputs("k", np.ones((2, 2)), np.ones((4,)))

    def test_dtype_mismatch(self):
        with pytest.raises(AssertionError, match="dtype"):
            compare_outputs("k", np.ones(3, dtype=np.float64),
                            np.ones(3, dtype=np.float32))

    def test_arity_mismatch(self):
        with pytest.raises(AssertionError, match="arity"):
            compare_outputs("k", (np.ones(2), np.ones(2)), np.ones(2))

    def test_integer_outputs_compared_exactly(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        compare_outputs("k", a, a.copy())
        with pytest.raises(AssertionError, match="integer"):
            compare_outputs("k", a, np.array([1, 2, 4], dtype=np.int64))

    def test_float_outputs_within_tolerance(self):
        a = np.ones(4)
        compare_outputs("k", a, a * (1.0 + 1e-9))
        with pytest.raises(AssertionError):
            compare_outputs("k", a, a * 1.01)

    def test_none_outputs_must_pair(self):
        compare_outputs("k", (np.ones(2), None), (np.ones(2), None))
        with pytest.raises(AssertionError, match="None"):
            compare_outputs("k", (np.ones(2), None), (np.ones(2), np.ones(2)))


class TestGeometryGenerators:
    def test_conv_cases_are_valid_shapes(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            (x, w, stride, padding), _kw = CASES["conv2d_forward"](rng)
            out, cols = B.get_backend("reference").conv2d_forward(
                x, w, stride, padding
            )
            assert out.ndim == 4 and cols.ndim == 2

    def test_pool_cases_exercise_stride_not_equal_kernel(self):
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(40):
            (x, kernel, stride), _kw = CASES["maxpool2d_forward"](rng)
            seen.add(stride == kernel)
        assert seen == {True, False}
