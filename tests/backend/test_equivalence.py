"""Backend equivalence harness: fast must agree with reference everywhere."""

import numpy as np
import pytest

from repro import backend as B
from repro.backend import equivalence
from repro.backend.equivalence import (
    CASES,
    check_all,
    check_all_dtype,
    check_kernel,
    check_kernel_dtype,
    compare_outputs,
    compare_outputs_cross_dtype,
)


class TestCaseInventory:
    def test_every_reachable_kernel_has_a_case(self):
        # a fast kernel without an equivalence case is an unchecked kernel
        for name in ("reference", "fast"):
            missing = set(B.get_backend(name).kernels()) - set(CASES)
            assert not missing, f"kernels without equivalence cases: {missing}"

    def test_every_case_names_a_kernel(self):
        reference = B.get_backend("reference")
        stale = {name for name in CASES if not reference.has(name)}
        assert not stale, f"cases for unregistered kernels: {stale}"


class TestCheckKernel:
    @pytest.mark.parametrize("kernel", sorted(CASES))
    def test_fast_matches_reference(self, kernel):
        assert check_kernel(kernel, "fast", trials=5, seed=11) == 5

    def test_check_all_covers_everything(self):
        checked = check_all("fast", trials=2, seed=3)
        assert checked == sorted(B.get_backend("fast").kernels())

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="no equivalence case"):
            check_kernel("flux_capacitor", "fast")

    def test_detects_wrong_values(self):
        from repro.backend.registry import Backend

        broken = Backend("broken", fallback=B.get_backend("reference"))

        @broken.register()
        def matmul(a, b):
            return a @ b + 1e-3

        with pytest.raises(AssertionError):
            check_kernel("matmul", broken)


class TestCompareOutputs:
    def test_shape_mismatch(self):
        with pytest.raises(AssertionError, match="shape"):
            compare_outputs("k", np.ones((2, 2)), np.ones((4,)))

    def test_dtype_mismatch(self):
        with pytest.raises(AssertionError, match="dtype"):
            compare_outputs("k", np.ones(3, dtype=np.float64),
                            np.ones(3, dtype=np.float32))

    def test_arity_mismatch(self):
        with pytest.raises(AssertionError, match="arity"):
            compare_outputs("k", (np.ones(2), np.ones(2)), np.ones(2))

    def test_integer_outputs_compared_exactly(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        compare_outputs("k", a, a.copy())
        with pytest.raises(AssertionError, match="integer"):
            compare_outputs("k", a, np.array([1, 2, 4], dtype=np.int64))

    def test_float_outputs_within_tolerance(self):
        a = np.ones(4)
        compare_outputs("k", a, a * (1.0 + 1e-9))
        with pytest.raises(AssertionError):
            compare_outputs("k", a, a * 1.01)

    def test_none_outputs_must_pair(self):
        compare_outputs("k", (np.ones(2), None), (np.ones(2), None))
        with pytest.raises(AssertionError, match="None"):
            compare_outputs("k", (np.ones(2), None), (np.ones(2), np.ones(2)))


class TestDtypeAxis:
    """Every kernel at each compute dtype against the float64 oracle."""

    @pytest.mark.parametrize("backend_name", ["reference", "fast"])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64],
                             ids=["float32", "float64"])
    @pytest.mark.parametrize("kernel", sorted(CASES))
    def test_kernel_at_dtype(self, kernel, dtype, backend_name):
        assert check_kernel_dtype(kernel, backend_name, dtype,
                                  trials=3, seed=29) == 3

    def test_check_all_dtype_covers_everything(self):
        checked = check_all_dtype("fast", np.float32, trials=2, seed=5)
        assert checked == sorted(B.get_backend("fast").kernels())

    def test_reference_float64_axis_is_exact(self):
        # at float64 the dtype axis degenerates to the strict contract:
        # reference against itself must be bit-identical
        for kernel in sorted(CASES):
            gen = CASES[kernel]
            rng = np.random.default_rng(17)
            args, kwargs = gen(rng)
            fn = B.get_backend("reference").kernel(kernel)
            first = fn(*args, **kwargs)
            second = fn(*args, **kwargs)
            firsts = first if isinstance(first, tuple) else (first,)
            seconds = second if isinstance(second, tuple) else (second,)
            for a, b in zip(firsts, seconds):
                if a is None:
                    assert b is None
                    continue
                np.testing.assert_array_equal(np.asarray(a), np.asarray(b),
                                              err_msg=kernel)

    def test_unknown_dtype_tolerance_raises(self):
        with pytest.raises(KeyError, match="dtype tolerances"):
            check_kernel_dtype("matmul", "fast", np.float16)

    def test_upcasting_kernel_is_rejected(self):
        from repro.backend.registry import Backend

        sloppy = Backend("sloppy", fallback=B.get_backend("reference"))

        @sloppy.register()
        def matmul(a, b):
            return (a @ b).astype(np.float64)

        with pytest.raises(AssertionError, match="preserve"):
            check_kernel_dtype("matmul", sloppy, np.float32)

    def test_cross_dtype_float_compared_to_oracle(self):
        a64 = np.ones(4, dtype=np.float64)
        a32 = np.ones(4, dtype=np.float32)
        compare_outputs_cross_dtype("k", a64, a32, a32,
                                    np.dtype(np.float32), 1e-4, 1e-5)
        with pytest.raises(AssertionError):
            compare_outputs_cross_dtype("k", a64, a32,
                                        a32 * np.float32(1.01),
                                        np.dtype(np.float32), 1e-4, 1e-5)

    def test_cross_dtype_int_compared_to_same_dtype_oracle(self):
        oracle64 = np.array([0, 1], dtype=np.int64)
        oracle_same = np.array([1, 1], dtype=np.int64)
        got = np.array([1, 1], dtype=np.int64)
        # ties broken differently at float64 are fine; the same-dtype
        # oracle is the binding one
        compare_outputs_cross_dtype("k", oracle64, oracle_same, got,
                                    np.dtype(np.float32), 1e-4, 1e-5)
        with pytest.raises(AssertionError, match="integer"):
            compare_outputs_cross_dtype("k", oracle64, oracle64, got,
                                        np.dtype(np.float32), 1e-4, 1e-5)


class TestGeometryGenerators:
    def test_conv_cases_are_valid_shapes(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            (x, w, stride, padding), _kw = CASES["conv2d_forward"](rng)
            out, cols = B.get_backend("reference").conv2d_forward(
                x, w, stride, padding
            )
            assert out.ndim == 4 and cols.ndim == 2

    def test_pool_cases_exercise_stride_not_equal_kernel(self):
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(40):
            (x, kernel, stride), _kw = CASES["maxpool2d_forward"](rng)
            seen.add(stride == kernel)
        assert seen == {True, False}
