"""Backend registry: registration, fallback dispatch, hooks, scoping."""

import numpy as np
import pytest

from repro import backend as B
from repro.backend.registry import Backend, _nbytes
from repro.errors import ConfigError


def make_pair():
    base = Backend("base")

    @base.register()
    def double(a):
        return a * 2

    @base.register()
    def shared(a):
        return a + 1

    child = Backend("child", fallback=base)

    @child.register()
    def shared(a):  # noqa: F811 -- override on the child backend
        return a + 10

    return base, child


class TestBackend:
    def test_register_and_dispatch(self):
        base, _ = make_pair()
        assert base.double(np.array([3.0])) == np.array([6.0])

    def test_fallback_resolution(self):
        _, child = make_pair()
        assert child.double(np.array([3.0])) == np.array([6.0])

    def test_override_beats_fallback(self):
        base, child = make_pair()
        x = np.array([1.0])
        assert child.shared(x) == np.array([11.0])
        assert base.shared(x) == np.array([2.0])

    def test_overrides_vs_has(self):
        _, child = make_pair()
        assert child.has("double") and not child.overrides("double")
        assert child.has("shared") and child.overrides("shared")
        assert not child.has("missing")

    def test_kernels_unions_fallback(self):
        _, child = make_pair()
        assert child.kernels() == ["double", "shared"]

    def test_unknown_kernel_raises(self):
        base, _ = make_pair()
        with pytest.raises(AttributeError, match="no kernel"):
            base.nonexistent
        with pytest.raises(ConfigError, match="no kernel"):
            base.kernel("nonexistent")

    def test_fallback_cached_after_first_dispatch(self):
        _, child = make_pair()
        child.double(np.array([1.0]))
        # resolution is memoized onto the instance: no further __getattr__
        assert "double" in child.__dict__

    def test_late_register_on_self_beats_cache(self):
        _, child = make_pair()
        child.double(np.array([1.0]))  # caches the fallback impl

        @child.register("double")
        def double(a):
            return a * 200

        assert child.double(np.array([1.0])) == np.array([200.0])
        assert child.overrides("double")

    def test_repr_mentions_fallback(self):
        base, child = make_pair()
        assert "base" in repr(child) and "child" in repr(child)
        assert "->" not in repr(base)


class TestGlobalRegistry:
    def test_default_backends_registered(self):
        assert "reference" in B.available_backends()
        assert "fast" in B.available_backends()

    def test_get_backend_by_name_and_instance(self):
        ref = B.get_backend("reference")
        assert B.get_backend(ref) is ref

    def test_get_backend_unknown_lists_available(self):
        with pytest.raises(ConfigError, match="reference"):
            B.get_backend("vulkan")

    def test_set_backend_returns_previous(self):
        previous = B.set_backend("fast")
        try:
            assert B.active().name == "fast"
        finally:
            B.set_backend(previous)

    def test_set_backend_none_is_noop(self):
        before = B.active()
        assert B.set_backend(None) is before
        assert B.active() is before

    def test_use_backend_scopes_and_restores(self):
        before = B.active()
        with B.use_backend("fast") as active:
            assert active.name == "fast"
            assert B.active() is active
        assert B.active() is before

    def test_use_backend_restores_on_error(self):
        before = B.active()
        with pytest.raises(RuntimeError):
            with B.use_backend("fast"):
                raise RuntimeError("boom")
        assert B.active() is before

    def test_use_backend_none_keeps_active(self):
        before = B.active()
        with B.use_backend(None) as active:
            assert active is before
        assert B.active() is before


class TestKernelHook:
    def test_hook_sees_top_level_calls(self):
        seen = []
        previous = B.set_kernel_hook(
            lambda backend, kernel, seconds, nbytes:
            seen.append((backend, kernel, seconds, nbytes))
        )
        try:
            ref = B.get_backend("reference")
            out = ref.add(np.ones(4), np.ones(4))
        finally:
            B.set_kernel_hook(previous)
        assert np.array_equal(out, np.full(4, 2.0))
        (backend, kernel, seconds, nbytes), = seen
        assert (backend, kernel) == ("reference", "add")
        assert seconds >= 0.0
        assert nbytes == 3 * out.nbytes  # two inputs + one output

    def test_nested_kernels_attributed_to_outermost(self):
        # a kernel composing another *wrapped* kernel must not reach the
        # hook twice or totals would double-count the inner call
        bk = Backend("nested")

        @bk.register()
        def inner(a):
            return a + 1

        @bk.register()
        def outer(a):
            return bk.inner(a) * 2

        seen = []
        previous = B.set_kernel_hook(
            lambda backend, kernel, seconds, nbytes: seen.append(kernel)
        )
        try:
            out = bk.outer(np.array([1.0]))
        finally:
            B.set_kernel_hook(previous)
        assert out == np.array([4.0])
        assert seen == ["outer"]

    def test_set_hook_returns_previous(self):
        def hook(*args):
            pass

        assert B.get_kernel_hook() is None
        assert B.set_kernel_hook(hook) is None
        assert B.get_kernel_hook() is hook
        assert B.set_kernel_hook(None) is hook
        assert B.get_kernel_hook() is None

    def test_nbytes_counts_arrays_only(self):
        x = np.ones(8)
        assert _nbytes((x, 3, "s"), (x, None)) == 2 * x.nbytes
        assert _nbytes((), 5) == 0
