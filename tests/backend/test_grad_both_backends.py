"""Finite-difference gradient checks parametrized over both backends.

Covers the geometry corners the original suite was thin on: pooling
with stride != kernel and convolution with padding > 0 -- and runs
every check under reference AND fast dispatch, so a backend swap can
never silently change training gradients.
"""

import numpy as np
import pytest

from repro import backend as B
from repro.autograd import functional as F, grad_check

RNG = np.random.default_rng(77)

BACKENDS = ["reference", "fast"]


@pytest.fixture(params=BACKENDS)
def backend(request):
    with B.use_backend(request.param):
        yield request.param


class TestConvGrad:
    @pytest.mark.parametrize("stride,padding", [(1, 1), (1, 2), (2, 1), (2, 2)])
    def test_conv2d_with_padding(self, backend, stride, padding):
        x = RNG.standard_normal((2, 2, 5, 5))
        w = RNG.standard_normal((3, 2, 3, 3))
        assert grad_check(
            lambda xt, wt: F.conv2d(xt, wt, stride=stride, padding=padding).sum(),
            [x, w],
        )

    def test_conv2d_with_bias_and_padding(self, backend):
        x = RNG.standard_normal((1, 2, 4, 4))
        w = RNG.standard_normal((2, 2, 3, 3))
        b = RNG.standard_normal(2)
        assert grad_check(
            lambda xt, wt, bt: F.conv2d(xt, wt, bt, padding=1).sum(),
            [x, w, b],
        )


class TestPoolingGrad:
    @pytest.mark.parametrize("kernel,stride", [(2, 1), (3, 2), (2, 3), (3, 1)])
    def test_max_pool_stride_not_equal_kernel(self, backend, kernel, stride):
        # unique values keep argmax stable under finite-difference probes
        size = 6
        x = RNG.permutation(size * size * 2).astype(np.float64)
        x = (x / x.size + 0.01 * RNG.standard_normal(x.size)).reshape(1, 2, size, size)
        assert grad_check(
            lambda xt: F.max_pool2d(xt, kernel, stride=stride).sum(),
            [x],
        )

    @pytest.mark.parametrize("kernel,stride", [(2, 1), (3, 2), (2, 3)])
    def test_avg_pool_stride_not_equal_kernel(self, backend, kernel, stride):
        x = RNG.standard_normal((2, 2, 6, 6))
        assert grad_check(
            lambda xt: F.avg_pool2d(xt, kernel, stride=stride).sum(),
            [x],
        )


class TestFloat32Grad:
    """The same geometry corners with the analytic pass in float32.

    The finite-difference oracle always runs in float64 (see
    ``grad_check``), so these certify that single-precision backwards
    are correct to the documented FLOAT32 tolerance floors on both
    backends -- the contract the precision policy's speedup rests on.
    """

    def test_conv2d_with_padding_float32(self, backend):
        x = RNG.standard_normal((2, 2, 5, 5))
        w = RNG.standard_normal((3, 2, 3, 3))
        assert grad_check(
            lambda xt, wt: F.conv2d(xt, wt, stride=2, padding=1).sum(),
            [x, w], dtype=np.float32,
        )

    def test_max_pool_stride_not_equal_kernel_float32(self, backend):
        size = 6
        x = RNG.permutation(size * size * 2).astype(np.float64)
        x = (x / x.size + 0.01 * RNG.standard_normal(x.size)).reshape(1, 2, size, size)
        assert grad_check(
            lambda xt: F.max_pool2d(xt, 3, stride=2).sum(),
            [x], dtype=np.float32,
        )

    def test_avg_pool_stride_not_equal_kernel_float32(self, backend):
        x = RNG.standard_normal((2, 2, 6, 6))
        assert grad_check(
            lambda xt: F.avg_pool2d(xt, 2, stride=3).sum(),
            [x], dtype=np.float32,
        )

    def test_batchnorm_train_mode_float32(self, backend):
        # via the module so the fast backend takes the fused
        # BatchNormTrainFn node and reference the composed graph
        from repro.nn.norm import BatchNorm2d

        bn = BatchNorm2d(3)
        bn.train()
        x = RNG.standard_normal((4, 3, 5, 5))
        assert grad_check(lambda xt: bn(xt).sum(), [x], dtype=np.float32)

    def test_fused_softmax_cross_entropy_float32(self, backend):
        logits = RNG.standard_normal((6, 5))
        targets = RNG.integers(0, 5, size=6)
        assert grad_check(
            lambda lt: F.softmax_cross_entropy(lt, targets),
            [logits], dtype=np.float32,
        )


class TestBackendAgreement:
    def test_conv_gradients_bitwise_close_across_backends(self):
        # same inputs, same loss: fast gradients must match reference
        # within equivalence tolerance
        x = RNG.standard_normal((2, 3, 6, 6))
        w = RNG.standard_normal((4, 3, 3, 3))
        grads = {}
        for name in BACKENDS:
            with B.use_backend(name):
                from repro.autograd import Tensor

                xt = Tensor(x.copy(), requires_grad=True)
                wt = Tensor(w.copy(), requires_grad=True)
                F.conv2d(xt, wt, stride=2, padding=1).sum().backward()
                grads[name] = (xt.grad.copy(), wt.grad.copy())
        np.testing.assert_allclose(grads["fast"][0], grads["reference"][0],
                                   rtol=1e-6, atol=1e-9)
        np.testing.assert_allclose(grads["fast"][1], grads["reference"][1],
                                   rtol=1e-6, atol=1e-9)
