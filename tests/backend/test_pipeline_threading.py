"""Backend threading through trainer, evaluation, sweep, and CLI --
plus the golden fixed-seed equivalence between the two backends."""

import numpy as np
import pytest

from repro import backend as B
from repro.cli import main
from repro.models.simple_cnn import SimpleCNN
from repro.pipeline import Trainer, TrainingConfig
from repro.pipeline.sweep import Sweep


def tiny_conv_problem(n=48, size=8, channels=2, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal((n, channels, size, size)).astype(np.float64)
    labels = (np.arange(n) % classes).astype(np.int64)
    return inputs, labels


def train_history(backend, epochs=2, seed=0):
    inputs, labels = tiny_conv_problem()
    model = SimpleCNN(in_channels=2, num_classes=3, image_size=8, width=4,
                      rng=np.random.default_rng(seed))
    config = TrainingConfig(epochs=epochs, batch_size=16, lr=0.05, seed=seed)
    trainer = Trainer(model, inputs, labels, config, backend=backend)
    return trainer.train(), model


class TestTrainerBackend:
    def test_backend_scoped_to_epoch_only(self):
        before = B.active()
        history, _ = train_history("fast", epochs=1)
        assert history.epochs == 1
        assert B.active() is before  # training must not leak the backend

    def test_none_backend_keeps_process_default(self):
        history, _ = train_history(None, epochs=1)
        assert history.epochs == 1

    def test_golden_reference_run_is_bit_identical(self):
        # --backend reference must not change a single bit of training
        # relative to the process default (which IS reference)
        default_hist, default_model = train_history(None)
        ref_hist, ref_model = train_history("reference")
        assert default_hist.task_loss == ref_hist.task_loss
        for (name, p_default), (_, p_ref) in zip(
            default_model.named_parameters(), ref_model.named_parameters()
        ):
            assert np.array_equal(p_default.data, p_ref.data), name

    def test_golden_fast_run_stays_in_tolerance_band(self):
        # fast is allclose-equivalent per kernel; over a short training
        # run the losses must stay within a small relative band
        ref_hist, _ = train_history("reference")
        fast_hist, _ = train_history("fast")
        np.testing.assert_allclose(
            fast_hist.task_loss, ref_hist.task_loss, rtol=1e-4
        )


class TestEvaluationBackend:
    def test_evaluate_attack_accepts_backend(self):
        from repro.attacks.layerwise import group_by_layer_ranges, assign_payload
        from repro.attacks.secret import SecretPayload
        from repro.datasets.synthetic_digits import (
            SyntheticDigitsConfig,
            make_synthetic_digits,
        )
        from repro.pipeline.evaluation import evaluate_attack

        dataset = make_synthetic_digits(
            SyntheticDigitsConfig(num_images=24, image_size=12, seed=3)
        )
        model = SimpleCNN(in_channels=1, num_classes=10, image_size=12, width=4,
                          rng=np.random.default_rng(0))
        groups = group_by_layer_ranges(model, [(1, -1)], [10.0])
        payload = SecretPayload.from_dataset(dataset, [0, 1])
        assign_payload(groups, payload)
        batch = dataset.images.transpose(0, 3, 1, 2).astype(np.float64) / 255.0
        results = {}
        for backend in (None, "reference", "fast"):
            results[backend] = evaluate_attack(
                model, batch, dataset.labels, groups=groups, backend=backend
            )
        assert results[None].accuracy == results["reference"].accuracy
        assert results["fast"].accuracy == pytest.approx(
            results["reference"].accuracy, abs=1e-9
        )


class TestSweepBackend:
    def grid_experiment(self):
        def experiment(scale):
            return {"backend_name": B.active().name, "scale": scale * 2}
        return {"scale": [1, 2]}, experiment

    def test_inline_sweep_threads_backend(self):
        grid, experiment = self.grid_experiment()
        result = Sweep(grid, experiment).run(backend="fast")
        assert [r["backend_name"] for r in result.records] == ["fast", "fast"]
        assert B.active().name == "reference"  # restored after each point

    def test_pool_sweep_threads_backend_by_name(self):
        grid, experiment = self.grid_experiment()
        result = Sweep(grid, experiment).run(parallel=1, backend="fast")
        assert [r["backend_name"] for r in result.records] == ["fast", "fast"]

    def test_sweep_without_backend_uses_default(self):
        grid, experiment = self.grid_experiment()
        result = Sweep(grid, experiment).run()
        assert [r["backend_name"] for r in result.records] == \
            ["reference", "reference"]


class TestCliBackend:
    def test_global_backend_flag_is_restored(self, capsys):
        code = main(["--backend", "fast", "bench-kernels", "neg",
                     "--repeats", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "neg" in out
        assert B.active().name == "reference"  # flag must not leak

    def test_bench_kernels_table_lists_kernels(self, capsys):
        code = main(["bench-kernels", "matmul", "relu", "--repeats", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "matmul" in out and "relu" in out
        assert "speedup" in out

    def test_bench_kernels_unknown_kernel_fails(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench-kernels", "warp_drive", "--repeats", "1"])

    def test_bench_kernels_csv_export(self, tmp_path, capsys):
        out_path = tmp_path / "kernels.csv"
        code = main(["bench-kernels", "neg", "add", "--repeats", "1",
                     "--csv", str(out_path)])
        assert code == 0
        text = out_path.read_text()
        header = text.splitlines()[0]
        assert "kernel" in header and "speedup" in header
        assert len(text.splitlines()) == 3  # header + two kernels

    def test_profile_reports_kernel_table(self, capsys):
        code = main(["--backend", "fast", "profile", "quickstart",
                     "--steps", "1", "--batch-size", "16", "--top", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend kernels (fast)" in out
        assert "conv2d_backward" in out
        assert "kernel time" in out
