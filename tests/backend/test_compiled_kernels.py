"""Compiled backend: strided-window gathers must be bitwise equal to fast.

The graph compiler is allowed to swap this backend in under a captured
program only because a gather reorders memory without arithmetic -- so
every override here is held to ``array_equal`` against the fast
backend, not allclose.  The one documented exception (thread-tiled
large matmul) is exercised separately at allclose grade.
"""

import numpy as np
import pytest

from repro import backend as B
from repro.backend import compiled, fast
from repro.backend.equivalence import CASES, check_all, check_all_dtype

FAST = B.get_backend("fast")
COMPILED = B.get_backend("compiled")

CONV_SHAPES = [
    ((16, 3, 8, 8), 3, 1, 1),
    ((16, 8, 4, 4), 3, 1, 1),
    ((4, 2, 9, 9), 3, 2, 1),
    ((1, 1, 5, 5), 1, 1, 0),
    ((3, 4, 7, 7), 5, 1, 2),
    ((2, 5, 6, 6), 2, 2, 0),
]

POOL_SHAPES = [
    ((16, 8, 8, 8), 2, 2),
    ((16, 16, 4, 4), 2, 2),
    ((3, 2, 9, 9), 3, 3),
    ((2, 4, 6, 6), 3, 2),   # overlapping windows: backward falls back
    ((5, 3, 7, 7), 2, 1),   # overlapping windows: backward falls back
    ((1, 1, 5, 5), 5, 5),
]


@pytest.fixture(autouse=True)
def fresh_caches():
    compiled.clear_caches()
    fast.clear_caches()
    yield
    compiled.clear_caches()
    fast.clear_caches()


def _conv_inputs(shape, kernel, rng):
    batch, channels, height, width = shape
    x = rng.standard_normal(shape)
    weight = rng.standard_normal((channels + 1, channels, kernel, kernel))
    bias = rng.standard_normal(channels + 1)
    return x, weight, bias


class TestConvBitwise:
    @pytest.mark.parametrize("shape,kernel,stride,padding", CONV_SHAPES)
    def test_im2col_matches_fast(self, shape, kernel, stride, padding):
        x = np.random.default_rng(0).standard_normal(shape)
        got = COMPILED.im2col(x, kernel, kernel, stride, padding)
        want = FAST.im2col(x, kernel, kernel, stride, padding)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)
        assert got.flags.c_contiguous
        assert got.base is None  # never a view of pooled scratch

    @pytest.mark.parametrize("shape,kernel,stride,padding", CONV_SHAPES)
    def test_conv2d_forward_matches_fast(self, shape, kernel, stride, padding):
        rng = np.random.default_rng(1)
        x, weight, _ = _conv_inputs(shape, kernel, rng)
        out_c, cols_c = COMPILED.conv2d_forward(x, weight, stride, padding)
        out_f, cols_f = FAST.conv2d_forward(x, weight, stride, padding)
        assert np.array_equal(out_c, out_f)
        assert np.array_equal(cols_c, cols_f)

    @pytest.mark.parametrize("shape,kernel,stride,padding", CONV_SHAPES)
    @pytest.mark.parametrize("relu", [False, True])
    def test_conv2d_infer_matches_fast(self, shape, kernel, stride, padding,
                                       relu):
        rng = np.random.default_rng(2)
        x, weight, bias = _conv_inputs(shape, kernel, rng)
        got = COMPILED.conv2d_infer(x, weight, bias, stride, padding, relu)
        want = FAST.conv2d_infer(x, weight, bias, stride, padding, relu)
        assert np.array_equal(got, want)

    def test_float32_stays_float32_and_bitwise(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 3, 8, 8)).astype(np.float32)
        weight = rng.standard_normal((5, 3, 3, 3)).astype(np.float32)
        out_c, cols_c = COMPILED.conv2d_forward(x, weight, 1, 1)
        out_f, cols_f = FAST.conv2d_forward(x, weight, 1, 1)
        assert out_c.dtype == np.float32
        assert np.array_equal(out_c, out_f)
        assert np.array_equal(cols_c, cols_f)


class TestPoolBitwise:
    @pytest.mark.parametrize("shape,kernel,stride", POOL_SHAPES)
    def test_maxpool_forward_backward_match_fast(self, shape, kernel, stride):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(shape)
        out_c, arg_c = COMPILED.maxpool2d_forward(x, kernel, stride)
        out_f, arg_f = FAST.maxpool2d_forward(x, kernel, stride)
        assert np.array_equal(out_c, out_f)
        assert np.array_equal(arg_c, arg_f)
        grad = rng.standard_normal(out_c.shape)
        back_c = COMPILED.maxpool2d_backward(grad, arg_c, shape, kernel, stride)
        back_f = FAST.maxpool2d_backward(grad, arg_f, shape, kernel, stride)
        assert np.array_equal(back_c, back_f)
        assert back_c.dtype == back_f.dtype

    @pytest.mark.parametrize("shape,kernel,stride", POOL_SHAPES)
    def test_maxpool_infer_and_avgpool_match_fast(self, shape, kernel, stride):
        x = np.random.default_rng(5).standard_normal(shape)
        assert np.array_equal(
            COMPILED.maxpool2d_infer(x, kernel, stride),
            FAST.maxpool2d_infer(x, kernel, stride),
        )
        assert np.array_equal(
            COMPILED.avgpool2d_forward(x, kernel, stride),
            FAST.avgpool2d_forward(x, kernel, stride),
        )

    def test_scatter_cache_is_capacity_capped(self):
        rng = np.random.default_rng(6)
        for extra in range(compiled.INDEX_CACHE_CAPACITY + 8):
            side = 2 * (extra + 2)
            x = rng.standard_normal((1, 1, side, side))
            _, argmax = COMPILED.maxpool2d_forward(x, 2, 2)
            grad = np.ones((1, 1, side // 2, side // 2))
            COMPILED.maxpool2d_backward(grad, argmax, x.shape, 2, 2)
        assert len(compiled._scatter_cache) <= compiled.INDEX_CACHE_CAPACITY
        compiled.clear_caches()
        assert not compiled._scatter_cache
        assert not compiled._arange_cache

    def test_evicted_scatter_entry_recomputes_correctly(self):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((2, 3, 8, 8))
        _, argmax = COMPILED.maxpool2d_forward(x, 2, 2)
        grad = rng.standard_normal((2, 3, 4, 4))
        first = COMPILED.maxpool2d_backward(grad, argmax, x.shape, 2, 2)
        # force the cached base offsets out, then recompute from scratch
        for i in range(compiled.INDEX_CACHE_CAPACITY + 1):
            compiled._cached(compiled._scatter_cache, ("filler", i),
                             lambda: np.empty(0))
        again = COMPILED.maxpool2d_backward(grad, argmax, x.shape, 2, 2)
        assert np.array_equal(first, again)


class TestMatmul:
    def test_small_matmul_is_bitwise_monolithic(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((64, 32))
        b = rng.standard_normal((32, 48))
        assert np.array_equal(COMPILED.matmul(a, b), a @ b)

    def test_batched_operands_skip_tiling(self):
        rng = np.random.default_rng(9)
        a = rng.standard_normal((3, 4, 5))
        b = rng.standard_normal((3, 5, 6))
        assert np.array_equal(COMPILED.matmul(a, b), a @ b)

    def test_tiled_path_is_allclose(self, monkeypatch):
        # force the threaded row-partition on a tiny product; BLAS may
        # block differently per partition so this path is allclose-grade
        monkeypatch.setattr(compiled, "TILED_MATMUL_THRESHOLD", 1)
        monkeypatch.setattr(compiled, "_workers", 2)
        monkeypatch.setattr(compiled, "_executor", None)
        rng = np.random.default_rng(10)
        a = rng.standard_normal((16, 8))
        b = rng.standard_normal((8, 12))
        try:
            out = compiled.matmul(a, b)
        finally:
            if compiled._executor is not None:
                compiled._executor.shutdown(wait=True)
        assert out.shape == (16, 12)
        np.testing.assert_allclose(out, a @ b, rtol=1e-12)


class TestEquivalenceHarness:
    def test_every_compiled_kernel_has_a_case(self):
        missing = set(COMPILED.kernels()) - set(CASES)
        assert not missing, f"kernels without equivalence cases: {missing}"

    def test_check_all_against_reference(self):
        checked = check_all("compiled", trials=2, seed=3)
        assert checked == sorted(COMPILED.kernels())

    def test_check_all_float32(self):
        checked = check_all_dtype("compiled", np.float32, trials=2, seed=5)
        assert checked == sorted(COMPILED.kernels())


class TestCapabilityFlags:
    def test_flags_for_info_and_manifests(self):
        assert COMPILED.graph_compiler is True
        assert COMPILED.fusion is True
        assert COMPILED.tiling is True
        assert COMPILED.name == "compiled"
