"""Fast-backend internals: caches, buffer pool, fused inference, dtype
contracts (the col2im float32 regression lives here)."""

import numpy as np
import pytest

from repro import backend as B
from repro.autograd import Tensor, no_grad
from repro.autograd.ops_nn import avg_pool2d, col2im, conv2d, im2col, max_pool2d
from repro.backend import fast
from repro.nn.norm import BatchNorm1d, BatchNorm2d

RNG = np.random.default_rng(5)


@pytest.fixture(autouse=True)
def fresh_caches():
    fast.clear_caches()
    yield
    fast.clear_caches()


class TestIndexCaches:
    def test_repeat_calls_hit_the_cache(self):
        a = fast.cached_im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)
        b = fast.cached_im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)
        assert a[0] is b[0]  # same cached arrays, not recomputed copies

    def test_key_ignores_batch_size(self):
        a = fast.cached_im2col_indices((1, 3, 8, 8), 3, 3, 1, 1)
        b = fast.cached_im2col_indices((7, 3, 8, 8), 3, 3, 1, 1)
        assert a[0] is b[0]

    def test_cache_matches_reference_indices(self):
        from repro.backend.reference import im2col_indices

        got = fast.cached_im2col_indices((2, 2, 6, 5), 3, 2, 2, 1)
        want = im2col_indices((2, 2, 6, 5), 3, 2, 2, 1)
        for g, w in zip(got[:3], want[:3]):
            assert np.array_equal(g, w)
        assert got[3:] == want[3:]

    def test_lru_is_bounded(self):
        for size in range(fast._CACHE_SIZE + 16):
            fast.cached_im2col_indices((1, 1, size + 4, size + 4), 2, 2, 1, 0)
        assert len(fast._indices_cache) == fast._CACHE_SIZE

    def test_clear_caches_empties_everything(self):
        fast.cached_im2col_indices((1, 1, 5, 5), 2, 2, 1, 0)
        fast._pool.give(np.empty((3, 3)))
        fast.clear_caches()
        assert not fast._indices_cache
        assert not fast._pool._free


class TestBufferPool:
    def test_take_give_recycles(self):
        pool = fast.BufferPool()
        a = pool.take((4, 4), np.float32)
        pool.give(a)
        b = pool.take((4, 4), np.float32)
        assert b is a

    def test_distinct_keys_do_not_mix(self):
        pool = fast.BufferPool()
        a = pool.take((4, 4), np.float32)
        pool.give(a)
        b = pool.take((4, 4), np.float64)
        assert b is not a
        c = pool.take((4, 5), np.float32)
        assert c is not a

    def test_give_is_bounded_per_key(self):
        pool = fast.BufferPool(max_per_key=2)
        arrays = [np.empty((2, 2)) for _ in range(5)]
        for arr in arrays:
            pool.give(arr)
        assert len(pool._free[((2, 2), np.dtype(np.float64))]) == 2

    def test_returned_cols_never_pooled(self):
        # cols is saved for backward by Conv2dFn: if conv2d_forward drew
        # it from the pool, the next forward would overwrite saved state.
        fast_b = B.get_backend("fast")
        x = RNG.normal(size=(2, 3, 6, 6))
        w = RNG.normal(size=(4, 3, 3, 3))
        _, cols_a = fast_b.conv2d_forward(x, w, 1, 1)
        snapshot = cols_a.copy()
        fast_b.conv2d_forward(x + 1.0, w, 1, 1)
        fast_b.conv2d_infer(x - 1.0, w, None, 1, 1)
        assert np.array_equal(cols_a, snapshot)


class TestConvBackwardGradSkip:
    def _setup(self):
        x = RNG.normal(size=(2, 3, 6, 6))
        w = RNG.normal(size=(4, 3, 3, 3))
        out, cols = B.get_backend("fast").conv2d_forward(x, w, 1, 1)
        return x, w, cols, RNG.normal(size=out.shape)

    def test_fast_skips_input_gradient_on_request(self):
        x, w, cols, grad = self._setup()
        fast_b = B.get_backend("fast")
        gx, gw = fast_b.conv2d_backward(grad, cols, w, x.shape, 1, 1,
                                        need_input_grad=False)
        assert gx is None
        full_gx, full_gw = fast_b.conv2d_backward(grad, cols, w, x.shape, 1, 1)
        assert full_gx is not None
        np.testing.assert_allclose(gw, full_gw, rtol=1e-12)

    def test_reference_oracle_ignores_the_hint(self):
        x, w, cols, grad = self._setup()
        ref = B.get_backend("reference")
        gx, gw = ref.conv2d_backward(grad, cols, w, x.shape, 1, 1,
                                     need_input_grad=False)
        assert gx is not None  # oracle always computes both gradients

    def test_graph_leaf_without_grad_trains_identically(self):
        # the skip must be invisible to training: weight grads with a
        # non-requiring input leaf equal those with a requiring one
        x = RNG.normal(size=(2, 2, 5, 5))
        w = RNG.normal(size=(3, 2, 3, 3))
        grads = {}
        with B.use_backend("fast"):
            for req in (False, True):
                xt = Tensor(x.copy(), requires_grad=req)
                wt = Tensor(w.copy(), requires_grad=True)
                conv2d(xt, wt, padding=1).sum().backward()
                grads[req] = wt.grad
        np.testing.assert_allclose(grads[False], grads[True], rtol=1e-12)


class TestFusedBatchNormTraining:
    def _layer_pair(self, cls, num_features):
        layers = []
        for _ in range(2):
            bn = cls(num_features)
            bn.gamma.data[:] = np.linspace(0.5, 1.5, num_features)
            bn.beta.data[:] = np.linspace(-0.2, 0.2, num_features)
            bn.train()
            layers.append(bn)
        return layers

    @pytest.mark.parametrize("shape", [(6, 4, 5, 5), (8, 5)])
    def test_fused_matches_composed_graph(self, shape):
        cls = BatchNorm2d if len(shape) == 4 else BatchNorm1d
        composed, fused = self._layer_pair(cls, shape[1])
        x = RNG.normal(size=shape)
        with B.use_backend("reference"):
            ref_out = composed(Tensor(x.copy(), requires_grad=True))
            ref_out.sum().backward()
        with B.use_backend("fast"):
            fast_out = fused(Tensor(x.copy(), requires_grad=True))
            fast_out.sum().backward()
        np.testing.assert_allclose(fast_out.data, ref_out.data,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(fused.gamma.grad, composed.gamma.grad,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(fused.beta.grad, composed.beta.grad,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(fused.running_mean, composed.running_mean,
                                   rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(fused.running_var, composed.running_var,
                                   rtol=1e-9, atol=1e-12)

    def test_input_gradient_matches_composed_graph(self):
        composed, fused = self._layer_pair(BatchNorm2d, 3)
        x = RNG.normal(size=(4, 3, 6, 6))
        grads = {}
        for backend, bn in (("reference", composed), ("fast", fused)):
            with B.use_backend(backend):
                xt = Tensor(x.copy(), requires_grad=True)
                bn(xt).sum().backward()
                grads[backend] = xt.grad
        np.testing.assert_allclose(grads["fast"], grads["reference"],
                                   rtol=1e-9, atol=1e-12)

    def test_reference_backend_keeps_composed_graph(self):
        # the capability flag is fast-only: under reference the training
        # forward must build the composed multi-node graph (bit-identity)
        bn = BatchNorm2d(2)
        bn.train()
        with B.use_backend("reference"):
            out = bn(Tensor(RNG.normal(size=(3, 2, 4, 4)), requires_grad=True))
        assert type(out._creator).__name__ != "BatchNormTrainFn"
        with B.use_backend("fast"):
            out = bn(Tensor(RNG.normal(size=(3, 2, 4, 4)), requires_grad=True))
        assert type(out._creator).__name__ == "BatchNormTrainFn"

    def test_fused_path_under_no_grad_still_updates_running_stats(self):
        bn = BatchNorm2d(2)
        bn.train()
        x = RNG.normal(size=(3, 2, 4, 4))
        with B.use_backend("fast"), no_grad():
            out = bn(Tensor(x))
        assert not out.requires_grad
        assert not np.allclose(bn.running_mean, 0.0)


class TestCol2imContract:
    """Satellite: explicit dtype/contiguity contract for col2im."""

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("padding", [0, 1])
    def test_dtype_preserved(self, backend, dtype, padding):
        # regression: bincount produces float64; a float32 cols input
        # must NOT come back silently upcast
        bk = B.get_backend(backend)
        shape = (2, 3, 6, 6)
        cols = bk.im2col(RNG.normal(size=shape).astype(dtype), 3, 3, 1, padding)
        assert cols.dtype == dtype
        out = bk.col2im(cols, shape, 3, 3, 1, padding)
        assert out.dtype == dtype
        assert out.shape == shape

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    @pytest.mark.parametrize("padding", [0, 2])
    def test_output_c_contiguous(self, backend, padding):
        bk = B.get_backend(backend)
        shape = (2, 2, 5, 5)
        cols = bk.im2col(RNG.normal(size=shape), 2, 2, 1, padding)
        out = bk.col2im(cols, shape, 2, 2, 1, padding)
        assert out.flags["C_CONTIGUOUS"]


class TestFusedInference:
    def test_conv2d_infer_matches_graph_path(self):
        x = RNG.normal(size=(2, 3, 8, 8)).astype(np.float32)
        w = RNG.normal(size=(5, 3, 3, 3)).astype(np.float32)
        b = RNG.normal(size=5).astype(np.float32)
        graph = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=1, padding=1)
        graph = Tensor(np.maximum(graph.data, 0.0))
        for backend in ("reference", "fast"):
            fused = B.get_backend(backend).conv2d_infer(x, w, b, 1, 1, relu=True)
            np.testing.assert_allclose(fused, graph.data, rtol=1e-6, atol=1e-6)

    def test_no_grad_conv_uses_inference_path(self):
        x, w = RNG.normal(size=(1, 2, 5, 5)), RNG.normal(size=(3, 2, 3, 3))
        with_grad = conv2d(Tensor(x, requires_grad=True), Tensor(w), padding=1)
        assert with_grad.requires_grad
        with no_grad():
            inferred = conv2d(Tensor(x, requires_grad=True), Tensor(w), padding=1)
        assert not inferred.requires_grad
        np.testing.assert_allclose(inferred.data, with_grad.data,
                                   rtol=1e-6, atol=1e-9)

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_no_grad_pooling_matches_graph(self, backend):
        x = RNG.normal(size=(2, 3, 7, 7))
        with B.use_backend(backend):
            graph_max = max_pool2d(Tensor(x), 2, stride=2)
            graph_avg = avg_pool2d(Tensor(x), 3, stride=2)
            with no_grad():
                fast_max = max_pool2d(Tensor(x), 2, stride=2)
                fast_avg = avg_pool2d(Tensor(x), 3, stride=2)
        np.testing.assert_allclose(fast_max.data, graph_max.data, rtol=1e-6)
        np.testing.assert_allclose(fast_avg.data, graph_avg.data, rtol=1e-6)

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_batchnorm_eval_no_grad_path(self, backend):
        bn = BatchNorm2d(3)
        x = RNG.normal(size=(4, 3, 5, 5))
        bn.train()
        bn(Tensor(x))  # populate running statistics
        bn.eval()
        graph_out = bn(Tensor(x, requires_grad=True))
        with B.use_backend(backend), no_grad():
            infer_out = bn(Tensor(x))
        np.testing.assert_allclose(infer_out.data, graph_out.data,
                                   rtol=1e-6, atol=1e-8)

    def test_col2im_matches_reference_across_geometries(self):
        # the slice-accumulation scatter must agree with np.add.at on
        # every stride/kernel/padding combination, including stride > 1
        # gaps and kernels wider than the stride (overlapping taps)
        ref = B.get_backend("reference")
        fast_b = B.get_backend("fast")
        for kernel, stride, padding in [(1, 1, 0), (2, 2, 0), (3, 1, 1),
                                        (3, 2, 2), (2, 3, 1), (4, 2, 0)]:
            shape = (3, 2, 9, 8)
            cols = ref.im2col(RNG.normal(size=shape), kernel, kernel,
                              stride, padding)
            want = ref.col2im(cols, shape, kernel, kernel, stride, padding)
            got = fast_b.col2im(cols, shape, kernel, kernel, stride, padding)
            np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)

    def test_im2col_dispatches_through_active_backend(self):
        x = RNG.normal(size=(2, 2, 6, 6))
        with B.use_backend("reference"):
            ref_cols = im2col(x, 3, 3, 1, 1)
        with B.use_backend("fast"):
            fast_cols = im2col(x, 3, 3, 1, 1)
        np.testing.assert_allclose(ref_cols, fast_cols, rtol=1e-12)
        with B.use_backend("fast"):
            back = col2im(fast_cols, x.shape, 3, 3, 1, 1)
        assert back.shape == x.shape


class TestIndexCacheLRU:
    """Capacity control, recency, and eviction telemetry of the im2col LRU."""

    @pytest.fixture(autouse=True)
    def restore_capacity(self):
        previous = fast.index_cache_stats()["capacity"]
        yield
        fast.set_index_cache_capacity(previous)

    @staticmethod
    def _warm(side):
        return fast.cached_im2col_indices((1, 1, side, side), 2, 2, 1, 0)

    def test_set_capacity_returns_previous_and_evicts(self):
        previous = fast.set_index_cache_capacity(4)
        assert previous == fast._CACHE_SIZE
        before = fast.index_cache_stats()["evictions"]
        for side in range(4, 10):  # six distinct keys through capacity 4
            self._warm(side)
        stats = fast.index_cache_stats()
        assert stats["capacity"] == 4
        assert stats["size"] == 4
        assert stats["evictions"] == before + 2

    def test_evicted_entry_recomputes_identically(self):
        from repro.backend.reference import im2col_indices

        fast.set_index_cache_capacity(2)
        first = self._warm(6)
        self._warm(7)
        self._warm(8)  # evicts the side-6 entry
        again = self._warm(6)
        assert again[0] is not first[0]  # genuinely recomputed
        want = im2col_indices((1, 1, 6, 6), 2, 2, 1, 0)
        for got, ref in zip(again[:3], want[:3]):
            assert np.array_equal(got, ref)
        assert again[3:] == want[3:]

    def test_hits_refresh_recency_not_insertion_order(self):
        fast.set_index_cache_capacity(2)
        kept = self._warm(6)
        self._warm(7)
        touched = self._warm(6)  # hit: side 6 becomes most recent
        assert touched[0] is kept[0]
        self._warm(8)  # must evict side 7, the coldest, not side 6
        assert self._warm(6)[0] is kept[0]

    def test_eviction_mirrors_to_telemetry(self):
        from repro.telemetry.metrics import default_registry

        registry = default_registry()
        counter = registry.counter("backend.im2col_cache_evictions")
        before = counter.snapshot()
        fast.set_index_cache_capacity(1)
        self._warm(6)
        self._warm(7)
        self._warm(8)
        assert counter.snapshot() == before + 2
        assert registry.gauge("backend.im2col_cache_size").snapshot() == 1.0

    def test_resize_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            fast.set_index_cache_capacity(0)

    def test_stats_shape(self):
        assert set(fast.index_cache_stats()) == {
            "size", "capacity", "evictions",
        }
