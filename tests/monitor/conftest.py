"""Fixtures for the monitor tests: a tiny payload-bearing layer group.

Probes only need the LayerGroup duck type (``name`` / ``payload`` /
``weight_vector``), so the groups here wrap plain arrays instead of a
trained model -- the fixtures are deterministic and run in microseconds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.layerwise import LayerGroup
from repro.attacks.secret import SecretPayload
from repro.telemetry.metrics import default_registry


@pytest.fixture(autouse=True)
def _clean_default_registry():
    """Monitor ticks register per-probe timers in the global registry;
    drop them afterwards so later tests see a pristine snapshot
    (reset() keeps names registered, and a zero-count timer snapshots
    NaN fields)."""
    yield
    default_registry().clear()


class FakeParam:
    """Just enough of nn.Parameter for LayerGroup.weight_vector()."""

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.size = self.data.size
        self.grad = None


def make_payload(images: int = 3, side: int = 4, seed: int = 0) -> SecretPayload:
    rng = np.random.default_rng(seed)
    pixels = rng.integers(0, 256, size=(images, side, side, 1)).astype(np.uint8)
    labels = rng.integers(0, 4, size=images).astype(np.int64)
    return SecretPayload(pixels, labels)


def make_group(payload: SecretPayload, encode: bool = True,
               name: str = "group1", seed: int = 1) -> LayerGroup:
    """A group whose weights either mirror the payload or are noise."""
    rng = np.random.default_rng(seed)
    n = payload.total_pixels + 8
    if encode:
        weights = np.empty(n)
        secret = payload.secret_vector()
        weights[:secret.size] = secret / 255.0 - 0.5   # affine image mirror
        weights[secret.size:] = rng.standard_normal(8) * 0.01
    else:
        weights = rng.standard_normal(n) * 0.05
    return LayerGroup(name=name, param_names=[f"{name}.w"],
                      params=[FakeParam(weights)], rate=20.0, payload=payload)


@pytest.fixture
def payload() -> SecretPayload:
    return make_payload()


@pytest.fixture
def encoding_group(payload) -> LayerGroup:
    return make_group(payload, encode=True)


@pytest.fixture
def benign_group(payload) -> LayerGroup:
    return make_group(payload, encode=False)
