"""Timeseries rendering: run tables, diffs, parse errors."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.monitor import compare_runs, load_timeseries, render_run, series
from repro.monitor.report import error_counts, fields_by_probe, probe_ticks


def _record(probe, epoch, **fields):
    return {"probe": probe, "scope": "epoch", "epoch": epoch, "batch": None,
            **fields}


RUN_A = [
    _record("correlation", 0, corr_abs_mean=0.1),
    _record("correlation", 1, corr_abs_mean=0.3),
    _record("correlation", 2, corr_abs_mean=0.6),
    _record("decode", 0, psnr_mean=12.0),
    _record("decode", 2, psnr_mean=18.0),
    {"probe_error": True, "probe": "decode", "scope": "epoch", "epoch": 1,
     "batch": None, "error": "ValueError('x')", "disabled": False},
]

RUN_B = [
    _record("correlation", 0, corr_abs_mean=0.02),
    _record("correlation", 2, corr_abs_mean=0.03),
]


class TestQueries:
    def test_probe_ticks_sorted_and_filtered(self):
        shuffled = [RUN_A[2], RUN_A[0], RUN_A[5], RUN_A[1]]
        ticks = probe_ticks(shuffled)
        assert [t["epoch"] for t in ticks] == [0, 1, 2]

    def test_series_extracts_one_field(self):
        epochs, values = series(RUN_A, "corr_abs_mean", probe="correlation")
        assert epochs == [0, 1, 2]
        assert values == [0.1, 0.3, 0.6]

    def test_fields_by_probe_ignores_meta(self):
        table = fields_by_probe(RUN_A)
        assert table == {"correlation": ["corr_abs_mean"],
                         "decode": ["psnr_mean"]}

    def test_error_counts(self):
        assert error_counts(RUN_A) == {"decode": 1}


class TestRenderRun:
    def test_contains_fields_and_sparkline(self):
        out = render_run(RUN_A, title="my run")
        assert "my run" in out
        assert "corr_abs_mean" in out
        assert "psnr_mean" in out
        assert any(tick in out for tick in "▁▂▃▄▅▆▇█")

    def test_error_footer(self):
        out = render_run(RUN_A)
        assert "probe errors: decode x1" in out

    def test_no_errors_no_footer(self):
        assert "probe errors" not in render_run(RUN_B)


class TestCompareRuns:
    def test_aligns_final_values(self):
        out = compare_runs(RUN_A, RUN_B, labels=("malicious", "benign"))
        assert "malicious" in out and "benign" in out
        assert "0.6" in out and "0.03" in out
        # field present only in run A still renders
        assert "psnr_mean" in out


class TestLoadTimeseries:
    def test_ignores_unrelated_events(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        path.write_text(
            '{"event": "monitor.probe", "probe": "p", "scope": "epoch", '
            '"epoch": 0, "x": 1.0}\n'
            '{"event": "cli.start", "command": "attack"}\n'
            "\n"
            '{"event": "monitor.probe_error", "probe": "p", "scope": "epoch", '
            '"epoch": 1, "error": "boom"}\n'
        )
        records = load_timeseries(str(path))
        assert len(records) == 2
        assert records[1]["probe_error"] is True

    def test_malformed_line_reports_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "monitor.probe"}\nnot json\n')
        with pytest.raises(ConfigError, match="bad.jsonl:2"):
            load_timeseries(str(path))
