"""Leakage + systems probes: correct values, graceful no-context skips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.mlp import MLP
from repro.monitor import (
    CorrelationProbe,
    DecodeProbe,
    GradNormProbe,
    KernelShareProbe,
    MemoryProbe,
    ProbeContext,
    ThroughputProbe,
    UpdateRatioProbe,
    WeightDriftProbe,
    histogram_entropy,
    pearson,
)
from tests.monitor.conftest import make_group, make_payload


def _ctx(groups=None, model=None, epoch=0):
    return ProbeContext(model=model, epoch=epoch, groups=groups)


class TestPearson:
    def test_perfectly_correlated(self):
        x = np.arange(50, dtype=float)
        assert pearson(x, 3.0 * x + 2.0) == pytest.approx(1.0, abs=1e-9)

    def test_anticorrelated(self):
        x = np.arange(50, dtype=float)
        assert pearson(x, -x) == pytest.approx(-1.0, abs=1e-9)

    def test_truncates_to_shorter(self):
        x = np.arange(100, dtype=float)
        assert pearson(x, x[:40]) == pytest.approx(1.0, abs=1e-9)

    def test_degenerate_is_nan_or_zero(self):
        assert np.isnan(pearson(np.array([1.0]), np.array([2.0])))
        assert pearson(np.ones(10), np.arange(10.0)) == pytest.approx(0.0, abs=1e-6)


class TestHistogramEntropy:
    def test_uniform_has_high_entropy(self):
        rng = np.random.default_rng(0)
        flat = histogram_entropy(rng.uniform(size=10_000), bins=32)
        assert flat > 4.5  # close to log2(32) = 5

    def test_point_mass_has_zero_entropy(self):
        assert histogram_entropy(np.zeros(100)) == pytest.approx(0.0)

    def test_empty_is_nan(self):
        assert np.isnan(histogram_entropy(np.array([])))


class TestCorrelationProbe:
    def test_encoding_group_reads_high(self, encoding_group):
        values = CorrelationProbe().observe(_ctx(groups=[encoding_group]))
        assert values["corr_group1"] > 0.95
        assert values["corr_abs_mean"] > 0.95
        assert values["corr_abs_max"] >= values["corr_abs_mean"]

    def test_benign_group_reads_low(self, benign_group):
        values = CorrelationProbe().observe(_ctx(groups=[benign_group]))
        assert abs(values["corr_group1"]) < 0.3

    def test_no_groups_skips(self):
        assert CorrelationProbe().observe(_ctx()) == {}
        payload = make_payload()
        empty = make_group(payload, name="g")
        empty.payload = None
        assert CorrelationProbe().observe(_ctx(groups=[empty])) == {}


class TestDecodeProbe:
    def test_encoding_group_decodes_well(self, encoding_group):
        values = DecodeProbe(max_images=2).observe(_ctx(groups=[encoding_group]))
        assert values["images"] == 2.0
        assert values["psnr_best"] > 30.0  # near-exact affine mirror
        assert values["ssim_best"] > 0.9
        assert values["ssim_mean"] <= values["ssim_best"]

    def test_benign_group_decodes_poorly(self, benign_group):
        values = DecodeProbe(max_images=2).observe(_ctx(groups=[benign_group]))
        assert values["psnr_best"] < 20.0

    def test_no_groups_skips(self):
        assert DecodeProbe().observe(_ctx()) == {}


class TestWeightDriftProbe:
    def test_per_group_fields(self, encoding_group):
        values = WeightDriftProbe().observe(_ctx(groups=[encoding_group]))
        assert set(values) == {"entropy_group1", "std_group1", "absmax_group1"}
        assert values["std_group1"] > 0.0

    def test_model_fallback_without_groups(self):
        model = MLP([4, 8, 3], rng=np.random.default_rng(0))
        values = WeightDriftProbe().observe(_ctx(model=model))
        assert set(values) == {"entropy_all", "std_all", "absmax_all"}


class TestSystemsProbes:
    def test_grad_norm_requires_gradients(self):
        model = MLP([4, 8, 3], rng=np.random.default_rng(0))
        assert GradNormProbe().observe(_ctx(model=model)) == {}

    def test_update_ratio_needs_two_ticks(self):
        model = MLP([4, 8, 3], rng=np.random.default_rng(0))
        probe = UpdateRatioProbe()
        assert probe.observe(_ctx(model=model)) == {}
        for param in model.parameters():
            param.data = param.data + 0.01
        values = probe.observe(_ctx(model=model))
        assert values["update_ratio"] > 0.0

    def test_memory_probe_reports_mib(self):
        values = MemoryProbe().observe(_ctx())
        # /proc + getrusage both exist on the CI platform
        assert values.get("rss_mib", 0.0) > 1.0
        assert values.get("peak_rss_mib", 0.0) >= values.get("rss_mib", 0.0) * 0.5

    def test_throughput_probe_reads_trainer_metrics(self):
        from repro.telemetry.metrics import default_registry
        registry = default_registry()
        registry.reset()
        assert ThroughputProbe().observe(_ctx()) == {}
        registry.gauge("trainer.images_per_s").set(512.0)
        values = ThroughputProbe().observe(_ctx())
        assert values["images_per_s"] == pytest.approx(512.0)
        registry.reset()

    def test_kernel_share_needs_active_profile(self):
        assert KernelShareProbe().observe(_ctx()) == {}

    def test_kernel_share_under_profile(self):
        from repro import backend
        from repro.telemetry import profile

        probe = KernelShareProbe()
        with profile() as prof:
            a = np.ones((16, 16), dtype=np.float64)
            backend.active().matmul(a, a)
            values = probe.observe(_ctx())
        assert values["kernel_time_s"] >= 0.0
        assert prof.total_kernel_time >= values["kernel_time_s"]
