"""Benchmark-trajectory store + regression comparator."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.monitor import (
    BenchStore,
    detect_regressions,
    machine_fingerprint,
    machine_info,
    metric_direction,
    trend_table,
)


def _entries(values, metric="epoch_s", fingerprint=None):
    return [{"ts": float(i), "run_id": f"r{i}",
             "fingerprint": fingerprint or machine_fingerprint(),
             "metrics": {metric: v}}
            for i, v in enumerate(values)]


class TestDirections:
    @pytest.mark.parametrize("metric,expected", [
        ("epoch_s", "lower"), ("train_time", "lower"), ("overhead_frac", "lower"),
        ("rss_mib", "lower"), ("q_mape", "lower"), ("latency_ms", "lower"),
        ("accuracy", "higher"), ("psnr_best", "higher"), ("speedup", "higher"),
        ("images_per", "higher"),
    ])
    def test_inference(self, metric, expected):
        assert metric_direction(metric) == expected


class TestDetectRegressions:
    def test_flags_synthetic_20_percent_regression(self):
        history = _entries([1.0, 1.02, 0.98, 1.0, 1.01])
        found = detect_regressions(history, {"epoch_s": 1.25}, threshold=0.2)
        assert len(found) == 1
        regression = found[0]
        assert regression.metric == "epoch_s"
        assert regression.baseline == pytest.approx(1.0)
        assert regression.change == pytest.approx(0.25)
        assert "epoch_s" in str(regression)

    def test_within_threshold_passes(self):
        history = _entries([1.0, 1.0, 1.0])
        assert detect_regressions(history, {"epoch_s": 1.15}, threshold=0.2) == []

    def test_improvement_never_flags(self):
        history = _entries([1.0, 1.0, 1.0])
        assert detect_regressions(history, {"epoch_s": 0.5}, threshold=0.2) == []

    def test_higher_better_metric_flags_drop(self):
        history = _entries([0.9, 0.91, 0.9], metric="accuracy")
        found = detect_regressions(history, {"accuracy": 0.6}, threshold=0.2)
        assert len(found) == 1
        assert found[0].direction == "higher"

    def test_unknown_metric_skipped(self):
        history = _entries([1.0])
        assert detect_regressions(history, {"brand_new": 99.0}) == []

    def test_restricts_to_same_fingerprint(self):
        other_box = _entries([10.0, 10.0], fingerprint="aaaabbbbcccc")
        same_box = _entries([1.0, 1.0])
        found = detect_regressions(other_box + same_box, {"epoch_s": 1.5},
                                   fingerprint=machine_fingerprint())
        assert len(found) == 1
        assert found[0].baseline == pytest.approx(1.0)

    def test_window_limits_history(self):
        history = _entries([5.0] * 10 + [1.0] * 8)
        found = detect_regressions(history, {"epoch_s": 1.3},
                                   threshold=0.2, window=8)
        assert found and found[0].baseline == pytest.approx(1.0)

    def test_bad_threshold(self):
        with pytest.raises(ConfigError):
            detect_regressions([], {}, threshold=0.0)


class TestBenchStore:
    def test_append_and_reload(self, tmp_path):
        store = BenchStore(tmp_path)
        entry = store.append("monitor", {"epoch_s": 0.4, "note": "x",
                                         "accuracy": 0.9}, run_id="abc")
        assert entry["metrics"] == {"epoch_s": 0.4, "accuracy": 0.9}
        assert entry["run_id"] == "abc"
        assert entry["fingerprint"] == machine_fingerprint(machine_info())
        entries = store.entries("monitor")
        assert len(entries) == 1
        data = json.loads((tmp_path / "BENCH_monitor.json").read_text())
        assert data["name"] == "monitor"

    def test_append_accumulates(self, tmp_path):
        store = BenchStore(tmp_path)
        store.append("monitor", {"epoch_s": 0.4})
        store.append("monitor", {"epoch_s": 0.5})
        assert [e["metrics"]["epoch_s"] for e in store.entries("monitor")] == [0.4, 0.5]

    def test_no_numeric_metrics_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            BenchStore(tmp_path).append("monitor", {"note": "strings only"})

    def test_name_validation(self, tmp_path):
        store = BenchStore(tmp_path)
        with pytest.raises(ConfigError):
            store.path("../evil")
        with pytest.raises(ConfigError):
            store.path("")

    def test_names_listing(self, tmp_path):
        store = BenchStore(tmp_path)
        store.append("monitor", {"a": 1.0})
        store.append("kernels", {"b": 2.0})
        assert store.names() == ["kernels", "monitor"]
        assert BenchStore(tmp_path / "missing").names() == []

    def test_check_flags_regression_on_this_machine(self, tmp_path):
        store = BenchStore(tmp_path)
        for value in (1.0, 1.0, 1.0):
            store.append("monitor", {"epoch_s": value})
        assert store.check("monitor", {"epoch_s": 1.05}) == []
        found = store.check("monitor", {"epoch_s": 1.5})
        assert len(found) == 1 and found[0].metric == "epoch_s"


class TestTrendTable:
    def test_renders_history(self):
        history = _entries([1.0, 1.2, 0.9, 1.1])
        out = trend_table(history, name="monitor")
        assert "benchmark trend: monitor" in out
        assert "epoch_s" in out
        assert "lower" in out
        assert any(tick in out for tick in "▁▂▃▄▅▆▇█")
