"""Monitor core: tick routing, failure isolation, timeseries emission."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.mlp import MLP
from repro.monitor import (
    ERROR_EVENT,
    Monitor,
    Probe,
    as_monitor,
    load_timeseries,
)
from repro.pipeline import Trainer, TrainingConfig
from repro.telemetry.metrics import default_registry
from tests.pipeline.test_trainer import toy_problem


class CountProbe(Probe):
    name = "count"
    scope = "epoch"

    def __init__(self):
        self.calls = 0

    def observe(self, ctx):
        self.calls += 1
        return {"calls": float(self.calls)}


class BatchProbe(CountProbe):
    name = "batchcount"
    scope = "batch"


class SilentProbe(Probe):
    name = "silent"

    def observe(self, ctx):
        return {}


class FailingProbe(Probe):
    name = "failing"
    scope = "epoch"

    def observe(self, ctx):
        raise ValueError("probe exploded")


class TestMonitorTicks:
    def test_epoch_tick_runs_all_probes(self):
        epoch_probe, batch_probe = CountProbe(), BatchProbe()
        monitor = Monitor([epoch_probe, batch_probe])
        monitor.on_epoch(model=None, epoch=0)
        assert epoch_probe.calls == 1
        assert batch_probe.calls == 1  # epoch ticks include batch probes
        records = monitor.probe_records(scope="epoch")
        assert {r["probe"] for r in records} == {"count", "batchcount"}
        assert all(r["epoch"] == 0 and r["batch"] is None for r in records)

    def test_batch_ticks_gated_by_interval(self):
        probe = BatchProbe()
        monitor = Monitor([probe, CountProbe()], every_batches=3)
        for batch in range(6):
            monitor.on_batch(model=None, epoch=0, batch=batch)
        assert probe.calls == 2  # batches 2 and 5
        assert all(r["probe"] == "batchcount"
                   for r in monitor.probe_records(scope="batch"))

    def test_batch_ticks_disabled_by_default(self):
        probe = BatchProbe()
        monitor = Monitor([probe])
        monitor.on_batch(model=None, epoch=0, batch=0)
        assert probe.calls == 0

    def test_empty_observation_skips_record(self):
        monitor = Monitor([SilentProbe()])
        monitor.on_epoch(model=None, epoch=0)
        assert monitor.records == []

    def test_series_and_summary(self):
        monitor = Monitor([CountProbe()])
        for epoch in range(3):
            monitor.on_epoch(model=None, epoch=epoch)
        assert monitor.series("calls") == [1.0, 2.0, 3.0]
        assert monitor.summary() == {"calls": 3.0}

    def test_validation(self):
        with pytest.raises(ConfigError):
            Monitor(every_batches=0)
        with pytest.raises(ConfigError):
            Monitor(max_probe_errors=0)
        with pytest.raises(ConfigError):
            Monitor([object()])


class TestFailureIsolation:
    def test_error_recorded_not_raised(self):
        monitor = Monitor([FailingProbe(), CountProbe()])
        monitor.on_epoch(model=None, epoch=0)  # must not raise
        errors = monitor.errors()
        assert len(errors) == 1
        assert "probe exploded" in errors[0]["error"]
        # the healthy probe still observed
        assert monitor.series("calls") == [1.0]

    def test_probe_disabled_after_consecutive_errors(self):
        monitor = Monitor([FailingProbe()], max_probe_errors=2)
        for epoch in range(5):
            monitor.on_epoch(model=None, epoch=epoch)
        errors = monitor.errors()
        assert len(errors) == 2  # disabled after the second failure
        assert errors[-1]["disabled"] is True

    def test_error_counter_incremented(self):
        registry = default_registry()
        registry.reset()
        monitor = Monitor([FailingProbe()])
        monitor.on_epoch(model=None, epoch=0)
        assert registry.counter("monitor.probe_errors").snapshot() == 1
        registry.reset()

    def test_raising_probe_does_not_kill_training(self):
        inputs, labels = toy_problem()
        model = MLP([6, 12, 3], rng=np.random.default_rng(0))
        monitor = Monitor([FailingProbe(), CountProbe()])
        history = Trainer(model, inputs, labels,
                          TrainingConfig(epochs=3, lr=0.1),
                          probes=monitor).train()
        assert len(history.task_loss) == 3
        assert len(monitor.errors()) >= 1
        assert monitor.series("calls") == [1.0, 2.0, 3.0]


class TestTimeseries:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "run.timeseries.jsonl"
        with Monitor([CountProbe(), FailingProbe()], path=str(path),
                     run_id="abc123") as monitor:
            monitor.on_epoch(model=None, epoch=0)
            monitor.on_epoch(model=None, epoch=1)
        records = load_timeseries(str(path))
        good = [r for r in records if not r.get("probe_error")]
        bad = [r for r in records if r.get("probe_error")]
        assert [r["calls"] for r in good] == [1.0, 2.0]
        assert all(r["run_id"] == "abc123" for r in records)
        assert len(bad) == 2
        assert all(r["event"] == ERROR_EVENT for r in bad)

    def test_trainer_emits_batch_and_epoch_records(self, tmp_path):
        path = tmp_path / "t.jsonl"
        inputs, labels = toy_problem()
        model = MLP([6, 12, 3], rng=np.random.default_rng(1))
        monitor = Monitor([CountProbe(), BatchProbe()], path=str(path),
                          every_batches=2)
        Trainer(model, inputs, labels, TrainingConfig(epochs=2, lr=0.1),
                probes=monitor).train()
        monitor.close()
        records = load_timeseries(str(path))
        scopes = {r["scope"] for r in records}
        assert scopes == {"epoch", "batch"}
        epochs = sorted({r["epoch"] for r in records if r["scope"] == "epoch"})
        assert epochs == [0, 1]


class TestAsMonitor:
    def test_none_passthrough(self):
        assert as_monitor(None) is None

    def test_monitor_passthrough(self):
        monitor = Monitor([])
        assert as_monitor(monitor) is monitor

    def test_probe_sequence_wrapped(self):
        probe = CountProbe()
        monitor = as_monitor([probe])
        assert isinstance(monitor, Monitor)
        assert monitor.probes == [probe]
        assert monitor.timeseries_path is None
