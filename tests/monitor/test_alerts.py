"""Alert rules engine: rule semantics, engine emission, monitor wiring."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.monitor import Monitor
from repro.monitor.alerts import (
    Alert,
    AlertEngine,
    BurnRateRule,
    DriftRule,
    MetricRule,
    ProbeDisabledRule,
    StallRule,
    ThresholdRule,
    default_rules,
    serving_rules,
)
from repro.monitor.probes import Probe
from repro.telemetry.metrics import default_registry


def record(probe="correlation", epoch=0, **fields):
    return {"probe": probe, "scope": "epoch", "epoch": epoch, "batch": None,
            **fields}


class TestThresholdRule:
    def test_fires_above_bound(self):
        rule = ThresholdRule("leak", field="corr_abs_mean", above=0.25)
        assert rule.evaluate(record(corr_abs_mean=0.1)) is None
        alert = rule.evaluate(record(corr_abs_mean=0.4, epoch=2))
        assert alert is not None
        assert alert.rule == "leak"
        assert alert.value == pytest.approx(0.4)
        assert alert.epoch == 2

    def test_fire_once_latches(self):
        rule = ThresholdRule("leak", field="corr_abs_mean", above=0.25)
        assert rule.evaluate(record(corr_abs_mean=0.4)) is not None
        assert rule.evaluate(record(corr_abs_mean=0.9)) is None
        rule.reset()
        assert rule.evaluate(record(corr_abs_mean=0.9)) is not None

    def test_min_epoch_suppresses_early_noise(self):
        rule = ThresholdRule("leak", field="corr_abs_mean", above=0.25,
                             min_epoch=2)
        assert rule.evaluate(record(corr_abs_mean=0.9, epoch=1)) is None
        assert rule.evaluate(record(corr_abs_mean=0.9, epoch=2)) is not None

    def test_below_bound_and_probe_filter(self):
        rule = ThresholdRule("acc", field="accuracy", below=0.5,
                             probe="decode")
        assert rule.evaluate(record(probe="correlation", accuracy=0.1)) is None
        assert rule.evaluate(record(probe="decode", accuracy=0.1)) is not None

    def test_requires_exactly_one_bound(self):
        with pytest.raises(ConfigError):
            ThresholdRule("x", field="f")
        with pytest.raises(ConfigError):
            ThresholdRule("x", field="f", above=1.0, below=0.0)


class TestDriftRule:
    def test_stable_series_never_fires(self):
        rule = DriftRule("d", field="v", sigmas=4.0, warmup=3)
        for i in range(20):
            assert rule.evaluate(record(v=1.0 + 0.01 * (i % 3))) is None

    def test_level_shift_fires_once_then_adapts(self):
        rule = DriftRule("d", field="v", sigmas=4.0, warmup=3, alpha=0.5)
        for _ in range(6):
            rule.evaluate(record(v=1.0))
        for i in range(4):
            rule.evaluate(record(v=1.0 + 0.02 * (-1) ** i))
        alerts = [rule.evaluate(record(v=5.0)) for _ in range(6)]
        assert alerts[0] is not None
        assert "sigma" in alerts[0].message
        # the shifted level becomes the new normal
        assert alerts[-1] is None

    def test_warmup_suppresses(self):
        rule = DriftRule("d", field="v", warmup=5)
        assert rule.evaluate(record(v=0.0)) is None
        assert rule.evaluate(record(v=100.0)) is None  # still warming up


class TestStallRule:
    def test_fires_after_window_without_improvement(self):
        rule = StallRule("stall", field="psnr_mean", window=3, min_delta=0.1)
        assert rule.evaluate(record(psnr_mean=10.0)) is None
        for value in (10.0, 10.05, 10.02):
            alert = rule.evaluate(record(psnr_mean=value))
        assert alert is not None
        assert "not improved" in alert.message

    def test_fires_once_per_streak_and_rearms(self):
        rule = StallRule("stall", field="v", window=2, min_delta=0.1)
        rule.evaluate(record(v=1.0))
        assert rule.evaluate(record(v=1.0)) is None
        assert rule.evaluate(record(v=1.0)) is not None   # streak fires
        assert rule.evaluate(record(v=1.0)) is None        # latched
        assert rule.evaluate(record(v=2.0)) is None        # recovery re-arms
        rule.evaluate(record(v=2.0))
        assert rule.evaluate(record(v=2.0)) is not None

    def test_decreasing_mode(self):
        rule = StallRule("loss", field="loss", window=2, increasing=False)
        rule.evaluate(record(loss=1.0))
        rule.evaluate(record(loss=0.5))    # improving (decreasing)
        rule.evaluate(record(loss=0.6))
        alert = rule.evaluate(record(loss=0.7))
        assert alert is not None


class TestMetricRule:
    def test_absolute_above(self):
        rule = MetricRule("crash", metric="pool.worker_crashes", above=0.0)
        assert rule.evaluate_registry({"pool.worker_crashes": 0.0}, 1) is None
        alert = rule.evaluate_registry({"pool.worker_crashes": 2.0}, 1)
        assert alert is not None
        assert alert.field == "pool.worker_crashes"

    def test_below_frac_of_peak(self):
        rule = MetricRule("collapse", metric="trainer.images_per_s",
                          below_frac_of_peak=0.5, warmup=2)
        assert rule.evaluate_registry({"trainer.images_per_s": 100.0}, 0) is None
        assert rule.evaluate_registry({"trainer.images_per_s": 110.0}, 1) is None
        assert rule.evaluate_registry({"trainer.images_per_s": 105.0}, 2) is None
        alert = rule.evaluate_registry({"trainer.images_per_s": 20.0}, 3)
        assert alert is not None
        assert "collapsed" in alert.message

    def test_missing_metric_is_silent(self):
        rule = MetricRule("collapse", metric="nope", below=1.0)
        assert rule.evaluate_registry({}, 0) is None

    def test_mode_validation(self):
        with pytest.raises(ConfigError):
            MetricRule("x", metric="m")
        with pytest.raises(ConfigError):
            MetricRule("x", metric="m", above=1.0, below=0.0)
        with pytest.raises(ConfigError):
            MetricRule("x", metric="m", below_frac_of_peak=1.5)


class TestProbeDisabledRule:
    def test_fires_once_per_probe(self):
        rule = ProbeDisabledRule()
        err = {"probe_error": True, "probe": "decode", "disabled": True,
               "error": "ValueError('x')"}
        assert rule.evaluate({"probe_error": True, "probe": "decode",
                              "disabled": False}) is None
        assert rule.evaluate(err) is not None
        assert rule.evaluate(err) is None
        other = dict(err, probe="correlation")
        assert rule.evaluate(other) is not None


class TestAlertEngine:
    def test_observe_collects_and_counts(self):
        registry = default_registry()
        engine = AlertEngine([
            ThresholdRule("leak", field="corr_abs_mean", above=0.25),
        ])
        engine.observe(record(corr_abs_mean=0.1))
        assert engine.alerts == []
        fired = engine.observe(record(corr_abs_mean=0.5))
        assert len(fired) == 1
        assert registry.counter("alerts.total").snapshot() == 1.0
        assert registry.counter("alerts.leak").snapshot() == 1.0
        assert engine.by_rule("leak") == engine.alerts

    def test_broken_rule_is_isolated(self):
        class Broken(ThresholdRule):
            def evaluate(self, record):
                raise RuntimeError("boom")

        engine = AlertEngine([
            Broken("broken", field="v", above=0.0),
            ThresholdRule("good", field="v", above=0.0),
        ])
        fired = engine.observe(record(v=1.0))
        assert [a.rule for a in fired] == ["good"]

    def test_replay_resets_rules(self):
        engine = AlertEngine([
            ThresholdRule("leak", field="corr_abs_mean", above=0.25),
        ])
        records = [record(corr_abs_mean=v, epoch=i)
                   for i, v in enumerate((0.1, 0.3, 0.5))]
        first = engine.replay(records)
        second = engine.replay(records)
        assert len(first) == len(second) == 1
        assert engine.alerts == second

    def test_attached_logger_receives_alert_events(self, tmp_path):
        from repro.monitor.alerts import ALERT_EVENT
        from repro.telemetry.events import EventLogger

        path = tmp_path / "alerts.jsonl"
        logger = EventLogger(path=str(path), level="debug")
        engine = AlertEngine([
            ThresholdRule("leak", field="corr_abs_mean", above=0.25,
                          severity="critical"),
        ]).attach(logger)
        engine.observe(record(corr_abs_mean=0.5))
        logger.close()
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        events = [l for l in lines if l.get("event") == ALERT_EVENT]
        assert len(events) == 1
        assert events[0]["rule"] == "leak"
        assert events[0]["level"] == "error"  # critical maps to error level

    def test_summary_table_renders(self):
        engine = AlertEngine([])
        engine.alerts.append(Alert(rule="leak", severity="critical",
                                   message="corr high", epoch=3))
        out = engine.summary_table()
        assert "leak" in out and "critical" in out

    def test_rule_validation(self):
        with pytest.raises(ConfigError):
            AlertEngine([object()])

    def test_update_health_on_emit(self):
        from repro.telemetry.export import health_snapshot, reset_health

        reset_health()
        engine = AlertEngine([
            ThresholdRule("leak", field="v", above=0.0),
        ])
        engine.observe(record(v=1.0))
        health = health_snapshot()
        assert health["last_alert"] == "leak"
        reset_health()


class _AlwaysRaises(Probe):
    name = "broken"
    scope = "epoch"

    def observe(self, ctx):
        raise ValueError("hard broken")


class _Counts(Probe):
    name = "counts"
    scope = "epoch"

    def observe(self, ctx):
        return {"ticks": float(ctx.epoch)}


class TestMonitorIntegration:
    """Probe auto-disable x alert rules: the disabled probe fires a
    probe_disabled alert exactly once and never kills the run."""

    def test_disabled_probe_alerts_once_and_run_survives(self):
        engine = AlertEngine([ProbeDisabledRule()])
        monitor = Monitor([_AlwaysRaises(), _Counts()],
                          max_probe_errors=2, alerts=engine)
        for epoch in range(6):
            monitor.on_epoch(model=None, epoch=epoch)
        # the healthy probe ran every epoch: training was never killed
        assert len(monitor.probe_records("counts")) == 6
        # the broken probe was disabled after max_probe_errors failures
        assert len(monitor.errors()) == 2
        disabled = [a for a in engine.alerts if a.rule == "probe_disabled"]
        assert len(disabled) == 1
        assert "broken" in disabled[0].message

    def test_monitor_accepts_plain_rule_sequence(self):
        monitor = Monitor([_Counts()],
                          alerts=[ThresholdRule("t", field="ticks", above=2.5)])
        for epoch in range(5):
            monitor.on_epoch(model=None, epoch=epoch)
        assert isinstance(monitor.alerts, AlertEngine)
        assert [a.rule for a in monitor.alerts.alerts] == ["t"]

    def test_epoch_tick_evaluates_registry_rules(self):
        registry = default_registry()
        registry.gauge("trainer.images_per_s").set(100.0)
        engine = AlertEngine([
            MetricRule("collapse", metric="trainer.images_per_s",
                       below_frac_of_peak=0.5, warmup=2),
        ])
        monitor = Monitor([_Counts()], alerts=engine)
        for epoch in range(3):
            monitor.on_epoch(model=None, epoch=epoch)
        registry.gauge("trainer.images_per_s").set(10.0)
        monitor.on_epoch(model=None, epoch=3)
        assert [a.rule for a in engine.alerts] == ["collapse"]
        assert engine.alerts[0].epoch == 3

    def test_alerts_written_to_timeseries(self, tmp_path):
        from repro.monitor import alert_records, load_timeseries

        path = str(tmp_path / "run.jsonl")
        engine = AlertEngine([
            ThresholdRule("many_ticks", field="ticks", above=1.5),
        ])
        with Monitor([_Counts()], path=path, alerts=engine) as monitor:
            for epoch in range(4):
                monitor.on_epoch(model=None, epoch=epoch)
        records = load_timeseries(path)
        alerts = alert_records(records)
        assert len(alerts) == 1
        assert alerts[0]["rule"] == "many_ticks"
        # probe records are still cleanly separated from alert records
        assert len([r for r in records if not r.get("alert")
                    and not r.get("probe_error")]) == 4


class TestDefaultRules:
    def test_names_cover_the_pipeline_vitals(self):
        names = {rule.name for rule in default_rules()}
        assert {"correlation_leak", "psnr_stall", "throughput_collapse",
                "worker_death", "probe_disabled"} <= names

    def test_correlation_rule_fires_on_malicious_trajectory(self):
        engine = AlertEngine(default_rules(corr_threshold=0.25))
        # a benign-looking then leaking correlation trajectory
        trajectory = [0.05, 0.4, 0.6]
        for epoch, corr in enumerate(trajectory):
            engine.observe(record(probe="correlation", epoch=epoch,
                                  corr_abs_mean=corr))
        leak = engine.by_rule("correlation_leak")
        assert len(leak) == 1
        assert leak[0].severity == "critical"
        assert leak[0].epoch == 1

    def test_benign_trajectory_stays_silent(self):
        engine = AlertEngine([r for r in default_rules()
                              if r.name == "correlation_leak"])
        for epoch, corr in enumerate((0.04, 0.06, 0.05, 0.07, 0.05)):
            engine.observe(record(probe="correlation", epoch=epoch,
                                  corr_abs_mean=corr))
        assert engine.alerts == []


class TestServingRules:
    def test_rule_set_shape(self):
        rules = serving_rules()
        names = {r.name: r for r in rules}
        assert set(names) == {"serve_p99_breach", "shard_death",
                              "serve_errors", "serve_refusals",
                              "latency_slo", "queue_saturation"}
        assert names["serve_p99_breach"].severity == "critical"
        assert names["shard_death"].severity == "critical"
        assert names["serve_errors"].severity == "critical"
        assert names["serve_refusals"].severity == "warning"
        assert names["latency_slo"].severity == "critical"
        assert names["queue_saturation"].severity == "warning"

    def test_quiet_serving_metrics_fire_nothing(self):
        engine = AlertEngine(serving_rules(p99_budget_ms=250.0))
        flat = {"serve.latency_ms.p99": 12.0, "serve.shard_deaths": 0.0,
                "serve.errors": 0.0, "serve.refused": 0.0}
        for rule in engine.rules:
            assert rule.evaluate_registry(flat, 0) is None
        assert engine.alerts == []

    def test_p99_breach_fires_on_budget_crossing(self):
        engine = AlertEngine(serving_rules(p99_budget_ms=100.0))
        flat = {"serve.latency_ms.p99": 101.0}
        fired = [r.evaluate_registry(flat, 0) for r in engine.rules]
        fired = [a for a in fired if a is not None]
        assert [a.rule for a in fired] == ["serve_p99_breach"]
        assert fired[0].severity == "critical"
        assert fired[0].value == 101.0

    def test_shard_death_and_refusal_budgets(self):
        rules = {r.name: r for r in serving_rules(refusal_budget=5.0)}
        assert rules["shard_death"].evaluate_registry(
            {"serve.shard_deaths": 1.0}, 0) is not None
        assert rules["serve_refusals"].evaluate_registry(
            {"serve.refused": 5.0}, 0) is None
        assert rules["serve_refusals"].evaluate_registry(
            {"serve.refused": 6.0}, 0) is not None

    def test_missing_serve_metrics_are_silent(self):
        # a registry with no serve.* metrics (no server running) is fine
        for rule in serving_rules():
            assert rule.evaluate_registry({}, 0) is None


class TestBurnRateRule:
    @staticmethod
    def rule(**kwargs):
        defaults = dict(bad="bad", total="total", budget=0.1,
                        window=4, min_events=10)
        defaults.update(kwargs)
        return BurnRateRule("burn", **defaults)

    def test_validation(self):
        with pytest.raises(ConfigError):
            self.rule(budget=1.0)
        with pytest.raises(ConfigError):
            self.rule(window=0)
        with pytest.raises(ConfigError):
            self.rule(min_events=0)

    def test_fires_on_windowed_burn_not_lifetime_ratio(self):
        # lifetime ratio 50/1050 is under budget; the *recent* delta
        # (50 bad of 50 new) is what the rule must see
        rule = self.rule()
        assert rule.evaluate_registry({"bad": 0.0, "total": 1000.0}, 0) is None
        alert = rule.evaluate_registry({"bad": 50.0, "total": 1050.0}, 1)
        assert alert is not None
        assert alert.severity == "warning"
        assert alert.value == pytest.approx(1.0)

    def test_min_events_guards_quiet_servers(self):
        rule = self.rule(min_events=50)
        assert rule.evaluate_registry({"bad": 0.0, "total": 0.0}, 0) is None
        # 2 unlucky requests out of 2: 100% "burn", but only 2 events
        assert rule.evaluate_registry({"bad": 2.0, "total": 2.0}, 1) is None

    def test_latches_while_burning_and_rearms(self):
        rule = self.rule(window=8)
        rule.evaluate_registry({"bad": 0.0, "total": 0.0}, 0)
        assert rule.evaluate_registry({"bad": 20.0, "total": 100.0}, 1) \
            is not None
        # still burning: no repeat alert
        assert rule.evaluate_registry({"bad": 40.0, "total": 200.0}, 2) is None
        # recovery: rate over the window drops under budget...
        for step in range(3, 12):
            rule.evaluate_registry({"bad": 40.0,
                                    "total": 200.0 + step * 100.0}, step)
        # ...then a fresh regression alerts again
        assert rule.evaluate_registry({"bad": 400.0, "total": 1500.0}, 12) \
            is not None

    def test_reset_clears_history_and_latch(self):
        rule = self.rule()
        rule.evaluate_registry({"bad": 0.0, "total": 0.0}, 0)
        assert rule.evaluate_registry({"bad": 50.0, "total": 100.0}, 1) \
            is not None
        rule.reset()
        rule.evaluate_registry({"bad": 50.0, "total": 100.0}, 2)
        assert rule.evaluate_registry({"bad": 100.0, "total": 200.0}, 3) \
            is not None

    def test_first_observation_never_fires(self):
        # no prior point => no delta, even with a terrible lifetime ratio
        assert self.rule().evaluate_registry(
            {"bad": 900.0, "total": 1000.0}, 0) is None


class TestInjectedClock:
    def test_alert_timestamps_come_from_the_clock(self):
        ticks = iter([1000.0, 2000.0])
        engine = AlertEngine(
            [ThresholdRule("leak", field="corr_abs_mean", above=0.25,
                           fire_once=False)],
            clock=lambda: next(ticks))
        engine.observe(record(corr_abs_mean=0.9))
        engine.observe(record(corr_abs_mean=0.9, epoch=1))
        assert [a.ts for a in engine.alerts] == [1000.0, 2000.0]

    def test_default_clock_still_stamps(self):
        engine = AlertEngine(
            [ThresholdRule("leak", field="corr_abs_mean", above=0.25)])
        engine.observe(record(corr_abs_mean=0.9))
        assert engine.alerts[0].ts is not None
