"""Per-request tracing: span trees, lanes, SLO histograms, flight recorder.

Unit tests drive :class:`RequestTracer` with a fake clock so every
timestamp assertion is exact; the end-to-end tests run a real
:class:`ModelServer` (serial shard execution) under ``recording()`` and
check the acceptance-level guarantees -- every sampled request's wall
time is covered by its stage children, and crash/alert events dump the
flight ring to JSONL.
"""

import asyncio
import json
import multiprocessing
import os
import time

import numpy as np
import pytest

from repro.errors import ServeError
from repro.models.registry import build_model
from repro.parallel.shards import ShardPool
from repro.serve import ModelServer, ServeConfig, save_artifact
from repro.serve.tracing import (
    FLIGHT_FORMAT,
    LANE_TID_BASE,
    REQUEST_SPAN,
    FlightRecorder,
    RequestTracer,
)
from repro.telemetry.metrics import MetricsRegistry, default_registry
from repro.telemetry.trace import TraceRecorder, recording

KW = dict(num_classes=4, in_channels=3, width=4)
SHAPE = (3, 8, 8)
HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt
        return self.now


def make_tracer(recorder=None, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    kwargs.setdefault("clock", FakeClock())
    return RequestTracer(recorder=recorder, **kwargs)


def finish_one(tracer, rid="r0", gaps=(0.001, 0.004, 0.010), **finish):
    """Admit -> submit -> dispatch -> finish with exact stage gaps."""
    clock = tracer.clock
    ctx = tracer.admit(rid, "m", input_shape=SHAPE)
    clock.advance(gaps[0])
    tracer.mark_submitted(ctx)
    clock.advance(gaps[1])
    tracer.mark_dispatched(ctx, batch_size=3)
    clock.advance(gaps[2])
    finish.setdefault("ok", True)
    finish.setdefault("infer_s", gaps[2] / 2)
    tracer.finish(ctx, **finish)
    return ctx


class TestStageAccounting:
    def test_stages_tile_the_request_exactly(self):
        tracer = make_tracer()
        ctx = finish_one(tracer, gaps=(0.002, 0.005, 0.020))
        stages = ctx.stage_ms()
        assert stages["admission_ms"] == pytest.approx(2.0)
        assert stages["queue_ms"] == pytest.approx(5.0)
        assert stages["batch_ms"] == pytest.approx(20.0)
        assert stages["latency_ms"] == pytest.approx(27.0)
        tiling = stages["admission_ms"] + stages["queue_ms"] + \
            stages["batch_ms"]
        assert tiling == pytest.approx(stages["latency_ms"])

    def test_slo_histograms_observe_each_stage(self):
        registry = MetricsRegistry()
        tracer = make_tracer(registry=registry, slo_ms=10.0)
        finish_one(tracer, gaps=(0.001, 0.004, 0.020))
        assert registry.slo("serve.slo.latency_ms").count == 1
        assert registry.slo("serve.slo.latency_ms").breaches == 1  # 25 > 10
        assert registry.slo("serve.slo.admission_ms").count == 1
        assert registry.slo("serve.slo.queue_ms").count == 1
        assert registry.slo("serve.slo.infer_ms").count == 1

    def test_finish_is_idempotent(self):
        tracer = make_tracer()
        ctx = finish_one(tracer)
        t_done = ctx.t_done
        tracer.finish(ctx, ok=False, error_kind="late")  # double finish
        assert ctx.t_done == t_done
        assert ctx.ok is True
        assert tracer.registry.slo("serve.slo.latency_ms").count == 1

    def test_admission_failure_has_no_queue_stage(self):
        tracer = make_tracer()
        ctx = tracer.admit("r0", "m")
        tracer.clock.advance(0.003)
        tracer.finish(ctx, ok=False, error_kind="refused")
        stages = ctx.stage_ms()
        assert "queue_ms" not in stages and "batch_ms" not in stages
        assert stages["latency_ms"] == pytest.approx(3.0)
        record = tracer.flight.records()[-1]
        assert record["outcome"] == "refused"

    def test_none_context_is_a_noop(self):
        tracer = make_tracer()
        tracer.mark_submitted(None)
        tracer.mark_dispatched(None)
        tracer.finish(None, ok=True)
        assert len(tracer.flight) == 0


class TestSpanEmission:
    def test_span_tree_shape_and_parent_links(self):
        recorder = TraceRecorder()
        tracer = make_tracer(recorder=recorder)
        finish_one(tracer, rid="req-1")
        spans = {s.name: s for s in recorder.spans}
        assert set(spans) == {REQUEST_SPAN, "serve.request.admission",
                              "serve.request.queue", "serve.request.batch",
                              "serve.request.infer"}
        root = spans[REQUEST_SPAN]
        assert root.parent_id == 0 and root.depth == 0
        assert root.attrs["request_id"] == "req-1"
        assert root.attrs["outcome"] == "ok"
        for child in ("admission", "queue", "batch"):
            assert spans[f"serve.request.{child}"].parent_id == root.span_id
        assert spans["serve.request.infer"].parent_id == \
            spans["serve.request.batch"].span_id

    def test_children_are_contiguous_and_cover_the_root(self):
        recorder = TraceRecorder()
        tracer = make_tracer(recorder=recorder)
        finish_one(tracer, gaps=(0.002, 0.006, 0.030))
        spans = {s.name: s for s in recorder.spans}
        root = spans[REQUEST_SPAN]
        adm, queue, batch = (spans["serve.request.admission"],
                             spans["serve.request.queue"],
                             spans["serve.request.batch"])
        assert adm.start == pytest.approx(root.start)
        assert queue.start == pytest.approx(adm.end)
        assert batch.start == pytest.approx(queue.end)
        assert batch.end == pytest.approx(root.end)
        covered = adm.duration + queue.duration + batch.duration
        assert covered == pytest.approx(root.duration)
        infer = spans["serve.request.infer"]
        assert infer.start >= batch.start - 1e-9
        assert infer.end == pytest.approx(batch.end)

    def test_requests_land_on_labeled_lanes(self):
        recorder = TraceRecorder()
        tracer = make_tracer(recorder=recorder)
        # two overlapping requests -> two lanes; a third after both
        # finished reuses the lowest freed lane
        a = tracer.admit("a", "m")
        b = tracer.admit("b", "m")
        assert (a.lane, b.lane) == (0, 1)
        tracer.finish(a, ok=True)
        tracer.finish(b, ok=True)
        c = tracer.admit("c", "m")
        assert c.lane == 0
        tracer.finish(c, ok=True)
        tids = {s.thread_id for s in recorder.spans}
        assert tids == {LANE_TID_BASE, LANE_TID_BASE + 1}
        meta = recorder.chrome_trace()["traceEvents"]
        names = {e["args"]["name"] for e in meta
                 if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert "request lane 0" in names and "request lane 1" in names

    def test_no_recorder_skips_spans_keeps_slo_and_flight(self):
        tracer = make_tracer(recorder=None)
        ctx = finish_one(tracer)
        assert ctx.lane == -1
        assert tracer.registry.slo("serve.slo.latency_ms").count == 1
        assert len(tracer.flight) == 1

    def test_fake_clock_maps_onto_recorder_timeline(self):
        # the tracer's clock starts at 100.0 but spans must land near
        # the recorder's perf_counter-relative origin, not at t=100
        recorder = TraceRecorder()
        tracer = make_tracer(recorder=recorder)
        finish_one(tracer)
        root = [s for s in recorder.spans if s.name == REQUEST_SPAN][0]
        wall = time.perf_counter() - recorder._origin
        assert -1.0 <= root.start <= wall + 1.0


class TestFlightRecorder:
    def test_ring_keeps_only_last_n(self):
        flight = FlightRecorder(capacity=3)
        for index in range(7):
            flight.record({"request_id": f"r{index}"})
        ids = [r["request_id"] for r in flight.records()]
        assert ids == ["r4", "r5", "r6"]

    def test_capacity_validation(self):
        with pytest.raises(ServeError):
            FlightRecorder(capacity=0)

    def test_dump_writes_header_and_lines(self, tmp_path):
        flight = FlightRecorder(capacity=8)
        flight.record({"request_id": "a", "latency_ms": 1.5})
        path = tmp_path / "dump.jsonl"
        count = flight.dump(path, reason="test", slo_ms=250.0)
        assert count == 1
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["flight"] == FLIGHT_FORMAT
        assert header["reason"] == "test"
        assert header["records"] == 1
        assert json.loads(lines[1])["request_id"] == "a"

    def test_dump_flight_latches_per_reason(self, tmp_path):
        registry = MetricsRegistry()
        tracer = make_tracer(flight_dir=str(tmp_path), registry=registry)
        finish_one(tracer)
        first = tracer.dump_flight("shard_crash")
        assert first is not None and os.path.exists(first)
        assert tracer.dump_flight("shard_crash") is None  # latched
        other = tracer.dump_flight("alert_latency_slo")
        assert other is not None and other != first
        assert registry.counter("serve.flight_dumps").value == 2.0

    def test_dump_flight_without_dir_or_records_is_none(self, tmp_path):
        tracer = make_tracer(flight_dir=None)
        finish_one(tracer)
        assert tracer.dump_flight("x") is None  # no dir configured
        empty = make_tracer(flight_dir=str(tmp_path))
        assert empty.dump_flight("x") is None  # ring empty


# ---------------------------------------------------------------------------
# End-to-end through a real server
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "released"
    model = build_model("resnet8_tiny", rng=np.random.default_rng(11), **KW)
    save_artifact(model, path, "resnet8_tiny", model_kwargs=KW,
                  input_shape=SHAPE, seed=11)
    return str(path)


def serial_config(**overrides):
    overrides.setdefault("start_method", "spawn")  # degrades to serial
    return ServeConfig(**overrides)


def run(coro):
    return asyncio.run(coro)


class TestServerEndToEnd:
    def test_every_request_gets_a_covered_span_tree(self, artifact):
        n_requests = 12

        async def _go():
            async with ModelServer({"m": artifact},
                                   config=serial_config()) as server:
                return await asyncio.gather(*[
                    server.infer(input_seed=i) for i in range(n_requests)])

        with recording() as recorder:
            responses = run(_go())
        assert all(r.ok for r in responses)
        roots = [s for s in recorder.spans if s.name == REQUEST_SPAN]
        assert len(roots) == n_requests
        children = [s for s in recorder.spans
                    if s.name.startswith(REQUEST_SPAN + ".")]
        for root in roots:
            rid = root.attrs["request_id"]
            mine = [c for c in children if c.attrs.get("request_id") == rid
                    and c.name != "serve.request.infer"]
            covered = sum(c.duration for c in mine)
            assert covered >= 0.95 * root.duration
            assert root.thread_id >= LANE_TID_BASE

    def test_flight_ring_matches_traffic_and_slo_observed(self, artifact):
        # the server tracer observes into the process default registry
        before = default_registry().slo("serve.slo.latency_ms").count

        async def _go():
            async with ModelServer({"m": artifact},
                                   config=serial_config()) as server:
                for i in range(5):
                    response = await server.infer(input_seed=i)
                    assert response.ok
                return server.flight_records()

        records = run(_go())
        assert len(records) == 5
        assert all(r["outcome"] == "ok" for r in records)
        stages = records[0]
        tiling = stages["admission_ms"] + stages["queue_ms"] + \
            stages["batch_ms"]
        assert tiling == pytest.approx(stages["latency_ms"], abs=0.01)
        assert default_registry().slo("serve.slo.latency_ms").count == \
            before + 5

    def test_trace_requests_off_disables_the_tracer(self, artifact):
        async def _go():
            async with ModelServer(
                    {"m": artifact},
                    config=serial_config(trace_requests=False)) as server:
                response = await server.infer(input_seed=0)
                return response, server.tracer, server.flight_records()

        with recording() as recorder:
            response, tracer, records = run(_go())
        assert response.ok
        assert tracer is None and records == []
        assert [s for s in recorder.spans
                if s.name.startswith(REQUEST_SPAN)] == []

    def test_alert_fire_dumps_the_flight_ring(self, artifact, tmp_path):
        from repro.monitor.alerts import AlertEngine, MetricRule

        # a rule that trips on the very first completed batch
        engine = AlertEngine([MetricRule("always", metric="serve.responses",
                                         above=0.0)])

        async def _go():
            async with ModelServer(
                    {"m": artifact}, alerts=engine,
                    config=serial_config(
                        flight_dir=str(tmp_path))) as server:
                for i in range(3):
                    await server.infer(input_seed=i)

        run(_go())
        dumps = sorted(tmp_path.glob("flight-*.jsonl"))
        assert len(dumps) == 1, "one dump per alert reason, latched"
        header = json.loads(dumps[0].read_text().splitlines()[0])
        assert header["reason"] == "alert_always"

    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
    def test_shard_crash_dumps_the_flight_ring(self, artifact, tmp_path):
        async def _go():
            config = ServeConfig(shards=1, retries=0,
                                 flight_dir=str(tmp_path))
            async with ModelServer({"m": artifact},
                                   config=config) as server:
                assert (await server.infer(input_seed=0)).ok
                pool = server.shard_pool
                pool.max_respawns = 0  # the next death is permanent
                assert pool.kill_shard(0)
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline and any(pool.alive()):
                    await asyncio.sleep(0.02)
                response = await server.infer(input_seed=1)
                return response

        response = run(_go())
        assert not response.ok
        assert response.error_kind == "crash"
        dumps = sorted(tmp_path.glob("flight-*shard_crash*.jsonl"))
        assert len(dumps) == 1
        lines = dumps[0].read_text().splitlines()
        outcomes = [json.loads(line)["outcome"] for line in lines[1:]]
        assert "crash" in outcomes and "ok" in outcomes


def _counting_handler():
    """Shard handler bumping a counter the parent can't see directly."""
    registry = default_registry()

    def handle(payload):
        registry.counter("test.shard_side_count").inc()
        return payload["value"] * 2

    return handle


class TestCounterShipBack:
    @pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
    def test_child_counter_deltas_reach_the_parent_registry(self):
        counter = default_registry().counter("test.shard_side_count")
        before = counter.value
        with ShardPool(_counting_handler, shards=2) as pool:
            results = [pool.request({"value": i}, timeout=20)
                       for i in range(6)]
        assert all(r.ok for r in results)
        assert counter.value == before + 6

    def test_serial_mode_counts_in_process(self):
        counter = default_registry().counter("test.shard_side_count")
        before = counter.value
        with ShardPool(_counting_handler, shards=1,
                       start_method="spawn") as pool:
            assert pool.request({"value": 1}).ok
        assert counter.value == before + 1
