"""ModelServer end-to-end: correctness, batching, back-pressure, telemetry.

Most tests run the server with serial (in-process) shard execution so
every line of the request path is traced and timing is tight; one test
exercises real forked shard processes.
"""

import asyncio
import multiprocessing

import numpy as np
import pytest

from repro import backend as _backend
from repro.autograd import Tensor, no_grad
from repro.errors import ServeError
from repro.models.registry import build_model
from repro.monitor.alerts import AlertEngine, serving_rules
from repro.serve import ModelServer, ServeConfig, save_artifact
from repro.telemetry.metrics import default_registry

KW = dict(num_classes=4, in_channels=3, width=4)
SHAPE = (3, 8, 8)

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("artifacts") / "released"
    model = build_model("resnet8_tiny", rng=np.random.default_rng(11), **KW)
    save_artifact(model, path, "resnet8_tiny", model_kwargs=KW,
                  input_shape=SHAPE, seed=11)
    return str(path), model


def serial_config(**overrides):
    """In-process shard execution: deterministic and fully traceable."""
    overrides.setdefault("start_method", "spawn")  # degrades to serial
    return ServeConfig(**overrides)


def run(coro):
    return asyncio.run(coro)


class TestInference:
    def test_matches_direct_model_output(self, artifact):
        path, model = artifact
        x = np.random.default_rng(0).standard_normal((1,) + SHAPE)
        x = x.astype(np.float32)
        model.eval()
        with _backend.use_backend("fast"), no_grad():
            direct = np.asarray(model(Tensor(x)).data)

        async def _go():
            async with ModelServer({"m": path},
                                   config=serial_config()) as server:
                return await server.infer(inputs=x)

        response = run(_go())
        assert response.ok, response.error
        np.testing.assert_allclose(response.outputs, direct,
                                   rtol=1e-5, atol=1e-6)
        assert response.fingerprint
        assert response.latency_ms > 0
        assert response.argmax == list(direct.argmax(axis=1))

    def test_input_seed_requests_are_deterministic(self, artifact):
        path, _ = artifact

        async def _go():
            async with ModelServer({"m": path},
                                   config=serial_config()) as server:
                first = await server.infer(input_seed=123)
                second = await server.infer(input_seed=123)
                other = await server.infer(input_seed=124)
                return first, second, other

        first, second, other = run(_go())
        np.testing.assert_array_equal(first.outputs, second.outputs)
        assert not np.array_equal(first.outputs, other.outputs)

    def test_concurrent_requests_coalesce_into_batches(self, artifact):
        path, _ = artifact
        config = serial_config(max_batch=8, max_wait_ms=40.0)

        async def _go():
            async with ModelServer({"m": path}, config=config) as server:
                return await asyncio.gather(
                    *(server.infer(input_seed=i) for i in range(8)))

        responses = run(_go())
        assert all(r.ok for r in responses)
        assert max(r.batch_size for r in responses) > 1, \
            "coalescing window never produced a multi-request batch"

    def test_responses_split_correctly_within_a_batch(self, artifact):
        path, _ = artifact
        config = serial_config(max_batch=8, max_wait_ms=40.0)

        async def _go():
            async with ModelServer({"m": path}, config=config) as server:
                batched = await asyncio.gather(
                    *(server.infer(input_seed=i) for i in range(6)))
                singles = [await server.infer(input_seed=i) for i in range(6)]
                return batched, singles

        batched, singles = run(_go())
        for got, want in zip(batched, singles):
            np.testing.assert_allclose(got.outputs, want.outputs,
                                       rtol=1e-5, atol=1e-6)


class TestStructuredFailures:
    def test_unknown_model_key(self, artifact):
        path, _ = artifact

        async def _go():
            async with ModelServer({"m": path},
                                   config=serial_config()) as server:
                return await server.infer(model="nope", input_seed=0)

        response = run(_go())
        assert not response.ok
        assert response.error_kind == "unknown_model"
        assert "nope" in response.error

    def test_request_without_inputs_or_seed(self, artifact):
        path, _ = artifact

        async def _go():
            async with ModelServer({"m": path},
                                   config=serial_config()) as server:
                return await server.infer()

        response = run(_go())
        assert not response.ok and response.error_kind == "bad_request"

    def test_shape_mismatch_refused_at_admission(self, artifact):
        path, _ = artifact

        async def _go():
            async with ModelServer({"m": path},
                                   config=serial_config()) as server:
                wrong = np.zeros((1, 3, 4, 4), dtype=np.float32)
                return await server.infer(inputs=wrong)

        response = run(_go())
        assert not response.ok and response.error_kind == "bad_request"
        assert "input_shape" in response.error

    def test_artifact_without_shape_serves_explicit_inputs(self, tmp_path):
        # input_shape is Optional in save_artifact; such artifacts must
        # still serve explicit (already batched) inputs.
        model = build_model("resnet8_tiny", rng=np.random.default_rng(5),
                            **KW)
        path = str(tmp_path / "shapeless")
        save_artifact(model, path, "resnet8_tiny", model_kwargs=KW, seed=5)

        async def _go():
            async with ModelServer({"m": path},
                                   config=serial_config()) as server:
                x = np.zeros((2,) + SHAPE, dtype=np.float32)
                explicit = await server.infer(inputs=x)
                seeded = await server.infer(input_seed=0)
                return explicit, seeded

        explicit, seeded = run(_go())
        assert explicit.ok, explicit.error
        assert explicit.outputs.shape[0] == 2
        # seed synthesis genuinely needs the recorded shape: structured
        assert not seeded.ok and seeded.error_kind == "bad_request"

    def test_mixed_shape_batch_resolves_structured(self, tmp_path):
        # Without a recorded input_shape admission cannot pre-check
        # rows, so the coalesced np.concatenate fails inside the batch
        # task; every request must still resolve (never hang).
        model = build_model("resnet8_tiny", rng=np.random.default_rng(6),
                            **KW)
        path = str(tmp_path / "shapeless")
        save_artifact(model, path, "resnet8_tiny", model_kwargs=KW, seed=6)
        config = serial_config(max_batch=8, max_wait_ms=40.0)

        async def _go():
            async with ModelServer({"m": path}, config=config) as server:
                a = np.zeros((1,) + SHAPE, dtype=np.float32)
                b = np.zeros((1, 3, 4, 4), dtype=np.float32)
                return await asyncio.gather(server.infer(inputs=a),
                                            server.infer(inputs=b))

        first, second = run(asyncio.wait_for(_go(), timeout=30))
        for response in (first, second):
            assert not response.ok
            assert response.error_kind == "exception"
            assert "batch dispatch failed" in response.error

    def test_queue_overflow_refuses_structured(self, artifact):
        path, _ = artifact
        # long coalescing window + capacity 1: the second concurrent
        # request must be refused while the first is still queued
        config = serial_config(queue_capacity=1, max_wait_ms=200.0,
                               max_batch=16)

        async def _go():
            async with ModelServer({"m": path}, config=config) as server:
                first = asyncio.ensure_future(server.infer(input_seed=0))
                await asyncio.sleep(0)  # let it enqueue
                second = await server.infer(input_seed=1)
                return await first, second

        first, second = run(_go())
        assert first.ok
        assert not second.ok
        assert second.error_kind == "refused"
        assert "queue full" in second.error
        assert default_registry().counter("serve.refused").value >= 1

    def test_infer_after_close_is_structured(self, artifact):
        path, _ = artifact

        async def _go():
            server = ModelServer({"m": path}, config=serial_config())
            await server.start()
            await server.close()
            return await server.infer(input_seed=0)

        response = run(_go())
        assert not response.ok and response.error_kind == "shutdown"

    def test_missing_artifact_fails_at_startup(self, tmp_path):
        with pytest.raises(ServeError, match="metadata"):
            ModelServer({"m": tmp_path / "missing"})

    def test_no_artifacts_rejected(self):
        with pytest.raises(ServeError, match="at least one artifact"):
            ModelServer({})


class TestDeadlines:
    def test_impossible_deadline_is_flagged_not_dropped(self, artifact):
        path, _ = artifact

        async def _go():
            async with ModelServer({"m": path},
                                   config=serial_config()) as server:
                return await server.infer(input_seed=0, deadline_ms=0.5)

        response = run(_go())
        # 0.5ms is under any real inference time: the request must still
        # resolve, marked late, rather than hang or raise
        assert response.ok
        assert response.deadline_missed


class TestTelemetryAndAlerts:
    def test_request_path_metrics_populate(self, artifact):
        path, _ = artifact
        registry = default_registry()
        requests0 = registry.counter("serve.requests").value
        responses0 = registry.counter("serve.responses").value

        async def _go():
            async with ModelServer({"m": path},
                                   config=serial_config()) as server:
                await asyncio.gather(
                    *(server.infer(input_seed=i) for i in range(4)))

        run(_go())
        flat = registry.flat_snapshot()
        assert registry.counter("serve.requests").value == requests0 + 4
        assert registry.counter("serve.responses").value == responses0 + 4
        for key in ("serve.latency_ms.p50", "serve.latency_ms.p99",
                    "serve.queue_ms.mean", "serve.infer_ms.mean",
                    "serve.batch_size.max"):
            assert key in flat, f"{key} missing from flat snapshot"
        assert flat["serve.latency_ms.p99"] > 0

    def test_p99_breach_alert_fires_during_traffic(self, artifact):
        path, _ = artifact
        engine = AlertEngine(serving_rules(p99_budget_ms=1e-6))

        async def _go():
            async with ModelServer({"m": path}, config=serial_config(),
                                   alerts=engine) as server:
                await asyncio.gather(
                    *(server.infer(input_seed=i) for i in range(3)))

        run(_go())
        assert any(a.rule == "serve_p99_breach" for a in engine.alerts)
        critical = [a for a in engine.alerts if a.rule == "serve_p99_breach"]
        assert critical[0].severity == "critical"

    def test_models_and_stats_views(self, artifact):
        path, _ = artifact

        async def _go():
            async with ModelServer({"m": path},
                                   config=serial_config()) as server:
                return server.models(), server.stats()

        models, stats = run(_go())
        assert models["m"]["fingerprint"]
        assert models["m"]["input_shape"] == list(SHAPE)
        assert stats["running"] and stats["shards_alive"] == 1


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
class TestProcessBackedServing:
    def test_forked_shards_serve_and_match_serial(self, artifact):
        path, _ = artifact

        async def _serial():
            async with ModelServer({"m": path},
                                   config=serial_config()) as server:
                return await server.infer(input_seed=9)

        async def _forked():
            config = ServeConfig(shards=2)
            async with ModelServer({"m": path}, config=config) as server:
                return await asyncio.gather(
                    *(server.infer(input_seed=9) for _ in range(4)))

        serial = run(_serial())
        forked = run(_forked())
        assert all(r.ok for r in forked)
        for response in forked:
            np.testing.assert_allclose(response.outputs, serial.outputs,
                                       rtol=1e-5, atol=1e-6)
