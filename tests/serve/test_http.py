"""HTTP front end: routing, status mapping, cross-socket loadgen."""

import asyncio
import contextlib
import http.server
import json
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.models.registry import build_model
from repro.serve import (
    LoadGenConfig,
    ModelServer,
    ServeConfig,
    ServeHTTP,
    generate_trace,
    http_loadgen,
    save_artifact,
)

KW = dict(num_classes=4, in_channels=3, width=4)
SHAPE = (3, 8, 8)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("http") / "released"
    model = build_model("resnet8_tiny", rng=np.random.default_rng(31), **KW)
    save_artifact(model, path, "resnet8_tiny", model_kwargs=KW,
                  input_shape=SHAPE, seed=31)
    return str(path)


def _fetch(loop, url, body=None, method=None):
    """urllib round trip from an executor thread; returns (status, json)."""

    def _do():
        data = None if body is None else json.dumps(body).encode()
        request = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"},
            method=method or ("POST" if data else "GET"))
        try:
            with urllib.request.urlopen(request, timeout=15) as reply:
                return reply.status, json.loads(reply.read().decode())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read().decode())

    return loop.run_in_executor(None, _do)


async def _with_front(path, fn, **config_kwargs):
    config = ServeConfig(start_method="spawn", **config_kwargs)
    async with ModelServer({"m": path}, config=config) as server:
        async with ServeHTTP(server) as front:
            return await fn(asyncio.get_event_loop(), front)


class TestRoutes:
    def test_infer_round_trip_with_seed(self, artifact):
        async def _go(loop, front):
            return await _fetch(loop, front.url + "/infer",
                                {"input_seed": 3, "request_id": "rt-1"})

        status, body = asyncio.run(_with_front(artifact, _go))
        assert status == 200
        assert body["ok"] and body["request_id"] == "rt-1"
        assert isinstance(body["argmax"], list)
        assert body["latency_ms"] > 0

    def test_infer_with_explicit_inputs(self, artifact):
        x = np.zeros((1,) + SHAPE, dtype=np.float32).tolist()

        async def _go(loop, front):
            return await _fetch(loop, front.url + "/infer", {"inputs": x})

        status, body = asyncio.run(_with_front(artifact, _go))
        assert status == 200 and body["ok"]

    def test_healthz_and_models(self, artifact):
        async def _go(loop, front):
            health = await _fetch(loop, front.url + "/healthz")
            models = await _fetch(loop, front.url + "/models")
            return health, models

        (hs, health), (ms, models) = asyncio.run(_with_front(artifact, _go))
        assert hs == 200 and health["ok"] and health["shards_alive"] == 1
        assert ms == 200 and models["models"]["m"]["fingerprint"]

    def test_status_codes_map_error_kinds(self, artifact):
        async def _go(loop, front):
            unknown = await _fetch(loop, front.url + "/infer",
                                   {"model": "nope", "input_seed": 1})
            bad = await _fetch(loop, front.url + "/infer", {})
            route = await _fetch(loop, front.url + "/nowhere")
            return unknown, bad, route

        unknown, bad, route = asyncio.run(_with_front(artifact, _go))
        assert unknown[0] == 404
        assert unknown[1]["error_kind"] == "unknown_model"
        assert bad[0] == 400 and bad[1]["error_kind"] == "bad_request"
        assert route[0] == 404

    def test_malformed_json_body_is_400(self, artifact):
        async def _go(loop, front):
            def _do():
                request = urllib.request.Request(
                    front.url + "/infer", data=b"{broken",
                    headers={"Content-Type": "application/json"},
                    method="POST")
                try:
                    with urllib.request.urlopen(request, timeout=15) as r:
                        return r.status
                except urllib.error.HTTPError as exc:
                    return exc.code

            return await loop.run_in_executor(None, _do)

        assert asyncio.run(_with_front(artifact, _go)) == 400

    def test_negative_content_length_is_400(self, artifact):
        async def _go(loop, front):
            reader, writer = await asyncio.open_connection(front.host,
                                                           front.port)
            writer.write(b"POST /infer HTTP/1.1\r\n"
                         b"Content-Length: -5\r\n\r\n")
            await writer.drain()
            raw = await reader.read()
            writer.close()
            return raw

        raw = asyncio.run(_with_front(artifact, _go))
        status_line, _, rest = raw.partition(b"\r\n")
        assert b" 400 " in status_line, status_line
        body = json.loads(rest.split(b"\r\n\r\n", 1)[1])
        assert body["error_kind"] == "bad_request"


class TestHTTPLoadgen:
    def test_drives_a_live_server(self, artifact):
        trace = generate_trace(LoadGenConfig(seed=8, n_requests=12,
                                             rate_rps=300.0))

        async def _go(loop, front):
            return await http_loadgen(front.url, trace, time_scale=0.2)

        report = asyncio.run(_with_front(artifact, _go))
        assert report.sent == 12
        assert report.completed == 12
        assert report.errors == 0
        assert report.p50_ms > 0

    def test_survives_an_absent_server(self):
        trace = generate_trace(LoadGenConfig(seed=9, n_requests=4,
                                             rate_rps=1000.0))
        # nothing listens on this port; every request is lost, none raise
        report = asyncio.run(
            http_loadgen("http://127.0.0.1:9", trace, timeout_s=2.0))
        assert report.sent == 4
        assert report.completed == 0
        assert report.errors == 4


@contextlib.contextmanager
def _stub_server(status, body):
    """A real socket answering every POST with a canned (status, body)."""

    class Handler(http.server.BaseHTTPRequestHandler):
        def do_POST(self):
            self.rfile.read(int(self.headers.get("Content-Length", 0) or 0))
            payload = body if isinstance(body, bytes) else body.encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, *args):
            pass

    server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


class TestHTTPLoadgenErrorPaths:
    """The client must degrade structurally, never raise mid-run."""

    def _trace(self, n=3):
        return generate_trace(LoadGenConfig(seed=13, n_requests=n,
                                            rate_rps=1000.0))

    def test_connection_refused_is_counted_as_lost(self):
        # bind then release a port so the address is valid but refusing
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        report = asyncio.run(http_loadgen(
            f"http://127.0.0.1:{port}", self._trace(), timeout_s=2.0))
        assert report.sent == 3 and report.completed == 0
        assert report.error_kinds == {"lost": 3}

    def test_non_200_with_structured_body_keeps_the_error_kind(self):
        body = json.dumps({"request_id": "x", "ok": False,
                           "error": "queue full", "error_kind": "refused"})
        with _stub_server(503, body) as url:
            report = asyncio.run(http_loadgen(url, self._trace(),
                                              timeout_s=5.0))
        assert report.sent == 3 and report.completed == 0
        assert report.refused == 3
        assert report.error_kinds == {"refused": 3}

    def test_non_200_with_garbage_body_is_lost_not_raised(self):
        with _stub_server(500, "<html>Internal Server Error</html>") as url:
            report = asyncio.run(http_loadgen(url, self._trace(),
                                              timeout_s=5.0))
        assert report.completed == 0
        assert report.error_kinds == {"lost": 3}

    def test_malformed_json_on_200_is_lost_not_raised(self):
        with _stub_server(200, '{"ok": true, "request_id":') as url:
            report = asyncio.run(http_loadgen(url, self._trace(),
                                              timeout_s=5.0))
        assert report.completed == 0
        assert report.error_kinds == {"lost": 3}
