"""ShardPool: persistent workers, crash retry, structured failures."""

import multiprocessing
import os
import time

import pytest

from repro.errors import ServeError
from repro.parallel import ShardPool
from repro.telemetry.metrics import default_registry

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
needs_fork = pytest.mark.skipif(not HAVE_FORK,
                                reason="fork start method unavailable")


def _make_handler():
    """Per-shard handler: doubles numbers, raises on 'boom', reports its
    pid, and blocks until a sentinel file appears for crash tests."""
    pid = os.getpid()

    def handle(payload):
        if payload == "pid":
            return pid
        if payload == "boom":
            raise ValueError("boom payload")
        if isinstance(payload, dict) and "block_unless" in payload:
            while not os.path.exists(payload["block_unless"]):
                time.sleep(0.02)
            return "unblocked"
        return payload * 2

    return handle


def _broken_init():
    raise RuntimeError("init exploded")


def _wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return False


class TestSerialFallback:
    def test_non_fork_start_method_degrades_to_serial(self):
        pool = ShardPool(_make_handler, shards=2, start_method="spawn")
        try:
            assert pool.serial
            assert pool.alive() == [True, True]
            assert pool.request(21).value == 42
        finally:
            pool.close()

    def test_serial_exception_is_structured(self):
        with ShardPool(_make_handler, start_method="spawn") as pool:
            result = pool.request("boom")
            assert not result.ok
            assert result.error_kind == "exception"
            assert "boom payload" in result.error

    def test_serial_kill_shard_is_a_noop(self):
        with ShardPool(_make_handler, start_method="spawn") as pool:
            assert pool.kill_shard(0) is False
            assert pool.request(1).value == 2

    def test_submit_after_close_refused(self):
        pool = ShardPool(_make_handler, start_method="spawn")
        pool.close()
        with pytest.raises(ServeError, match="closed"):
            pool.submit(1)


class TestValidation:
    def test_bad_shard_count(self):
        with pytest.raises(ServeError, match="shards"):
            ShardPool(_make_handler, shards=0)

    def test_unknown_start_method(self):
        with pytest.raises(ServeError, match="start method"):
            ShardPool(_make_handler, start_method="threads")


@needs_fork
class TestProcessShards:
    def test_round_trip_runs_in_child_processes(self):
        with ShardPool(_make_handler, shards=2) as pool:
            assert not pool.serial
            assert pool.request(5, timeout=10).value == 10
            pids = {pool.request("pid", shard=i, timeout=10).value
                    for i in range(2)}
            assert os.getpid() not in pids
            assert len(pids) == 2, "each shard is its own process"

    def test_round_robin_spreads_requests(self):
        with ShardPool(_make_handler, shards=2) as pool:
            pids = {pool.request("pid", timeout=10).value for _ in range(6)}
            assert len(pids) == 2

    def test_handler_exception_keeps_shard_serving(self):
        with ShardPool(_make_handler, shards=1) as pool:
            result = pool.request("boom", timeout=10)
            assert not result.ok and result.error_kind == "exception"
            assert "boom payload" in result.error
            assert pool.request(3, timeout=10).value == 6
            assert pool.alive() == [True]

    def test_kill_mid_request_retries_on_respawned_shard(self, tmp_path):
        sentinel = str(tmp_path / "go")
        deaths0 = default_registry().counter("serve.shard_deaths").value
        with ShardPool(_make_handler, shards=1, retries=1) as pool:
            ticket = pool.submit({"block_unless": sentinel})
            assert _wait_until(lambda: pool.kill_shard(0))
            with open(sentinel, "w", encoding="utf-8") as fh:
                fh.write("go")
            result = pool.result(ticket, timeout=20)
            assert result.ok and result.value == "unblocked"
            assert result.attempts == 2, "first attempt died with the shard"
            assert pool.alive() == [True], "slot was respawned"
        assert default_registry().counter("serve.shard_deaths").value > deaths0

    def test_retries_exhausted_yields_structured_crash(self, tmp_path):
        sentinel = str(tmp_path / "never")
        with ShardPool(_make_handler, shards=1, retries=0) as pool:
            ticket = pool.submit({"block_unless": sentinel})
            assert _wait_until(lambda: pool.kill_shard(0))
            result = pool.result(ticket, timeout=20)
            assert not result.ok
            assert result.error_kind == "crash"
            assert "died" in result.error

    def test_no_respawn_budget_leaves_pool_dead(self):
        with ShardPool(_make_handler, shards=1, max_respawns=0) as pool:
            assert _wait_until(lambda: pool.kill_shard(0))
            assert _wait_until(lambda: pool.alive() == [False])
            result = pool.request(1, timeout=10)
            assert not result.ok
            assert result.error_kind == "crash"
            assert "no live shards" in result.error

    def test_result_timeout_is_structured_and_late_value_discarded(
            self, tmp_path):
        sentinel = str(tmp_path / "later")
        with ShardPool(_make_handler, shards=1) as pool:
            ticket = pool.submit({"block_unless": sentinel})
            result = pool.result(ticket, timeout=0.2)
            assert not result.ok and result.error_kind == "timeout"
            with open(sentinel, "w", encoding="utf-8") as fh:
                fh.write("go")
            # the late value must not leak into another ticket's slot
            assert pool.request(4, timeout=10).value == 8

    def test_abandoned_ticket_discarded_on_shard_death(self, tmp_path):
        # A timed-out (abandoned) ticket whose shard later dies must not
        # leave a stored result or an _abandoned marker behind -- a
        # long-running server would otherwise leak both maps.
        sentinel = str(tmp_path / "never")
        with ShardPool(_make_handler, shards=1, retries=0,
                       max_respawns=0) as pool:
            ticket = pool.submit({"block_unless": sentinel})
            result = pool.result(ticket, timeout=0.2)
            assert not result.ok and result.error_kind == "timeout"
            assert pool.kill_shard(0)
            assert _wait_until(lambda: pool.alive() == [False])
            assert _wait_until(
                lambda: not pool._results and not pool._abandoned
                and not pool._attempts)

    def test_init_failure_surfaces_as_dead_shard(self):
        with ShardPool(_broken_init, shards=1, retries=0) as pool:
            assert _wait_until(lambda: pool.alive() == [False])
            result = pool.request(1, timeout=10)
            assert not result.ok
            assert result.error_kind == "crash"
