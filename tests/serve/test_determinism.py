"""Serving determinism: replayable load runs, backend-equivalent outputs."""

import asyncio

import numpy as np
import pytest

from repro.models.registry import build_model
from repro.serve import (
    LoadGenConfig,
    ModelServer,
    ServeConfig,
    generate_trace,
    run_loadgen,
    save_artifact,
    save_trace,
)

KW = dict(num_classes=4, in_channels=3, width=4)
SHAPE = (3, 8, 8)


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("det") / "released"
    model = build_model("resnet8_tiny", rng=np.random.default_rng(23), **KW)
    save_artifact(model, path, "resnet8_tiny", model_kwargs=KW,
                  input_shape=SHAPE, seed=23)
    return str(path)


async def _serve_trace(path, trace, backend, max_batch=16):
    """Run the trace, returning {request_id: logits} plus the report."""
    outputs = {}
    config = ServeConfig(start_method="spawn", backend=backend,
                         max_wait_ms=2.0, max_batch=max_batch)

    class _Recorder:
        def __init__(self, server):
            self.server = server

        async def infer(self, **kwargs):
            response = await self.server.infer(**kwargs)
            if response.ok:
                outputs[response.request_id] = np.asarray(response.outputs)
            return response

    async with ModelServer({"m": path}, config=config) as server:
        report = await run_loadgen(_Recorder(server), trace, time_scale=0.2)
    return outputs, report


class TestReplayDeterminism:
    def test_same_seed_trace_files_are_byte_identical(self, tmp_path):
        config = LoadGenConfig(seed=77, n_requests=40, rate_rps=300.0)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_trace(generate_trace(config), str(a), config)
        save_trace(generate_trace(config), str(b), config)
        assert a.read_bytes() == b.read_bytes()

    def test_same_trace_replays_to_identical_outputs(self, artifact):
        # max_batch=1 pins batch composition, so replay is bit-identical;
        # batching perturbs GEMM summation order at float32 rounding
        # scale, which the batched-vs-unbatched test below bounds
        trace = generate_trace(LoadGenConfig(seed=5, n_requests=15,
                                             rate_rps=500.0))

        async def _go():
            first, r1 = await _serve_trace(artifact, trace, "fast",
                                           max_batch=1)
            second, r2 = await _serve_trace(artifact, trace, "fast",
                                            max_batch=1)
            return first, second, r1, r2

        first, second, r1, r2 = asyncio.run(_go())
        assert r1.completed == r2.completed == 15
        assert sorted(first) == sorted(second)
        for request_id in first:
            np.testing.assert_array_equal(first[request_id],
                                          second[request_id])

    def test_batched_replay_matches_unbatched_within_float32(self, artifact):
        trace = generate_trace(LoadGenConfig(seed=12, n_requests=15,
                                             rate_rps=500.0))

        async def _go():
            batched, _ = await _serve_trace(artifact, trace, "fast")
            single, _ = await _serve_trace(artifact, trace, "fast",
                                           max_batch=1)
            return batched, single

        batched, single = asyncio.run(_go())
        assert sorted(batched) == sorted(single)
        for request_id in batched:
            np.testing.assert_allclose(
                batched[request_id], single[request_id],
                rtol=1e-5, atol=1e-6,
                err_msg=f"batch-composition divergence on {request_id}")


class TestBackendEquivalence:
    def test_reference_and_fast_serving_outputs_agree(self, artifact):
        trace = generate_trace(LoadGenConfig(seed=6, n_requests=10,
                                             rate_rps=500.0))

        async def _go():
            fast, _ = await _serve_trace(artifact, trace, "fast")
            reference, _ = await _serve_trace(artifact, trace, "reference")
            return fast, reference

        fast, reference = asyncio.run(_go())
        assert sorted(fast) == sorted(reference)
        for request_id in fast:
            np.testing.assert_allclose(
                fast[request_id], reference[request_id],
                rtol=1e-4, atol=1e-5,
                err_msg=f"backend divergence on {request_id}")
