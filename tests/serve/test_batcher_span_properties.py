"""Property tests: request span trees under simulated batcher schedules.

Drives the real :class:`DeadlineBatcher` and :class:`RequestTracer` on
one shared fake clock over hypothesis-generated arrival patterns, then
checks the span-tree invariants the Chrome trace (and ``repro
analyze``) relies on: every span is monotone (non-negative duration),
every stage child nests inside its ``serve.request`` parent, the
tiling children are gapless, and the stage durations sum back to the
request's end-to-end latency.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.batcher import DeadlineBatcher
from repro.serve.tracing import REQUEST_SPAN, RequestTracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import TraceRecorder

EPS = 1e-9

# Workload: per-request (arrival gap, deadline slack); plus batcher
# shape and a per-batch simulated service time.
request_plans = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.02,
                  allow_nan=False, allow_infinity=False),  # gap to previous
        st.floats(min_value=1e-3, max_value=0.5,
                  allow_nan=False, allow_infinity=False),  # deadline slack
    ),
    min_size=1, max_size=40,
)

scenario_params = st.tuples(
    st.integers(min_value=1, max_value=8),     # max_batch
    st.floats(min_value=0.0, max_value=0.05,   # max_wait_s
              allow_nan=False, allow_infinity=False),
    st.floats(min_value=0.0, max_value=0.01,   # per-batch service time
              allow_nan=False, allow_infinity=False),
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _simulate(plan, max_batch, max_wait_s, service_s):
    """Admission -> coalescing -> dispatch -> finish on one fake clock.

    Mirrors the server's dispatch loop: pop after every admission, wake
    at ``next_due()`` between arrivals, and on dispatch advance the
    clock by the batch's service time before finishing its requests.
    """
    clock = FakeClock()
    recorder = TraceRecorder()
    tracer = RequestTracer(recorder=recorder, clock=clock,
                           registry=MetricsRegistry())
    batcher = DeadlineBatcher(max_batch=max_batch, max_wait_s=max_wait_s,
                              capacity=10_000, clock=clock)

    def _service(batches):
        for batch in batches:
            for request in batch:
                tracer.mark_dispatched(request.context,
                                       batch_size=len(batch))
            clock.now += service_s
            for request in batch:
                tracer.finish(request.context, ok=True, shard=0,
                              batch_size=len(batch),
                              infer_s=service_s / 2)

    def _wake_until(horizon):
        while True:
            due = batcher.next_due()
            if due is None or (horizon is not None and due > horizon):
                return
            clock.now = max(clock.now, due)
            _service(batcher.pop_due(clock.now))

    for index, (gap, slack) in enumerate(plan):
        arrival = clock.now + gap
        _wake_until(arrival)
        clock.now = arrival
        ctx = tracer.admit(f"r{index}", "m")
        batcher.submit(f"r{index}", payload=index,
                       deadline=clock.now + slack, now=clock.now,
                       context=ctx)
        tracer.mark_submitted(ctx)
        _service(batcher.pop_due(clock.now))
    _wake_until(None)
    assert len(batcher) == 0
    return recorder


def _span_trees(recorder):
    roots = {s.span_id: s for s in recorder.spans if s.name == REQUEST_SPAN}
    children = {}
    for span in recorder.spans:
        if span.name == REQUEST_SPAN:
            continue
        # infer spans hang off the batch child; walk up to the root
        parent = span.parent_id
        while parent not in roots:
            parent = next(s for s in recorder.spans
                          if s.span_id == parent).parent_id
        children.setdefault(parent, []).append(span)
    return roots, children


@settings(max_examples=80, deadline=None)
@given(request_plans, scenario_params)
def test_spans_are_monotone_and_nested_in_their_request(plan, params):
    recorder = _simulate(plan, *params)
    roots, children = _span_trees(recorder)
    assert len(roots) == len(plan), "every admitted request gets a root span"
    for root_id, root in roots.items():
        assert root.duration >= -EPS
        for child in children.get(root_id, []):
            assert child.duration >= -EPS, f"{child.name} runs backwards"
            assert child.start >= root.start - EPS, (
                f"{child.name} starts before its request span")
            assert child.end <= root.end + EPS, (
                f"{child.name} ends after its request span")


@settings(max_examples=80, deadline=None)
@given(request_plans, scenario_params)
def test_tiling_children_are_gapless_and_sum_to_e2e(plan, params):
    recorder = _simulate(plan, *params)
    roots, children = _span_trees(recorder)
    for root_id, root in roots.items():
        tiling = sorted(
            (c for c in children.get(root_id, [])
             if c.name != "serve.request.infer"),
            key=lambda c: c.start)
        assert tiling, "a finished request must have stage children"
        assert abs(tiling[0].start - root.start) <= EPS
        assert abs(tiling[-1].end - root.end) <= EPS
        for left, right in zip(tiling, tiling[1:]):
            assert abs(right.start - left.end) <= EPS, (
                f"gap between {left.name} and {right.name}")
        covered = sum(c.duration for c in tiling)
        assert abs(covered - root.duration) <= len(tiling) * EPS


@settings(max_examples=80, deadline=None)
@given(request_plans, scenario_params)
def test_every_request_id_appears_exactly_once(plan, params):
    recorder = _simulate(plan, *params)
    roots = [s for s in recorder.spans if s.name == REQUEST_SPAN]
    ids = sorted(s.attrs["request_id"] for s in roots)
    assert ids == sorted(f"r{i}" for i in range(len(plan)))
