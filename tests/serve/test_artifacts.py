"""Released-artifact format: roundtrip, fingerprints, LRU cache."""

import json
import os

import numpy as np
import pytest

from repro.errors import ServeError
from repro.models.registry import build_model
from repro.serve.artifacts import (
    META_FILE,
    WEIGHTS_FILE,
    ArtifactCache,
    artifact_fingerprint,
    load_artifact,
    save_artifact,
)

KW = dict(num_classes=4, in_channels=3, width=4)


def _make_artifact(path, seed=0, **extra):
    model = build_model("resnet8_tiny", rng=np.random.default_rng(seed), **KW)
    artifact = save_artifact(model, path, "resnet8_tiny", model_kwargs=KW,
                             input_shape=(3, 8, 8), seed=seed, **extra)
    return model, artifact


class TestRoundtrip:
    def test_save_then_load_restores_weights_exactly(self, tmp_path):
        model, saved = _make_artifact(tmp_path / "art")
        loaded, meta = load_artifact(tmp_path / "art")
        original = model.state_dict()
        restored = loaded.state_dict()
        assert sorted(original) == sorted(restored)
        for name in original:
            np.testing.assert_array_equal(original[name], restored[name])
        assert meta.fingerprint == saved.fingerprint
        assert meta.model_name == "resnet8_tiny"
        assert meta.input_shape == (3, 8, 8)

    def test_loaded_model_is_in_eval_mode(self, tmp_path):
        _make_artifact(tmp_path / "art")
        loaded, _ = load_artifact(tmp_path / "art")
        assert not loaded.training

    def test_manifest_records_identity(self, tmp_path):
        _, saved = _make_artifact(tmp_path / "art",
                                  quantization={"bits": 4, "method": "uniform"})
        assert saved.run_id
        assert saved.manifest["extra"]["artifact_fingerprint"] == \
            saved.fingerprint
        assert saved.quantization == {"bits": 4, "method": "uniform"}

    def test_unregistered_model_name_refused(self, tmp_path):
        model = build_model("resnet8_tiny", **KW)
        with pytest.raises(ServeError, match="not in the registry"):
            save_artifact(model, tmp_path / "art", "no_such_model")


class TestFingerprint:
    def test_same_weights_same_fingerprint(self):
        model = build_model("resnet8_tiny", rng=np.random.default_rng(1), **KW)
        state = model.state_dict()
        assert artifact_fingerprint("resnet8_tiny", KW, state) == \
            artifact_fingerprint("resnet8_tiny", KW, state)

    def test_different_weights_different_fingerprint(self):
        a = build_model("resnet8_tiny", rng=np.random.default_rng(1), **KW)
        b = build_model("resnet8_tiny", rng=np.random.default_rng(2), **KW)
        assert artifact_fingerprint("resnet8_tiny", KW, a.state_dict()) != \
            artifact_fingerprint("resnet8_tiny", KW, b.state_dict())

    def test_kwargs_change_fingerprint(self):
        model = build_model("resnet8_tiny", rng=np.random.default_rng(1), **KW)
        state = model.state_dict()
        other = dict(KW, width=8)
        assert artifact_fingerprint("resnet8_tiny", KW, state) != \
            artifact_fingerprint("resnet8_tiny", other, state)


class TestCorruption:
    def test_missing_directory(self, tmp_path):
        with pytest.raises(ServeError, match="metadata"):
            load_artifact(tmp_path / "nope")

    def test_unparseable_metadata(self, tmp_path):
        _make_artifact(tmp_path / "art")
        (tmp_path / "art" / META_FILE).write_text("{not json", "utf-8")
        with pytest.raises(ServeError, match="metadata"):
            load_artifact(tmp_path / "art")

    def test_wrong_format_marker(self, tmp_path):
        _make_artifact(tmp_path / "art")
        meta_path = tmp_path / "art" / META_FILE
        meta = json.loads(meta_path.read_text("utf-8"))
        meta["format"] = "something-else"
        meta_path.write_text(json.dumps(meta), "utf-8")
        with pytest.raises(ServeError, match="unknown artifact format"):
            load_artifact(tmp_path / "art")

    def test_truncated_weights(self, tmp_path):
        _make_artifact(tmp_path / "art")
        weights = tmp_path / "art" / WEIGHTS_FILE
        weights.write_bytes(weights.read_bytes()[: weights.stat().st_size // 2])
        with pytest.raises(ServeError):
            load_artifact(tmp_path / "art")

    def test_tampered_weights_fail_digest_check(self, tmp_path):
        _make_artifact(tmp_path / "art")
        weights_path = tmp_path / "art" / WEIGHTS_FILE
        with np.load(weights_path) as archive:
            state = {k: archive[k].copy() for k in archive.files}
        name = sorted(state)[0]
        state[name] = state[name] + 1.0
        np.savez(weights_path, **state)
        with pytest.raises(ServeError, match="digest mismatch"):
            load_artifact(tmp_path / "art")
        # but verify=False loads what is on disk
        model, _ = load_artifact(tmp_path / "art", verify=False)
        assert model is not None


class TestArtifactCache:
    def test_hit_and_miss_counters(self, tmp_path):
        from repro.telemetry.metrics import default_registry
        _make_artifact(tmp_path / "a", seed=1)
        cache = ArtifactCache(capacity=2)
        registry = default_registry()
        misses0 = registry.counter("serve.cache_misses").value
        hits0 = registry.counter("serve.cache_hits").value
        first = cache.get(tmp_path / "a")
        again = cache.get(tmp_path / "a")
        assert first[0] is again[0], "cache hit must return the same model"
        assert registry.counter("serve.cache_misses").value == misses0 + 1
        assert registry.counter("serve.cache_hits").value == hits0 + 1

    def test_lru_eviction_and_transparent_reload(self, tmp_path):
        _make_artifact(tmp_path / "a", seed=1)
        _make_artifact(tmp_path / "b", seed=2)
        _make_artifact(tmp_path / "c", seed=3)
        cache = ArtifactCache(capacity=2)
        model_a, art_a = cache.get(tmp_path / "a")
        cache.get(tmp_path / "b")
        cache.get(tmp_path / "c")  # evicts a (least recently used)
        assert len(cache) == 2
        assert art_a.fingerprint not in cache.fingerprints()
        # evicted artifact reloads transparently: same weights, new object
        reloaded, art_a2 = cache.get(tmp_path / "a")
        assert art_a2.fingerprint == art_a.fingerprint
        assert reloaded is not model_a
        sa, sb = model_a.state_dict(), reloaded.state_dict()
        for name in sa:
            np.testing.assert_array_equal(sa[name], sb[name])

    def test_recently_used_survives(self, tmp_path):
        _make_artifact(tmp_path / "a", seed=1)
        _make_artifact(tmp_path / "b", seed=2)
        _make_artifact(tmp_path / "c", seed=3)
        cache = ArtifactCache(capacity=2)
        _, art_a = cache.get(tmp_path / "a")
        cache.get(tmp_path / "b")
        cache.get(tmp_path / "a")  # touch a: b becomes LRU
        cache.get(tmp_path / "c")
        assert art_a.fingerprint in cache.fingerprints()

    def test_capacity_validation(self):
        with pytest.raises(ServeError, match="capacity"):
            ArtifactCache(capacity=0)

    def test_stats_tallies_and_hit_rate(self, tmp_path):
        _make_artifact(tmp_path / "a", seed=1)
        _make_artifact(tmp_path / "b", seed=2)
        _make_artifact(tmp_path / "c", seed=3)
        cache = ArtifactCache(capacity=2)
        assert cache.stats() == {"hits": 0.0, "misses": 0.0,
                                 "evictions": 0.0, "lookups": 0.0,
                                 "hit_rate": 0.0}
        cache.get(tmp_path / "a")   # miss
        cache.get(tmp_path / "a")   # hit
        cache.get(tmp_path / "b")   # miss
        cache.get(tmp_path / "c")   # miss, evicts a
        stats = cache.stats()
        assert stats["hits"] == 1.0
        assert stats["misses"] == 3.0
        assert stats["evictions"] == 1.0
        assert stats["lookups"] == 4.0
        assert stats["hit_rate"] == pytest.approx(0.25)

    def test_info_reports_cache_hit_rate(self, tmp_path, capsys):
        from repro.cli import main
        _make_artifact(tmp_path / "a", seed=1)
        cache = ArtifactCache(capacity=1)
        cache.get(tmp_path / "a")
        cache.get(tmp_path / "a")
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        line = [l for l in out.splitlines() if "serve cache" in l]
        assert line, out
        assert "hit rate over" in line[0]
        assert "evictions" in line[0]
