"""repro analyze: loaders, tail attribution, rendering, and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ServeError
from repro.models.registry import build_model
from repro.pipeline.results_io import load_manifest
from repro.serve import save_artifact
from repro.serve.analyze import (
    RequestRecord,
    analyze_requests,
    load_chrome_trace,
    load_flight_dump,
    load_requests,
    render_analysis,
)
from repro.serve.tracing import RequestTracer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import TraceRecorder


def record(rid, latency, admission=0.5, queue=2.0, infer=5.0,
           model="m", outcome="ok", batch=4):
    batch_ms = latency - admission - queue
    return RequestRecord(
        request_id=rid, model=model, outcome=outcome, batch_size=batch,
        latency_ms=latency, admission_ms=admission, queue_ms=queue,
        batch_ms=batch_ms, infer_ms=infer)


class FakeClock:
    def __init__(self, start=50.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def drive_tracer(tracer, n=4):
    """Run n requests with latencies 10, 20, 30, ... ms through a tracer."""
    for index in range(n):
        ctx = tracer.admit(f"r{index}", "m", input_shape=(1, 3, 8, 8))
        tracer.clock.advance(0.001)
        tracer.mark_submitted(ctx)
        tracer.clock.advance(0.002)
        tracer.mark_dispatched(ctx, batch_size=2)
        tracer.clock.advance(0.010 * (index + 1) - 0.003)
        tracer.finish(ctx, ok=True, shard=0,
                      infer_s=0.004 * (index + 1))


class TestAnalyzeRequests:
    def test_stage_means_sum_to_e2e_mean(self):
        records = [record(f"r{i}", 10.0 + 5 * i) for i in range(10)]
        report = analyze_requests(records)
        stages = report["stages"]
        tiling = stages["admission_ms"]["mean"] + \
            stages["queue_ms"]["mean"] + stages["batch_ms"]["mean"]
        assert tiling == pytest.approx(stages["e2e"]["mean"])

    def test_slowest_are_sorted_and_capped(self):
        records = [record(f"r{i}", float(i)) for i in range(20)]
        report = analyze_requests(records, top=3)
        assert [r.request_id for r in report["slowest"]] == \
            ["r19", "r18", "r17"]
        assert analyze_requests(records, top=0)["slowest"] == []

    def test_split_queue_wait_vs_compute(self):
        records = [record("a", 10.0, admission=1.0, queue=3.0, infer=4.0)]
        split = analyze_requests(records)["split"]
        assert split["total_ms"] == 10.0
        assert split["queue_wait_ms"] == 4.0
        assert split["compute_ms"] == 4.0
        assert split["other_ms"] == pytest.approx(2.0)
        assert split["queue_wait_frac"] == pytest.approx(0.4)

    def test_per_model_rows_and_outcome_tally(self):
        records = [record("a", 10.0, model="fast"),
                   record("b", 90.0, model="slow"),
                   record("c", 5.0, model="fast", outcome="refused")]
        report = analyze_requests(records)
        assert report["models"]["fast"]["count"] == 2
        assert report["models"]["slow"]["mean"] == 90.0
        assert report["outcomes"] == {"ok": 2, "refused": 1}

    def test_missing_stages_are_skipped_not_zeroed(self):
        refused = RequestRecord("r", outcome="refused", latency_ms=1.0,
                                admission_ms=1.0)
        report = analyze_requests([refused, record("a", 10.0)])
        assert report["stages"]["queue_ms"]["count"] == 1
        assert report["stages"]["e2e"]["count"] == 2

    def test_empty_records_raise(self):
        with pytest.raises(ServeError):
            analyze_requests([])


class TestRender:
    def test_tables_and_headline(self):
        records = [record(f"r{i}", 10.0 + i) for i in range(6)]
        text = render_analysis(analyze_requests(records), source="x.jsonl")
        assert "request analysis: 6 requests  (x.jsonl)" in text
        assert "latency by stage (ms):" in text
        assert "top 5 slowest requests (ms):" in text
        assert "latency by artifact (ms):" in text
        assert "outcomes: ok=6" in text

    def test_missing_stage_renders_as_dash(self):
        refused = RequestRecord("r0", outcome="refused", latency_ms=1.0)
        text = render_analysis(analyze_requests([refused]))
        slow_line = [l for l in text.splitlines() if l.startswith("r0")][0]
        assert " - " in slow_line


class TestLoaders:
    def test_flight_dump_roundtrip(self, tmp_path):
        tracer = RequestTracer(clock=FakeClock(),
                               registry=MetricsRegistry())
        drive_tracer(tracer, n=3)
        path = tmp_path / "dump.jsonl"
        tracer.flight.dump(path, reason="test")
        records = load_flight_dump(path)
        assert [r.request_id for r in records] == ["r0", "r1", "r2"]
        assert records[0].latency_ms == pytest.approx(10.0, abs=0.01)
        assert records[0].ok
        tiling = records[0].admission_ms + records[0].queue_ms + \
            records[0].batch_ms
        assert tiling == pytest.approx(records[0].latency_ms, abs=0.01)

    def test_chrome_trace_roundtrip(self, tmp_path):
        recorder = TraceRecorder()
        tracer = RequestTracer(recorder=recorder, clock=FakeClock(),
                               registry=MetricsRegistry())
        drive_tracer(tracer, n=3)
        path = tmp_path / "trace.json"
        recorder.to_chrome_trace(path)
        records = load_chrome_trace(path)
        assert len(records) == 3
        by_id = {r.request_id: r for r in records}
        assert by_id["r1"].latency_ms == pytest.approx(20.0, abs=0.01)
        assert by_id["r1"].queue_ms == pytest.approx(2.0, abs=0.01)
        assert by_id["r1"].model == "m" and by_id["r1"].outcome == "ok"

    def test_auto_detection_picks_the_right_loader(self, tmp_path):
        recorder = TraceRecorder()
        tracer = RequestTracer(recorder=recorder, clock=FakeClock(),
                               registry=MetricsRegistry())
        drive_tracer(tracer, n=2)
        flight, chrome = tmp_path / "f.jsonl", tmp_path / "t.json"
        tracer.flight.dump(flight, reason="test")
        recorder.to_chrome_trace(chrome)
        assert len(load_requests(flight)) == 2
        assert len(load_requests(chrome)) == 2
        report_a = analyze_requests(load_requests(flight))
        report_b = analyze_requests(load_requests(chrome))
        assert report_a["stages"]["e2e"]["mean"] == \
            pytest.approx(report_b["stages"]["e2e"]["mean"], abs=0.05)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ServeError, match="empty"):
            load_requests(path)

    def test_bad_flight_header_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"flight": "who-knows-v9"}\n')
        with pytest.raises(ServeError, match="unknown flight format"):
            load_flight_dump(path)

    def test_bad_record_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"flight": "repro-flight-v1"}\n{not json\n')
        with pytest.raises(ServeError, match=":2"):
            load_flight_dump(path)

    def test_non_json_chrome_trace_raises(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text("<html>")
        with pytest.raises(ServeError, match="not a chrome trace"):
            load_chrome_trace(path)


class TestCli:
    def test_analyze_flight_dump(self, tmp_path, capsys):
        tracer = RequestTracer(clock=FakeClock(),
                               registry=MetricsRegistry())
        drive_tracer(tracer, n=4)
        path = tmp_path / "dump.jsonl"
        tracer.flight.dump(path, reason="test")
        assert main(["analyze", str(path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "request analysis: 4 requests" in out
        assert "top 2 slowest requests" in out

    def test_analyze_missing_file_exits(self):
        with pytest.raises(SystemExit, match="repro analyze"):
            main(["analyze", "/nonexistent/nowhere.json"])

    def test_loadgen_writes_trace_and_manifest(self, tmp_path, capsys):
        kwargs = dict(num_classes=4, in_channels=3, width=4)
        artifact = tmp_path / "released"
        model = build_model("resnet8_tiny", rng=np.random.default_rng(5),
                            **kwargs)
        save_artifact(model, artifact, "resnet8_tiny", model_kwargs=kwargs,
                      input_shape=(3, 8, 8), seed=5)
        trace_out = tmp_path / "serve.trace.json"
        out = tmp_path / "report.json"
        rc = main(["--trace-out", str(trace_out),
                   "loadgen", f"m={artifact}", "--requests", "12",
                   "--rate", "400", "--time-scale", "1.0",
                   "--out", str(out)])
        capsys.readouterr()
        assert rc == 0
        # the chrome trace analyzes end to end
        records = load_requests(trace_out)
        assert len(records) == 12
        assert all(r.outcome == "ok" for r in records)
        # the manifest pins the observability surface of the run
        manifest = load_manifest(out)
        assert manifest.extra["trace_out"] == str(trace_out)
        assert manifest.extra["requests"] == 12
        assert "slo_ms" in manifest.extra
        report = json.loads(out.read_text())
        assert report["completed"] == 12
