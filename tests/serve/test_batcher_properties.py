"""Property-based tests: the deadline batcher's invariants.

The batcher is a pure decision kernel driven by an explicit simulated
clock, so every serving guarantee is checkable without a single sleep:
admitted requests never dispatch past their deadline, batches respect
the size cap, dispatch order is FIFO, and idle queues are no-ops.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServeError
from repro.serve.batcher import DeadlineBatcher

# One simulated workload: per-request (arrival gap, deadline slack).
request_plans = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.02,
                  allow_nan=False, allow_infinity=False),  # gap to previous
        st.floats(min_value=1e-4, max_value=0.5,
                  allow_nan=False, allow_infinity=False),  # deadline slack
    ),
    min_size=1, max_size=60,
)

batcher_params = st.tuples(
    st.integers(min_value=1, max_value=8),     # max_batch
    st.floats(min_value=0.0, max_value=0.05,   # max_wait_s
              allow_nan=False, allow_infinity=False),
)


def _drive(plan, max_batch, max_wait_s):
    """Emulate the server's dispatch loop on a simulated clock.

    The loop's contract (what the asyncio server does): pop after every
    admission, and between arrivals wake exactly at ``next_due()``.
    Returns the dispatched batches as (dispatch_time, batch) pairs.
    """
    batcher = DeadlineBatcher(max_batch=max_batch, max_wait_s=max_wait_s,
                              capacity=10_000)
    now = 0.0
    dispatched = []

    def _wake_until(horizon):
        nonlocal now
        while True:
            due = batcher.next_due()
            if due is None or (horizon is not None and due > horizon):
                return
            now = max(now, due)
            batches = batcher.pop_due(now)
            assert batches, "a due queue must emit at least one batch"
            for batch in batches:
                dispatched.append((now, batch))

    for i, (gap, slack) in enumerate(plan):
        arrival = now + gap
        _wake_until(arrival)  # server wake-ups before the next arrival
        now = arrival
        batcher.submit(f"r{i}", payload=i, deadline=now + slack, now=now)
        for batch in batcher.pop_due(now):  # full batches go immediately
            dispatched.append((now, batch))
    _wake_until(None)  # drain
    assert len(batcher) == 0
    return dispatched


@settings(max_examples=120, deadline=None)
@given(request_plans, batcher_params)
def test_no_request_dispatches_past_deadline(plan, params):
    max_batch, max_wait_s = params
    for dispatch_time, batch in _drive(plan, max_batch, max_wait_s):
        for request in batch:
            assert dispatch_time <= request.deadline, (
                f"{request.request_id} dispatched at {dispatch_time} after "
                f"deadline {request.deadline}")


@settings(max_examples=120, deadline=None)
@given(request_plans, batcher_params)
def test_batches_respect_size_cap_and_nothing_is_lost(plan, params):
    max_batch, max_wait_s = params
    dispatched = _drive(plan, max_batch, max_wait_s)
    assert all(1 <= len(batch) <= max_batch for _, batch in dispatched)
    ids = [r.request_id for _, batch in dispatched for r in batch]
    assert sorted(ids) == sorted(f"r{i}" for i in range(len(plan)))
    assert len(ids) == len(set(ids)), "a request dispatched twice"


@settings(max_examples=120, deadline=None)
@given(request_plans, batcher_params)
def test_dispatch_is_fifo(plan, params):
    max_batch, max_wait_s = params
    seqs = [r.seq for _, batch in _drive(plan, max_batch, max_wait_s)
            for r in batch]
    assert seqs == sorted(seqs), "requests left the queue out of order"


@settings(max_examples=120, deadline=None)
@given(request_plans, batcher_params)
def test_requests_never_wait_past_coalescing_budget(plan, params):
    max_batch, max_wait_s = params
    for dispatch_time, batch in _drive(plan, max_batch, max_wait_s):
        for request in batch:
            assert dispatch_time <= request.due_at + 1e-12, (
                f"{request.request_id} waited past its due time")


@settings(max_examples=60, deadline=None)
@given(st.floats(min_value=0.0, max_value=10.0,
                 allow_nan=False, allow_infinity=False))
def test_draining_an_empty_queue_is_a_noop(now):
    batcher = DeadlineBatcher(max_batch=4, max_wait_s=0.01)
    assert batcher.pop_due(now) == []
    assert batcher.next_due() is None
    assert batcher.drain() == []
    assert len(batcher) == 0


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=20))
def test_not_yet_due_queue_is_a_noop(n):
    batcher = DeadlineBatcher(max_batch=n + 1, max_wait_s=1.0)
    for i in range(n):
        batcher.submit(f"r{i}", payload=i, deadline=10.0, now=0.0)
    # nothing is due before the coalescing budget and the queue is not full
    assert batcher.pop_due(0.5) == []
    assert len(batcher) == n


def test_full_queue_refuses_with_structured_error():
    batcher = DeadlineBatcher(max_batch=2, max_wait_s=0.01, capacity=3)
    for i in range(3):
        batcher.submit(f"r{i}", payload=i, now=0.0)
    with pytest.raises(ServeError, match="queue full"):
        batcher.submit("r3", payload=3, now=0.0)


def test_passed_deadline_refused_at_admission():
    batcher = DeadlineBatcher()
    with pytest.raises(ServeError, match="deadline already passed"):
        batcher.submit("late", payload=0, deadline=1.0, now=2.0)


def test_full_batch_dispatches_immediately_without_due_requests():
    batcher = DeadlineBatcher(max_batch=4, max_wait_s=5.0)
    for i in range(4):
        batcher.submit(f"r{i}", payload=i, deadline=100.0, now=0.0)
    batches = batcher.pop_due(0.0)  # far from any due time
    assert [len(b) for b in batches] == [4]
