"""Load generator: deterministic traces, open-loop replay, robust reports."""

import asyncio

import numpy as np
import pytest

from repro.errors import ServeError
from repro.serve import (
    InferenceResponse,
    LoadGenConfig,
    ModelServer,
    ServeConfig,
    generate_trace,
    load_trace,
    run_loadgen,
    save_artifact,
    save_trace,
    trace_from_jsonl,
    trace_to_jsonl,
)
from repro.serve.loadgen import summarize_responses


class TestTraceGeneration:
    def test_same_seed_is_byte_identical(self):
        config = LoadGenConfig(seed=42, n_requests=50, rate_rps=100.0)
        assert trace_to_jsonl(generate_trace(config), config) == \
            trace_to_jsonl(generate_trace(config), config)

    def test_different_seed_differs(self):
        a = generate_trace(LoadGenConfig(seed=1, n_requests=20))
        b = generate_trace(LoadGenConfig(seed=2, n_requests=20))
        assert [e.arrival_s for e in a] != [e.arrival_s for e in b]
        assert [e.input_seed for e in a] != [e.input_seed for e in b]

    def test_arrivals_are_open_loop_monotone_from_zero(self):
        trace = generate_trace(LoadGenConfig(seed=0, n_requests=30))
        arrivals = [e.arrival_s for e in trace]
        assert arrivals[0] == 0.0
        assert arrivals == sorted(arrivals)

    def test_mean_rate_approximates_target(self):
        config = LoadGenConfig(seed=7, n_requests=4000, rate_rps=100.0,
                               alpha=1.8)
        trace = generate_trace(config)
        measured = (len(trace) - 1) / trace[-1].arrival_s
        assert measured == pytest.approx(100.0, rel=0.35), \
            "mean arrival rate should track rate_rps"

    def test_heavy_tail_produces_bursts(self):
        trace = generate_trace(LoadGenConfig(seed=3, n_requests=2000,
                                             rate_rps=100.0, alpha=1.5))
        gaps = np.diff([e.arrival_s for e in trace])
        assert gaps.max() > 10 * np.median(gaps), \
            "Pareto gaps should include bursts far above the median"

    def test_validation(self):
        with pytest.raises(ServeError, match="n_requests"):
            generate_trace(LoadGenConfig(n_requests=0))
        with pytest.raises(ServeError, match="rate_rps"):
            generate_trace(LoadGenConfig(rate_rps=0))
        with pytest.raises(ServeError, match="alpha"):
            generate_trace(LoadGenConfig(alpha=1.0))


class TestTraceIO:
    def test_roundtrip_through_file_is_byte_identical(self, tmp_path):
        config = LoadGenConfig(seed=9, n_requests=25, deadline_ms=333.0)
        trace = generate_trace(config)
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_trace(trace, str(first), config)
        save_trace(load_trace(str(first)), str(second), config)
        assert first.read_bytes() == second.read_bytes()

    def test_loaded_entries_match(self, tmp_path):
        trace = generate_trace(LoadGenConfig(seed=4, n_requests=10,
                                             model="faces"))
        path = tmp_path / "trace.jsonl"
        save_trace(trace, str(path))
        loaded = load_trace(str(path))
        assert [e.to_dict() for e in loaded] == [e.to_dict() for e in trace]

    def test_loaded_trace_resaves_byte_identical_without_config(
            self, tmp_path):
        # the replay path: whoever re-saves a loaded trace does not have
        # the original LoadGenConfig -- the trace carries its own header
        config = LoadGenConfig(seed=13, n_requests=12, rate_rps=250.0)
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        save_trace(generate_trace(config), str(first), config)
        save_trace(load_trace(str(first)), str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_generated_trace_saves_its_own_header(self, tmp_path):
        config = LoadGenConfig(seed=14, n_requests=5)
        path = tmp_path / "t.jsonl"
        save_trace(generate_trace(config), str(path))  # no config passed
        loaded = load_trace(str(path))
        assert loaded.config == config.to_dict()

    def test_rejects_non_trace_files(self):
        with pytest.raises(ServeError, match="not a loadgen trace"):
            trace_from_jsonl('{"something": "else"}\n')
        with pytest.raises(ServeError, match="empty"):
            trace_from_jsonl("")


def _response(ok=True, latency_ms=10.0, kind="", batch=2, missed=False):
    return InferenceResponse(request_id="r", ok=ok, latency_ms=latency_ms,
                             error_kind=kind, batch_size=batch,
                             deadline_missed=missed)


class TestReport:
    def test_quantiles_and_counts(self):
        responses = [_response(latency_ms=ms) for ms in (5, 10, 15, 20)]
        responses.append(_response(ok=False, kind="refused"))
        responses.append(_response(ok=False, kind="crash"))
        responses.append(None)  # lost on the wire
        report = summarize_responses(responses, duration_s=2.0)
        assert report.sent == 7
        assert report.completed == 4
        assert report.refused == 1
        assert report.errors == 2  # crash + lost
        assert report.error_kinds == {"refused": 1, "crash": 1, "lost": 1}
        assert report.p50_ms == pytest.approx(12.5)
        assert report.max_ms == 20.0
        assert report.throughput_rps == pytest.approx(2.0)
        assert report.mean_batch == pytest.approx(2.0)

    def test_metrics_dict_is_bench_ready(self):
        report = summarize_responses([_response()], duration_s=1.0)
        metrics = report.metrics()
        assert set(metrics) == {"throughput_rps", "latency_p50_ms",
                                "latency_p99_ms", "mean_batch",
                                "completed_frac"}
        assert all(isinstance(v, float) for v in metrics.values())

    def test_table_renders(self):
        report = summarize_responses(
            [_response(), _response(ok=False, kind="refused")], 1.0)
        table = report.to_table()
        assert "throughput" in table and "refused" in table
        assert "error kinds" in table


class _RefusingServer:
    """Server double that refuses everything (queue permanently full)."""

    async def infer(self, **kwargs):
        return InferenceResponse(request_id=str(kwargs.get("request_id")),
                                 ok=False, error="queue full",
                                 error_kind="refused")


class _ExplodingServer:
    """Server double whose admission raises (the worst-behaved server)."""

    async def infer(self, **kwargs):
        raise ServeError("connection torn down")


class TestRunLoadgen:
    def test_against_real_server_completes_everything(self, tmp_path):
        from repro.models.registry import build_model
        kw = dict(num_classes=4, in_channels=3, width=4)
        model = build_model("resnet8_tiny", rng=np.random.default_rng(5), **kw)
        path = tmp_path / "art"
        save_artifact(model, path, "resnet8_tiny", model_kwargs=kw,
                      input_shape=(3, 8, 8))
        trace = generate_trace(LoadGenConfig(seed=1, n_requests=25,
                                             rate_rps=500.0))

        async def _go():
            config = ServeConfig(start_method="spawn", max_wait_ms=2.0)
            async with ModelServer({"m": path}, config=config) as server:
                return await run_loadgen(server, trace)

        report = asyncio.run(_go())
        assert report.sent == 25
        assert report.completed == 25
        assert report.errors == 0
        assert report.throughput_rps > 0
        assert report.p99_ms >= report.p50_ms > 0

    def test_survives_a_refusing_server(self):
        trace = generate_trace(LoadGenConfig(seed=2, n_requests=10,
                                             rate_rps=1000.0))
        report = asyncio.run(run_loadgen(_RefusingServer(), trace))
        assert report.sent == 10
        assert report.refused == 10
        assert report.completed == 0

    def test_survives_a_raising_server(self):
        trace = generate_trace(LoadGenConfig(seed=2, n_requests=5,
                                             rate_rps=1000.0))
        report = asyncio.run(run_loadgen(_ExplodingServer(), trace))
        assert report.sent == 5
        assert report.errors == 5
        assert report.error_kinds == {"lost": 5}
