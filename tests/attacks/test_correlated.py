"""Eq. 1 correlation penalty: math, gradients, optimisation behaviour."""

import numpy as np
import pytest

from repro.attacks import CorrelationPenalty, pearson_correlation
from repro.attacks.correlated import flatten_parameters
from repro.autograd import Tensor, grad_check
from repro.errors import CapacityError
from repro.nn.module import Parameter

RNG = np.random.default_rng(31)


class TestPearson:
    def test_perfect_correlation(self):
        x = RNG.standard_normal(50)
        corr = pearson_correlation(Tensor(x), Tensor(2.0 * x + 3.0))
        assert np.isclose(corr.item(), 1.0, atol=1e-9)

    def test_perfect_anticorrelation(self):
        x = RNG.standard_normal(50)
        corr = pearson_correlation(Tensor(x), Tensor(-x))
        assert np.isclose(corr.item(), -1.0, atol=1e-9)

    def test_matches_numpy(self):
        a, b = RNG.standard_normal(100), RNG.standard_normal(100)
        corr = pearson_correlation(Tensor(a), Tensor(b))
        assert np.isclose(corr.item(), np.corrcoef(a, b)[0, 1], atol=1e-9)

    def test_gradient(self):
        secret = Tensor(RNG.standard_normal(20))
        grad_check(lambda a: pearson_correlation(a, secret), [RNG.standard_normal(20)])

    def test_scale_invariance(self):
        a, b = RNG.standard_normal(30), RNG.standard_normal(30)
        c1 = pearson_correlation(Tensor(a), Tensor(b)).item()
        c2 = pearson_correlation(Tensor(5 * a + 1), Tensor(0.1 * b - 7)).item()
        assert np.isclose(c1, c2, atol=1e-9)


class TestFlattenParameters:
    def test_concatenates_in_order(self):
        p1 = Parameter(np.arange(4.0).reshape(2, 2))
        p2 = Parameter(np.arange(4.0, 10.0).reshape(2, 3))
        flat = flatten_parameters([p1, p2])
        assert np.allclose(flat.data, np.arange(10.0))

    def test_single_param(self):
        p = Parameter(np.ones((2, 2)))
        assert flatten_parameters([p]).shape == (4,)

    def test_empty_raises(self):
        with pytest.raises(CapacityError):
            flatten_parameters([])

    def test_gradient_routes_back(self):
        p1 = Parameter(RNG.standard_normal((2, 2)))
        p2 = Parameter(RNG.standard_normal(3))
        from repro.autograd import functional as F
        F.sum(F.mul(flatten_parameters([p1, p2]), flatten_parameters([p1, p2]))).backward()
        assert p1.grad.shape == (2, 2)
        assert p2.grad.shape == (3,)


class TestCorrelationPenalty:
    def test_penalty_value_bounds(self):
        params = [Parameter(RNG.standard_normal((4, 4)))]
        penalty = CorrelationPenalty(params, RNG.random(16) * 255, rate=5.0)
        value = penalty().item()
        assert -5.0 <= value <= 0.0

    def test_truncates_to_min_length(self):
        params = [Parameter(RNG.standard_normal(10))]
        penalty = CorrelationPenalty(params, RNG.random(100), rate=1.0)
        assert penalty.length == 10

    def test_secret_shorter_than_params(self):
        params = [Parameter(RNG.standard_normal(100))]
        penalty = CorrelationPenalty(params, RNG.random(10), rate=1.0)
        assert penalty.length == 10

    def test_empty_secret_raises(self):
        with pytest.raises(CapacityError):
            CorrelationPenalty([Parameter(np.ones(4))], np.array([]), rate=1.0)

    def test_optimisation_increases_correlation(self):
        # Gradient descent on the penalty alone must push |corr| -> 1.
        params = [Parameter(RNG.standard_normal((8, 8)))]
        secret = RNG.random(64) * 255
        penalty = CorrelationPenalty(params, secret, rate=1.0)
        start = abs(penalty.correlation_value())
        from repro.nn import SGD
        opt = SGD(params, lr=0.5, momentum=0.9)
        for _ in range(150):
            loss = penalty()
            params[0].grad = None
            loss.backward()
            opt.step()
        end = abs(penalty.correlation_value())
        assert end > 0.95
        assert end > start

    def test_correlation_value_matches_numpy(self):
        params = [Parameter(RNG.standard_normal(40))]
        secret = RNG.random(40)
        penalty = CorrelationPenalty(params, secret, rate=1.0)
        expected = np.corrcoef(params[0].data, secret)[0, 1]
        assert np.isclose(penalty.correlation_value(), expected, atol=1e-9)

    def test_rate_scales_penalty(self):
        params = [Parameter(RNG.standard_normal(30))]
        secret = RNG.random(30)
        p1 = CorrelationPenalty(params, secret, rate=1.0)().item()
        p5 = CorrelationPenalty(params, secret, rate=5.0)().item()
        assert np.isclose(p5, 5.0 * p1, atol=1e-9)

    def test_gradient_spans_multiple_params(self):
        params = [Parameter(RNG.standard_normal((3, 3))),
                  Parameter(RNG.standard_normal(7))]
        penalty = CorrelationPenalty(params, RNG.random(16), rate=2.0)
        penalty().backward()
        assert params[0].grad is not None
        assert params[1].grad is not None
