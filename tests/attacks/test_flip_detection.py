"""Histogram flip detection for Algorithm 1 under negative correlation."""

import numpy as np

from repro.quantization import TargetCorrelatedQuantizer, detect_flip

RNG = np.random.default_rng(67)


class TestDetectFlip:
    def test_positive_correlation(self):
        secret = RNG.random(500) * 255
        weights = secret * 0.01 + RNG.normal(0, 0.05, 500)
        assert detect_flip(weights, secret) is False

    def test_negative_correlation(self):
        secret = RNG.random(500) * 255
        weights = -secret * 0.01 + RNG.normal(0, 0.05, 500)
        assert detect_flip(weights, secret) is True

    def test_uncorrelated_defaults_to_no_flip(self):
        # Sign is meaningless at |corr| ~ 0, either answer is fine; the
        # implementation just must not crash and must return a bool.
        result = detect_flip(RNG.standard_normal(100), RNG.random(100))
        assert isinstance(result, bool)

    def test_constant_weights(self):
        assert detect_flip(np.ones(50), RNG.random(50)) is False

    def test_too_short(self):
        assert detect_flip(np.array([1.0]), np.array([2.0])) is False

    def test_alignment_uses_prefix(self):
        # Only the first len(secret) weights are encoder-aligned.
        secret = RNG.random(100) * 255
        weights = np.concatenate([-secret, RNG.standard_normal(1000)])
        assert detect_flip(weights, secret) is True


class TestFlippedQuantizer:
    def test_flip_reverses_histogram(self):
        images = np.zeros((1, 8, 8, 1), dtype=np.uint8)
        images[0, :2] = 255  # 25% bright pixels
        plain = TargetCorrelatedQuantizer(images, levels=4, flip=False)
        flipped = TargetCorrelatedQuantizer(images, levels=4, flip=True)
        assert np.allclose(plain.histogram[::-1], flipped.histogram)

    def test_flipped_boundaries_match_negated_weights(self):
        # Quantizing -w with the flipped histogram must produce the same
        # cluster *sizes* as quantizing w with the plain one.
        rng = np.random.default_rng(3)
        images = rng.integers(0, 256, size=(4, 8, 8, 1), dtype=np.uint8)
        weights = rng.standard_normal(2000)
        plain = TargetCorrelatedQuantizer(images, levels=8, flip=False)
        flipped = TargetCorrelatedQuantizer(images, levels=8, flip=True)
        _, assign_plain = plain.quantize_vector(weights)
        _, assign_flipped = flipped.quantize_vector(-weights)
        sizes_plain = np.bincount(assign_plain, minlength=8)
        sizes_flipped = np.bincount(assign_flipped, minlength=8)[::-1]
        assert np.array_equal(sizes_plain, sizes_flipped)

    def test_flip_improves_reconstruction_under_negative_corr(self):
        # Anti-correlated weights + skewed histogram: the flipped
        # quantizer must preserve the weight distribution better.
        from repro.metrics import histogram_overlap
        rng = np.random.default_rng(4)
        images = np.zeros((2, 8, 8, 1), dtype=np.uint8)
        images[:, :6] = 230  # bright-heavy, like the face backgrounds
        images[:, 6:] = 40
        pixels = images.reshape(-1).astype(float)
        weights = -pixels / 255.0 + rng.normal(0, 0.02, pixels.size)
        plain = TargetCorrelatedQuantizer(images, levels=8, flip=False)
        flipped = TargetCorrelatedQuantizer(images, levels=8, flip=True)
        cb_p, a_p = plain.quantize_vector(weights)
        cb_f, a_f = flipped.quantize_vector(weights)
        overlap_plain = histogram_overlap(cb_p[a_p], weights, bins=16)
        overlap_flipped = histogram_overlap(cb_f[a_f], weights, bins=16)
        assert overlap_flipped > overlap_plain
