"""Image <-> bit packing for the baseline attacks."""

import numpy as np
import pytest

from repro.attacks import (
    bit_error_rate,
    bits_to_images,
    images_to_bits,
    lsb_image_capacity,
    sign_image_capacity,
)
from repro.errors import CapacityError

RNG = np.random.default_rng(73)


class TestRoundtrip:
    def test_single_image(self):
        image = RNG.integers(0, 256, (8, 8, 1), dtype=np.uint8)
        bits = images_to_bits(image)
        assert bits.size == 8 * 8 * 8
        assert np.array_equal(bits_to_images(bits, image.shape), image)

    def test_batch(self):
        images = RNG.integers(0, 256, (3, 4, 4, 3), dtype=np.uint8)
        recovered = bits_to_images(images_to_bits(images), images.shape)
        assert np.array_equal(recovered, images)

    def test_extra_bits_ignored(self):
        image = RNG.integers(0, 256, (4, 4, 1), dtype=np.uint8)
        bits = np.concatenate([images_to_bits(image), np.ones(64, dtype=np.uint8)])
        assert np.array_equal(bits_to_images(bits, image.shape), image)

    def test_too_few_bits_raises(self):
        with pytest.raises(CapacityError):
            bits_to_images(np.zeros(10, dtype=np.uint8), (4, 4, 1))


class TestBitErrorRate:
    def test_identical_zero(self):
        bits = RNG.integers(0, 2, 100)
        assert bit_error_rate(bits, bits) == 0.0

    def test_all_flipped_one(self):
        bits = RNG.integers(0, 2, 100)
        assert bit_error_rate(bits, 1 - bits) == 1.0

    def test_half(self):
        a = np.zeros(10, dtype=np.uint8)
        b = np.array([0, 1] * 5, dtype=np.uint8)
        assert bit_error_rate(a, b) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(CapacityError):
            bit_error_rate(np.zeros(4), np.zeros(5))

    def test_empty(self):
        assert bit_error_rate(np.zeros(0), np.zeros(0)) == 0.0


class TestCapacities:
    def test_lsb(self):
        # 1000 weights x 8 bits = 8000 bits; 64-px image needs 512 bits.
        assert lsb_image_capacity(1000, 64, 8) == 15

    def test_sign(self):
        # 1000 weights x 1 bit; 64-px image needs 512 bits.
        assert sign_image_capacity(1000, 64) == 1

    def test_correlation_beats_both(self):
        # The paper's efficiency ordering: correlation (1 px/weight)
        # > LSB at 8 bits/weight (1 px/weight too, but float32 only)
        # > sign (1/8 px per weight).
        weights, pixels = 10_000, 256
        correlation_capacity = weights // pixels
        assert correlation_capacity >= lsb_image_capacity(weights, pixels, 8)
        assert lsb_image_capacity(weights, pixels, 8) > sign_image_capacity(weights, pixels)
