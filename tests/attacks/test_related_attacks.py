"""Model inversion and membership inference baselines."""

import numpy as np
import pytest

from repro.attacks import (
    InversionConfig,
    MembershipResult,
    invert_class,
    inversion_quality_vs_class,
    membership_inference,
    per_sample_loss,
)
from repro.errors import ConfigError, ShapeError

RNG = np.random.default_rng(103)


@pytest.fixture(scope="module")
def trained_classifier():
    """A small trained CNN + its train/test splits (module scope).

    The dataset is deliberately noisy and small so the model *overfits*
    -- membership inference needs a generalisation gap to have signal.
    """
    from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar, train_test_split
    from repro.datasets.transforms import images_to_batch, normalize_batch
    from repro.models import resnet8_tiny
    from repro.pipeline import Trainer, TrainingConfig

    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=100, num_classes=4, image_size=16,
                             seed=13, noise_sigma=45.0)
    )
    train, test = train_test_split(data, test_fraction=0.3, seed=0)
    train_batch = images_to_batch(train.images)
    train_batch, mean, std = normalize_batch(train_batch)
    test_batch = images_to_batch(test.images)
    test_batch, _, _ = normalize_batch(test_batch, mean, std)
    model = resnet8_tiny(num_classes=4, width=8, rng=np.random.default_rng(0))
    Trainer(model, train_batch, train.labels,
            TrainingConfig(epochs=25, batch_size=32, lr=0.08)).train()
    return {
        "model": model, "train": train, "test": test,
        "train_batch": train_batch, "test_batch": test_batch,
        "mean": mean, "std": std,
    }


class TestModelInversion:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            InversionConfig(steps=0).validate()
        with pytest.raises(ConfigError):
            InversionConfig(lr=0.0).validate()

    def test_prototype_shape_and_dtype(self, trained_classifier):
        setup = trained_classifier
        prototype = invert_class(
            setup["model"], 0, (3, 16, 16),
            InversionConfig(steps=30), setup["mean"], setup["std"],
        )
        assert prototype.shape == (16, 16, 3)
        assert prototype.dtype == np.uint8

    def test_prototype_classified_as_target(self, trained_classifier):
        setup = trained_classifier
        from repro.datasets.transforms import images_to_batch, normalize_batch
        from repro.metrics import predict_classes
        prototype = invert_class(
            setup["model"], 1, (3, 16, 16),
            InversionConfig(steps=120, lr=0.1), setup["mean"], setup["std"],
        )
        batch = images_to_batch(prototype[None])
        batch, _, _ = normalize_batch(batch, setup["mean"], setup["std"])
        assert predict_classes(setup["model"], batch)[0] == 1

    def test_deterministic_given_seed(self, trained_classifier):
        setup = trained_classifier
        config = InversionConfig(steps=20, seed=3)
        a = invert_class(setup["model"], 0, (3, 16, 16), config,
                         setup["mean"], setup["std"])
        b = invert_class(setup["model"], 0, (3, 16, 16), config,
                         setup["mean"], setup["std"])
        assert np.array_equal(a, b)

    def test_quality_vs_class_uses_best_match(self):
        prototype = np.full((4, 4, 1), 100, dtype=np.uint8)
        class_images = np.stack([
            np.full((4, 4, 1), 100, dtype=np.uint8),   # perfect match
            np.zeros((4, 4, 1), dtype=np.uint8),
        ])
        assert inversion_quality_vs_class(prototype, class_images) == 0.0


class TestMembershipInference:
    def test_per_sample_loss_shape(self, trained_classifier):
        setup = trained_classifier
        losses = per_sample_loss(setup["model"], setup["test_batch"],
                                 setup["test"].labels)
        assert losses.shape == (len(setup["test"]),)
        assert np.all(losses >= 0)

    def test_length_mismatch_raises(self, trained_classifier):
        setup = trained_classifier
        with pytest.raises(ShapeError):
            per_sample_loss(setup["model"], setup["test_batch"], np.zeros(3))

    def test_members_have_lower_loss(self, trained_classifier):
        setup = trained_classifier
        result = membership_inference(
            setup["model"],
            setup["train_batch"], setup["train"].labels,
            setup["test_batch"], setup["test"].labels,
        )
        assert result.member_losses.mean() <= result.non_member_losses.mean()
        assert result.auc >= 0.5

    def test_auc_perfect_separation(self):
        result = MembershipResult(
            member_losses=np.array([0.1, 0.2, 0.3]),
            non_member_losses=np.array([1.0, 2.0, 3.0]),
        )
        assert result.auc == 1.0

    def test_auc_no_information(self):
        same = np.array([1.0, 1.0, 1.0])
        result = MembershipResult(member_losses=same, non_member_losses=same)
        assert np.isclose(result.auc, 0.5)

    def test_auc_inverted(self):
        result = MembershipResult(
            member_losses=np.array([5.0, 6.0]),
            non_member_losses=np.array([0.1, 0.2]),
        )
        assert result.auc == 0.0

    def test_advantage_bounds(self):
        result = MembershipResult(
            member_losses=np.array([0.1, 0.2, 0.9]),
            non_member_losses=np.array([0.15, 1.0, 2.0]),
        )
        advantage = result.advantage()
        assert 0.0 <= advantage <= 1.0

    def test_advantage_explicit_threshold(self):
        result = MembershipResult(
            member_losses=np.array([0.1, 0.2]),
            non_member_losses=np.array([1.0, 2.0]),
        )
        assert result.advantage(0.5) == 1.0
