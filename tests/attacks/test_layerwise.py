"""Eq. 2 layer-wise penalty: grouping, payload assignment, P_k weighting."""

import numpy as np
import pytest

from repro.attacks import LayerwiseCorrelationPenalty, SecretPayload, group_by_layer_ranges
from repro.attacks.layerwise import assign_payload
from repro.errors import CapacityError, ConfigError
from repro.models import resnet8_tiny
from repro.models.mlp import MLP


def model():
    return resnet8_tiny(num_classes=4, width=4, rng=np.random.default_rng(0))


def make_payload(n, size=4, channels=1, seed=0):
    rng = np.random.default_rng(seed)
    return SecretPayload(
        rng.integers(0, 256, size=(n, size, size, channels), dtype=np.uint8),
        np.zeros(n, dtype=np.int64),
    )


class TestGrouping:
    def test_covers_all_layers(self):
        groups = group_by_layer_ranges(model(), ((1, 3), (4, -1)), (0.0, 5.0))
        from repro.models import encodable_parameters
        total = len(encodable_parameters(model()))
        assert sum(len(g.param_names) for g in groups) == total

    def test_paper_grouping_on_deep_model(self):
        from repro.models import resnet18_cifar
        deep = resnet18_cifar(rng=np.random.default_rng(0))
        groups = group_by_layer_ranges(deep, ((1, 6), (7, 10), (11, -1)), (0.0, 0.0, 3.0))
        assert len(groups) == 3
        assert len(groups[0].param_names) == 6
        assert len(groups[1].param_names) == 4

    def test_group_names_default(self):
        groups = group_by_layer_ranges(model(), ((1, 2), (3, -1)), (1.0, 2.0))
        assert [g.name for g in groups] == ["group1", "group2"]

    def test_custom_names(self):
        groups = group_by_layer_ranges(model(), ((1, 2), (3, -1)), (1.0, 2.0),
                                       names=["early", "late"])
        assert [g.name for g in groups] == ["early", "late"]

    def test_non_contiguous_raises(self):
        with pytest.raises(ConfigError):
            group_by_layer_ranges(model(), ((1, 2), (4, -1)), (1.0, 2.0))

    def test_not_starting_at_one_raises(self):
        with pytest.raises(ConfigError):
            group_by_layer_ranges(model(), ((2, -1),), (1.0,))

    def test_incomplete_coverage_raises(self):
        with pytest.raises(ConfigError):
            group_by_layer_ranges(model(), ((1, 2),), (1.0,))

    def test_rate_length_mismatch_raises(self):
        with pytest.raises(ConfigError):
            group_by_layer_ranges(model(), ((1, -1),), (1.0, 2.0))

    def test_group_weight_counts(self):
        groups = group_by_layer_ranges(model(), ((1, -1),), (1.0,))
        assert groups[0].num_weights == sum(p.size for p in groups[0].params)

    def test_capacity(self):
        groups = group_by_layer_ranges(model(), ((1, -1),), (1.0,))
        assert groups[0].capacity(100) == groups[0].num_weights // 100


class TestAssignPayload:
    def test_zero_rate_groups_skipped(self):
        groups = group_by_layer_ranges(model(), ((1, 3), (4, -1)), (0.0, 5.0))
        payload = make_payload(10)
        assigned = assign_payload(groups, payload)
        assert groups[0].payload is None
        assert groups[1].payload is not None
        assert assigned == len(groups[1].payload)

    def test_respects_capacity(self):
        groups = group_by_layer_ranges(model(), ((1, -1),), (5.0,))
        big = make_payload(10_000, size=8)
        assigned = assign_payload(groups, big)
        assert assigned == groups[0].capacity(big.pixels_per_image)

    def test_sequential_fill(self):
        mlp = MLP([64, 64, 64], rng=np.random.default_rng(0))
        groups = group_by_layer_ranges(mlp, ((1, 1), (2, -1)), (1.0, 1.0))
        payload = make_payload(300, size=4)  # 16 px/image; each layer holds 256
        assign_payload(groups, payload)
        first = len(groups[0].payload)
        assert first == 64 * 64 // 16  # group 1 filled to capacity
        assert np.array_equal(groups[1].payload.images[0], payload.images[first])

    def test_small_payload_leaves_later_groups_empty(self):
        mlp = MLP([64, 64, 64], rng=np.random.default_rng(0))
        groups = group_by_layer_ranges(mlp, ((1, 1), (2, -1)), (1.0, 1.0))
        assign_payload(groups, make_payload(3, size=4))
        assert len(groups[0].payload) == 3
        assert groups[1].payload is None


class TestPenalty:
    def test_requires_active_group(self):
        groups = group_by_layer_ranges(model(), ((1, -1),), (0.0,))
        # rate 0 everywhere -> validation happens at AttackConfig level,
        # grouping allows it, but the penalty must refuse.
        with pytest.raises(CapacityError):
            LayerwiseCorrelationPenalty(groups)

    def test_penalty_is_negative(self):
        groups = group_by_layer_ranges(model(), ((1, 3), (4, -1)), (0.0, 5.0))
        assign_payload(groups, make_payload(5))
        penalty = LayerwiseCorrelationPenalty(groups)
        assert penalty().item() <= 0.0

    def test_zero_rate_groups_get_no_gradient(self):
        groups = group_by_layer_ranges(model(), ((1, 3), (4, -1)), (0.0, 5.0))
        assign_payload(groups, make_payload(5))
        penalty = LayerwiseCorrelationPenalty(groups)
        penalty().backward()
        assert all(p.grad is None for p in groups[0].params)
        assert any(p.grad is not None for p in groups[1].params)

    def test_p_k_weighting(self):
        # Two active groups: the penalty must be the P_k-weighted sum.
        mlp = MLP([32, 32, 32], rng=np.random.default_rng(1))
        groups = group_by_layer_ranges(mlp, ((1, 1), (2, -1)), (2.0, 2.0))
        assign_payload(groups, make_payload(100, size=4, seed=2))
        penalty = LayerwiseCorrelationPenalty(groups)
        from repro.attacks import CorrelationPenalty
        expected = 0.0
        total = sum(g.num_weights for g in groups)
        for group in groups:
            term = CorrelationPenalty(group.params, group.payload.secret_vector(), group.rate)
            expected += term().item() * group.num_weights / total
        assert np.isclose(penalty().item(), expected, atol=1e-9)

    def test_correlations_reported_per_group(self):
        mlp = MLP([32, 32, 32], rng=np.random.default_rng(1))
        groups = group_by_layer_ranges(mlp, ((1, 1), (2, -1)), (2.0, 2.0))
        assign_payload(groups, make_payload(100, size=4))
        penalty = LayerwiseCorrelationPenalty(groups)
        values = penalty.correlations()
        assert len(values) == 2
        assert all(-1.0 <= v <= 1.0 for v in values)
