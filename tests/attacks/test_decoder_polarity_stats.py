"""Polarity resolution: what is and is not recoverable.

Most single-image statistics are negation-invariant (TV(255-x) == TV(x)),
so polarity cannot be read off one decoded slice; these tests pin that
fact and verify the two working resolutions: the reference oracle and
training with ``sign_mode="positive"``.
"""

import numpy as np

from repro.attacks import CorrelationPenalty, decode_images
from repro.attacks.decoder import total_variation
from repro.attacks.secret import SecretPayload
from repro.datasets import SyntheticFacesConfig, make_synthetic_faces
from repro.metrics import batch_mape
from repro.nn.module import Parameter


class TestPolaritySymmetry:
    def test_total_variation_is_negation_invariant(self):
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, (12, 12, 1)).astype(float)
        assert np.isclose(total_variation(image), total_variation(255.0 - image))

    def test_reference_oracle_resolves_any_sign(self):
        faces = make_synthetic_faces(SyntheticFacesConfig(
            num_identities=4, images_per_identity=3, image_size=24, seed=11))
        payload = SecretPayload(faces.images, faces.labels)
        rng = np.random.default_rng(0)
        secret = payload.secret_vector()
        for sign in (+1.0, -1.0):
            weights = sign * secret / 255.0 + rng.normal(0, 0.05, secret.size)
            decoded = decode_images(weights, payload, polarity="reference")
            assert batch_mape(payload.images, decoded).mean() < 35.0

    def test_auto_never_beats_reference(self):
        """Reference polarity is the per-image oracle; auto can only tie."""
        faces = make_synthetic_faces(SyntheticFacesConfig(
            num_identities=4, images_per_identity=3, image_size=24, seed=12))
        payload = SecretPayload(faces.images, faces.labels)
        rng = np.random.default_rng(1)
        weights = payload.secret_vector() / 255.0 + rng.normal(
            0, 0.08, payload.total_pixels)
        auto_mape = batch_mape(payload.images,
                               decode_images(weights, payload, polarity="auto"))
        ref_mape = batch_mape(payload.images,
                              decode_images(weights, payload, polarity="reference"))
        assert np.all(ref_mape <= auto_mape + 1e-9)


class TestPositiveSignMode:
    def test_positive_mode_locks_positive_correlation(self):
        """sign_mode='positive' removes the ambiguity entirely: training
        always converges to corr > 0, so 'pos' decoding just works."""
        rng = np.random.default_rng(31)
        from repro.nn import SGD
        params = [Parameter(rng.standard_normal(256))]
        secret = rng.random(256) * 255
        penalty = CorrelationPenalty(params, secret, rate=1.0, sign_mode="positive")
        opt = SGD(params, lr=0.5, momentum=0.9)
        for _ in range(150):
            loss = penalty()
            params[0].grad = None
            loss.backward()
            opt.step()
        assert penalty.correlation_value() > 0.9  # positive, not just |.|>0.9

    def test_positive_mode_gradient_pushes_through_zero(self):
        """Even anti-correlated initialisation converges positive."""
        rng = np.random.default_rng(32)
        from repro.nn import SGD
        secret = rng.random(128) * 255
        start = -(secret - secret.mean()) / 255.0  # corr == -1 at init
        params = [Parameter(start)]
        penalty = CorrelationPenalty(params, secret, rate=1.0, sign_mode="positive")
        opt = SGD(params, lr=0.5, momentum=0.9)
        for _ in range(300):
            loss = penalty()
            params[0].grad = None
            loss.backward()
            opt.step()
        assert penalty.correlation_value() > 0.5

    def test_invalid_sign_mode(self):
        import pytest
        from repro.errors import CapacityError
        with pytest.raises(CapacityError):
            CorrelationPenalty([Parameter(np.ones(8))], np.ones(8), 1.0,
                               sign_mode="negative")

    def test_abs_mode_unchanged_by_default(self):
        rng = np.random.default_rng(33)
        params = [Parameter(rng.standard_normal(64))]
        secret = rng.random(64)
        default = CorrelationPenalty(params, secret, rate=2.0)
        explicit = CorrelationPenalty(params, secret, rate=2.0, sign_mode="abs")
        assert np.isclose(default().item(), explicit().item())
        assert default().item() <= 0.0
