"""Capacity arithmetic."""

import numpy as np
import pytest

from repro.attacks import estimate_image_capacity, group_capacities
from repro.attacks.capacity import model_image_capacity
from repro.attacks.layerwise import group_by_layer_ranges
from repro.errors import CapacityError
from repro.models.mlp import MLP


class TestEstimate:
    def test_basic(self):
        assert estimate_image_capacity(1000, 100) == 10

    def test_rounds_down(self):
        assert estimate_image_capacity(199, 100) == 1

    def test_zero_when_too_small(self):
        assert estimate_image_capacity(50, 100) == 0

    def test_invalid_pixels(self):
        with pytest.raises(CapacityError):
            estimate_image_capacity(100, 0)


class TestModelCapacity:
    def test_counts_encodable_weights_only(self):
        model = MLP([10, 10, 10], rng=np.random.default_rng(0))
        # 100 + 100 encodable weights; biases excluded.
        assert model_image_capacity(model, (5, 5, 1)) == 200 // 25


class TestGroupCapacities:
    def test_zero_rate_reports_zero(self):
        model = MLP([10, 10, 10], rng=np.random.default_rng(0))
        groups = group_by_layer_ranges(model, ((1, 1), (2, -1)), (0.0, 1.0))
        caps = group_capacities(groups, pixels_per_image=25)
        assert caps["group1"] == 0
        assert caps["group2"] == 4

    def test_all_active(self):
        model = MLP([10, 10, 10], rng=np.random.default_rng(0))
        groups = group_by_layer_ranges(model, ((1, 1), (2, -1)), (1.0, 1.0))
        caps = group_capacities(groups, pixels_per_image=25)
        assert caps == {"group1": 4, "group2": 4}
