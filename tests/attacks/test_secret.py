"""SecretPayload: vector layout, slicing, splitting."""

import numpy as np
import pytest

from repro.attacks import SecretPayload
from repro.datasets import ImageDataset
from repro.errors import CapacityError


def payload(n=4, size=4, channels=3, seed=0):
    rng = np.random.default_rng(seed)
    images = rng.integers(0, 256, size=(n, size, size, channels), dtype=np.uint8)
    return SecretPayload(images, np.arange(n))


class TestConstruction:
    def test_basic(self):
        p = payload()
        assert len(p) == 4
        assert p.image_shape == (4, 4, 3)
        assert p.pixels_per_image == 48
        assert p.total_pixels == 192

    def test_bad_shape(self):
        with pytest.raises(CapacityError):
            SecretPayload(np.zeros((3, 4, 4), dtype=np.uint8), np.zeros(3))

    def test_length_mismatch(self):
        with pytest.raises(CapacityError):
            SecretPayload(np.zeros((3, 4, 4, 1), dtype=np.uint8), np.zeros(2))

    def test_from_dataset(self):
        rng = np.random.default_rng(0)
        ds = ImageDataset(rng.integers(0, 256, (10, 4, 4, 1), dtype=np.uint8),
                          np.arange(10))
        p = SecretPayload.from_dataset(ds, [2, 5, 7])
        assert len(p) == 3
        assert p.labels.tolist() == [2, 5, 7]
        assert np.array_equal(p.images[1], ds.images[5])


class TestSecretVector:
    def test_layout_image_major(self):
        p = payload(n=2, size=2, channels=1)
        vec = p.secret_vector()
        assert vec.shape == (8,)
        assert np.allclose(vec[:4], p.images[0].reshape(-1))
        assert np.allclose(vec[4:], p.images[1].reshape(-1))

    def test_values_are_raw_pixels(self):
        p = payload()
        vec = p.secret_vector()
        assert vec.min() >= 0 and vec.max() <= 255

    def test_image_slices_partition_vector(self):
        p = payload(n=3)
        slices = p.image_slices()
        assert len(slices) == 3
        covered = sum(s.stop - s.start for s in slices)
        assert covered == p.total_pixels
        assert slices[0].start == 0
        assert slices[-1].stop == p.total_pixels


class TestTakeSplit:
    def test_take(self):
        p = payload(n=5)
        sub = p.take(2)
        assert len(sub) == 2
        assert np.array_equal(sub.images, p.images[:2])

    def test_take_too_many(self):
        with pytest.raises(CapacityError):
            payload(n=3).take(4)

    def test_split(self):
        p = payload(n=6)
        parts = p.split([2, 3])
        assert [len(part) for part in parts] == [2, 3]
        assert np.array_equal(parts[1].images, p.images[2:5])

    def test_split_overflow(self):
        with pytest.raises(CapacityError):
            payload(n=3).split([2, 2])
