"""LSB and sign encoding baseline attacks."""

import numpy as np
import pytest

from repro.attacks import (
    SignEncodingPenalty,
    lsb_capacity_bits,
    lsb_decode,
    lsb_encode,
    sign_decode_bits,
)
from repro.attacks.lsb import bits_to_bytes, bytes_to_bits
from repro.errors import CapacityError
from repro.nn.module import Parameter

RNG = np.random.default_rng(37)


class TestBitHelpers:
    def test_roundtrip(self):
        data = b"secret data!"
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bits_are_binary(self):
        bits = bytes_to_bits(b"\xff\x00")
        assert bits[:8].tolist() == [1] * 8
        assert bits[8:].tolist() == [0] * 8

    def test_non_byte_aligned_raises(self):
        with pytest.raises(CapacityError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))


class TestLSB:
    def test_capacity(self):
        params = [Parameter(RNG.standard_normal((4, 4)))]
        assert lsb_capacity_bits(params, 8) == 16 * 8

    def test_invalid_bits_per_weight(self):
        params = [Parameter(RNG.standard_normal(4))]
        with pytest.raises(CapacityError):
            lsb_capacity_bits(params, 0)
        with pytest.raises(CapacityError):
            lsb_capacity_bits(params, 24)

    def test_encode_decode_roundtrip(self):
        params = [Parameter(RNG.standard_normal((8, 8)))]
        secret = RNG.integers(0, 2, size=256).astype(np.uint8)
        embedded = lsb_encode(params, secret, bits_per_weight=8)
        assert embedded == 256
        decoded = lsb_decode(params, 256, bits_per_weight=8)
        assert np.array_equal(decoded, secret)

    def test_roundtrip_across_params(self):
        params = [Parameter(RNG.standard_normal(10)), Parameter(RNG.standard_normal(10))]
        secret = RNG.integers(0, 2, size=10 * 4 * 2).astype(np.uint8)
        lsb_encode(params, secret, bits_per_weight=4)
        assert np.array_equal(lsb_decode(params, secret.size, 4), secret)

    def test_low_bit_encoding_barely_changes_weights(self):
        params = [Parameter(RNG.standard_normal(100))]
        before = params[0].data.copy()
        secret = RNG.integers(0, 2, size=400).astype(np.uint8)
        lsb_encode(params, secret, bits_per_weight=4)
        assert np.abs(params[0].data - before).max() < 1e-4

    def test_decode_too_many_bits_raises(self):
        params = [Parameter(RNG.standard_normal(4))]
        with pytest.raises(CapacityError):
            lsb_decode(params, 1000, bits_per_weight=2)

    def test_quantization_destroys_lsb_payload(self):
        # The paper's point: any re-discretisation wipes the hidden bits.
        from repro.quantization import UniformQuantizer
        from repro.models.mlp import MLP
        model = MLP([16, 16], rng=np.random.default_rng(0))
        params = [model.fc0.weight]
        secret = RNG.integers(0, 2, size=16 * 16 * 8).astype(np.uint8)
        lsb_encode(params, secret, bits_per_weight=8)
        result = UniformQuantizer(levels=16).quantize_model(model, names=["fc0.weight"])
        from repro.quantization import apply_quantization
        apply_quantization(model, result)
        decoded = lsb_decode(params, secret.size, bits_per_weight=8)
        error_rate = (decoded != secret).mean()
        assert error_rate > 0.25  # payload effectively random


class TestSignEncoding:
    def test_bits_must_be_binary(self):
        with pytest.raises(CapacityError):
            SignEncodingPenalty([Parameter(np.ones(4))], np.array([0, 2, 1, 1]), 1.0)

    def test_penalty_zero_when_aligned(self):
        params = [Parameter(np.array([1.0, -1.0, 2.0]))]
        penalty = SignEncodingPenalty(params, np.array([1, 0, 1]), rate=1.0)
        assert penalty().item() == 0.0
        assert penalty.bit_accuracy() == 1.0

    def test_penalty_positive_when_misaligned(self):
        params = [Parameter(np.array([1.0, 1.0]))]
        penalty = SignEncodingPenalty(params, np.array([0, 0]), rate=1.0)
        assert penalty().item() > 0.0

    def test_training_aligns_signs(self):
        params = [Parameter(RNG.standard_normal(64))]
        bits = RNG.integers(0, 2, size=64).astype(np.uint8)
        penalty = SignEncodingPenalty(params, bits, rate=1.0)
        from repro.nn import SGD
        opt = SGD(params, lr=0.5, momentum=0.9)
        for _ in range(400):
            loss = penalty()
            params[0].grad = None
            loss.backward()
            opt.step()
        assert penalty.bit_accuracy() > 0.95
        decoded = sign_decode_bits(params, 64)
        assert (decoded == bits).mean() > 0.95

    def test_decode_too_many_raises(self):
        with pytest.raises(CapacityError):
            sign_decode_bits([Parameter(np.ones(4))], 10)

    def test_capacity_one_bit_per_param(self):
        params = [Parameter(RNG.standard_normal(50))]
        penalty = SignEncodingPenalty(params, np.ones(100, dtype=np.uint8), rate=1.0)
        assert penalty.length == 50
