"""Decoding: min-max remap, polarity handling, group decoding."""

import numpy as np
import pytest

from repro.attacks import SecretPayload, decode_images, decode_slice, total_variation
from repro.attacks.decoder import decode_groups
from repro.errors import CapacityError


def payload_from(images):
    return SecretPayload(images, np.zeros(len(images), dtype=np.int64))


class TestDecodeSlice:
    def test_perfect_positive_encoding(self):
        # Min-max decoding is exact only when the image spans [0, 255],
        # so pin those extremes (otherwise decode stretches the range).
        rng = np.random.default_rng(0)
        image = rng.integers(0, 256, size=(4, 4, 1), dtype=np.uint8)
        image.reshape(-1)[0], image.reshape(-1)[1] = 0, 255
        # Weights are an affine image of the pixels.
        weights = image.reshape(-1).astype(float) * 0.01 - 0.5
        decoded = decode_slice(weights, (4, 4, 1), polarity="pos")
        assert np.abs(decoded.astype(float) - image.astype(float)).max() <= 1

    def test_negative_polarity(self):
        rng = np.random.default_rng(1)
        image = rng.integers(0, 256, size=(4, 4, 1), dtype=np.uint8)
        image.reshape(-1)[0], image.reshape(-1)[1] = 0, 255
        weights = -image.reshape(-1).astype(float)
        decoded = decode_slice(weights, (4, 4, 1), polarity="neg")
        assert np.abs(decoded.astype(float) - image.astype(float)).max() <= 1

    def test_reference_polarity_picks_better(self):
        rng = np.random.default_rng(2)
        image = rng.integers(0, 256, size=(4, 4, 1), dtype=np.uint8)
        weights = -image.reshape(-1).astype(float)  # inverted encoding
        decoded = decode_slice(weights, (4, 4, 1), polarity="reference", reference=image)
        assert np.abs(decoded.astype(float) - image.astype(float)).mean() < 3

    def test_reference_needs_reference(self):
        with pytest.raises(CapacityError):
            decode_slice(np.zeros(16), (4, 4, 1), polarity="reference")

    def test_unknown_polarity(self):
        with pytest.raises(CapacityError):
            decode_slice(np.zeros(16), (4, 4, 1), polarity="banana")

    def test_wrong_size(self):
        with pytest.raises(CapacityError):
            decode_slice(np.zeros(10), (4, 4, 1))

    def test_constant_slice_decodes_to_gray(self):
        decoded = decode_slice(np.ones(16), (4, 4, 1), polarity="pos")
        assert np.all(decoded == 128)

    def test_output_dtype_and_range(self):
        decoded = decode_slice(np.random.default_rng(0).standard_normal(48), (4, 4, 3),
                               polarity="pos")
        assert decoded.dtype == np.uint8

    def test_auto_polarity_on_smooth_image(self):
        # A smooth gradient image encoded positively: auto must not invert it.
        ys, xs = np.mgrid[0:8, 0:8]
        image = ((xs + ys) * 255 / 14).astype(np.uint8)[..., None]
        weights = image.reshape(-1).astype(float) + np.random.default_rng(0).normal(0, 5, 64)
        decoded = decode_slice(weights, (8, 8, 1), polarity="auto")
        err_direct = np.abs(decoded.astype(float) - image.astype(float)).mean()
        err_inverted = np.abs((255 - decoded.astype(float)) - image.astype(float)).mean()
        assert err_direct < err_inverted


class TestTotalVariation:
    def test_constant_image_zero(self):
        assert total_variation(np.full((5, 5), 9.0)) == 0.0

    def test_noise_rougher_than_gradient(self):
        rng = np.random.default_rng(0)
        noise = rng.integers(0, 256, size=(8, 8)).astype(float)
        gradient = np.tile(np.linspace(0, 255, 8), (8, 1))
        assert total_variation(noise) > total_variation(gradient)

    def test_handles_channel_axis(self):
        assert total_variation(np.zeros((4, 4, 3))) == 0.0


class TestDecodeImages:
    def test_roundtrip_multiple_images(self):
        rng = np.random.default_rng(3)
        images = rng.integers(0, 256, size=(3, 4, 4, 1), dtype=np.uint8)
        images[:, 0, 0, 0], images[:, 0, 1, 0] = 0, 255  # span full range
        p = payload_from(images)
        weights = p.secret_vector() * 0.004 - 0.5  # affine encode
        decoded = decode_images(weights, p, polarity="pos")
        assert decoded.shape == images.shape
        assert np.abs(decoded.astype(float) - images.astype(float)).max() <= 1

    def test_too_short_weight_vector(self):
        p = payload_from(np.zeros((2, 4, 4, 1), dtype=np.uint8))
        with pytest.raises(CapacityError):
            decode_images(np.zeros(10), p)

    def test_extra_weights_ignored(self):
        rng = np.random.default_rng(4)
        images = rng.integers(0, 256, size=(1, 4, 4, 1), dtype=np.uint8)
        images[0, 0, 0, 0], images[0, 0, 1, 0] = 0, 255
        p = payload_from(images)
        weights = np.concatenate([p.secret_vector(), rng.standard_normal(100)])
        decoded = decode_images(weights, p, polarity="pos")
        assert np.abs(decoded.astype(float) - images.astype(float)).max() <= 1


class TestDecodeGroups:
    def test_no_payload_raises(self):
        from repro.attacks import group_by_layer_ranges
        from repro.models.mlp import MLP
        groups = group_by_layer_ranges(MLP([8, 8], rng=np.random.default_rng(0)),
                                       ((1, -1),), (1.0,))
        with pytest.raises(CapacityError):
            decode_groups(groups)

    def test_decodes_from_group_weights(self):
        from repro.attacks import group_by_layer_ranges
        from repro.attacks.layerwise import assign_payload
        from repro.models.mlp import MLP
        rng = np.random.default_rng(5)
        mlp = MLP([16, 16], rng=rng)
        groups = group_by_layer_ranges(mlp, ((1, -1),), (1.0,))
        images = rng.integers(0, 256, size=(4, 4, 4, 1), dtype=np.uint8)
        images[:, 0, 0, 0], images[:, 0, 1, 0] = 0, 255  # span full range
        assign_payload(groups, payload_from(images))
        # Force the weights to encode the payload perfectly.
        count = groups[0].payload.total_pixels
        flat = groups[0].weight_vector()
        flat[:count] = groups[0].payload.secret_vector() / 255.0
        from repro.models import set_parameter_vector
        set_parameter_vector(mlp, flat, groups[0].param_names)
        recon, orig, names = decode_groups(groups, polarity="pos")
        assert recon.shape == orig.shape
        assert np.abs(recon.astype(float) - orig.astype(float)).max() <= 2
        assert len(names) == len(recon)
