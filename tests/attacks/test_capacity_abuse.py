"""Capacity-abuse (black-box) attack."""

import numpy as np
import pytest

from repro.attacks import (
    bits_per_query,
    build_query_set,
    extract_bits,
    poison_training_set,
)
from repro.attacks.capacity_abuse import (
    decode_labels_as_bits,
    encode_bits_as_labels,
    generate_queries,
)
from repro.errors import CapacityError

RNG = np.random.default_rng(89)


class TestBitPacking:
    def test_bits_per_query(self):
        assert bits_per_query(2) == 1
        assert bits_per_query(6) == 2
        assert bits_per_query(8) == 3
        assert bits_per_query(10) == 3

    def test_too_few_classes(self):
        with pytest.raises(CapacityError):
            bits_per_query(1)

    def test_roundtrip(self):
        bits = RNG.integers(0, 2, 60).astype(np.uint8)
        labels = encode_bits_as_labels(bits, num_classes=8)
        decoded = decode_labels_as_bits(labels, num_classes=8, num_bits=60)
        assert np.array_equal(decoded, bits)

    def test_roundtrip_with_padding(self):
        bits = RNG.integers(0, 2, 7).astype(np.uint8)  # not divisible by 2
        labels = encode_bits_as_labels(bits, num_classes=4)
        decoded = decode_labels_as_bits(labels, num_classes=4, num_bits=7)
        assert np.array_equal(decoded, bits)

    def test_labels_within_class_range(self):
        bits = RNG.integers(0, 2, 100).astype(np.uint8)
        labels = encode_bits_as_labels(bits, num_classes=6)
        assert labels.max() < 4  # 2 bits -> labels 0..3

    def test_decode_too_many_bits_raises(self):
        labels = np.zeros(2, dtype=np.int64)
        with pytest.raises(CapacityError):
            decode_labels_as_bits(labels, num_classes=4, num_bits=100)


class TestQueries:
    def test_deterministic(self):
        a = generate_queries(5, (3, 8, 8), seed=1)
        b = generate_queries(5, (3, 8, 8), seed=1)
        assert np.array_equal(a, b)

    def test_seed_matters(self):
        a = generate_queries(5, (3, 8, 8), seed=1)
        b = generate_queries(5, (3, 8, 8), seed=2)
        assert not np.array_equal(a, b)

    def test_build_query_set(self):
        bits = RNG.integers(0, 2, 30).astype(np.uint8)
        queries = build_query_set(bits, (1, 8, 8), num_classes=4, seed=0)
        assert queries.num_bits == 30
        assert len(queries) == 15  # 2 bits per query
        assert queries.inputs.shape == (15, 1, 8, 8)

    def test_poison_appends_with_repeats(self):
        bits = RNG.integers(0, 2, 8).astype(np.uint8)
        queries = build_query_set(bits, (1, 4, 4), num_classes=4, seed=0)
        inputs = RNG.random((10, 1, 4, 4))
        labels = RNG.integers(0, 4, 10)
        px, py = poison_training_set(inputs, labels, queries, repeats=3)
        assert len(px) == 10 + 3 * len(queries)
        assert len(py) == len(px)

    def test_poison_shape_mismatch(self):
        bits = np.zeros(4, dtype=np.uint8)
        queries = build_query_set(bits, (1, 4, 4), num_classes=4, seed=0)
        with pytest.raises(CapacityError):
            poison_training_set(RNG.random((5, 3, 4, 4)), np.zeros(5), queries)


class TestEndToEnd:
    def test_black_box_extraction(self):
        """Train on a poisoned set; extract the secret by queries only."""
        from repro.models.mlp import MLP
        from repro.pipeline import Trainer, TrainingConfig

        num_classes, image_shape = 4, (1, 6, 6)
        secret = RNG.integers(0, 2, 40).astype(np.uint8)
        queries = build_query_set(secret, image_shape, num_classes, seed=11)

        # A small benign task ...
        rng = np.random.default_rng(0)
        centers = rng.standard_normal((num_classes, *image_shape)) * 2
        labels = np.arange(80) % num_classes
        inputs = centers[labels] + 0.3 * rng.standard_normal((80, *image_shape))
        # ... poisoned with the query set.
        px, py = poison_training_set(inputs, labels, queries, repeats=4)

        model = MLP([36, 64, num_classes], rng=np.random.default_rng(1))
        Trainer(model, px.reshape(len(px), -1), py,
                TrainingConfig(epochs=30, batch_size=32, lr=0.1)).train()

        class FlattenWrapper:
            """Adapter so extract_bits can feed NCHW queries to the MLP."""
            def __init__(self, mlp):
                self.mlp = mlp
                self.training = False
            def eval(self):
                return self.mlp.eval()
            def train(self):
                return self.mlp.train()
            def __call__(self, x):
                return self.mlp(x)

        decoded = extract_bits(FlattenWrapper(model), len(secret),
                               image_shape, num_classes, seed=11)
        error = (decoded != secret).mean()
        assert error < 0.1

    def test_wrong_seed_extracts_noise(self):
        from repro.models.mlp import MLP
        model = MLP([36, 16, 4], rng=np.random.default_rng(2))
        bits = extract_bits(model, 64, (1, 6, 6), 4, seed=99)
        assert bits.shape == (64,)
        assert set(np.unique(bits)).issubset({0, 1})
