"""Cluster-shared fine-tuning and bit-width accounting."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.errors import QuantizationError
from repro.models.mlp import MLP
from repro.nn import DataLoader
from repro.quantization import (
    UniformQuantizer,
    apply_quantization,
    bits_for_levels,
    finetune_quantized,
    levels_for_bits,
    quantized_model_bytes,
)
from repro.quantization.bitwidth import compression_ratio

RNG = np.random.default_rng(43)


def toy_problem(n=120, features=8, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((classes, features)) * 3
    labels = np.arange(n) % classes
    inputs = centers[labels] + rng.standard_normal((n, features)) * 0.5
    return inputs, labels


class TestBitwidth:
    def test_levels_for_bits(self):
        assert levels_for_bits(4) == 16
        assert levels_for_bits(1) == 2

    def test_bits_for_levels(self):
        assert bits_for_levels(16) == 4
        assert bits_for_levels(17) == 5
        assert bits_for_levels(1) == 1

    def test_invalid(self):
        with pytest.raises(QuantizationError):
            levels_for_bits(0)
        with pytest.raises(QuantizationError):
            bits_for_levels(0)

    def test_model_bytes_smaller_after_quantization(self):
        model = MLP([64, 64, 8], rng=np.random.default_rng(0))
        result = UniformQuantizer(levels=16).quantize_model(model)
        full = sum(p.size for p in model.parameters()) * 4
        quantized = quantized_model_bytes(model, result)
        assert quantized < full

    def test_compression_ratio_increases_at_lower_bits(self):
        model = MLP([64, 64, 8], rng=np.random.default_rng(0))
        r8 = compression_ratio(model, UniformQuantizer(levels=256).quantize_model(model))
        r4 = compression_ratio(model, UniformQuantizer(levels=16).quantize_model(model))
        assert r4 > r8 > 1.0


class TestFinetune:
    def _accuracy(self, model, inputs, labels):
        with no_grad():
            return float((model(Tensor(inputs)).data.argmax(1) == labels).mean())

    def test_accuracy_recovers(self):
        inputs, labels = toy_problem()
        model = MLP([8, 32, 3], rng=np.random.default_rng(1))
        # Train full precision first.
        from repro.nn import SGD, CrossEntropyLoss
        opt = SGD(model.parameters(), lr=0.1, momentum=0.9)
        loss_fn = CrossEntropyLoss()
        loader = DataLoader(inputs, labels, batch_size=30, seed=0)
        for _ in range(20):
            for xb, yb in loader:
                loss = loss_fn(model(Tensor(xb)), yb)
                model.zero_grad(); loss.backward(); opt.step()
        full_acc = self._accuracy(model, inputs, labels)

        result = UniformQuantizer(levels=4).quantize_model(model)
        apply_quantization(model, result)
        quant_acc = self._accuracy(model, inputs, labels)

        finetune_quantized(model, result, loader, epochs=10, lr=0.02)
        tuned_acc = self._accuracy(model, inputs, labels)
        assert tuned_acc >= quant_acc
        assert full_acc > 0.9  # sanity: the task is learnable

    def test_weights_stay_in_codebook(self):
        inputs, labels = toy_problem()
        model = MLP([8, 16, 3], rng=np.random.default_rng(2))
        result = UniformQuantizer(levels=8).quantize_model(model)
        loader = DataLoader(inputs, labels, batch_size=40, seed=0)
        finetune_quantized(model, result, loader, epochs=2, lr=0.01)
        for name in result.assignments:
            values = np.unique(dict(model.named_parameters())[name].data)
            assert len(values) <= 8

    def test_assignments_never_change(self):
        inputs, labels = toy_problem()
        model = MLP([8, 16, 3], rng=np.random.default_rng(3))
        result = UniformQuantizer(levels=8).quantize_model(model)
        before = {k: v.copy() for k, v in result.assignments.items()}
        loader = DataLoader(inputs, labels, batch_size=40, seed=0)
        finetune_quantized(model, result, loader, epochs=2, lr=0.01)
        for key in before:
            assert np.array_equal(before[key], result.assignments[key])

    def test_codebook_moves(self):
        inputs, labels = toy_problem()
        model = MLP([8, 16, 3], rng=np.random.default_rng(4))
        result = UniformQuantizer(levels=8).quantize_model(model)
        before = result.codebooks["fc0.weight"].copy()
        loader = DataLoader(inputs, labels, batch_size=40, seed=0)
        finetune_quantized(model, result, loader, epochs=1, lr=0.05)
        assert not np.allclose(before, result.codebooks["fc0.weight"])

    def test_biases_trained(self):
        inputs, labels = toy_problem()
        model = MLP([8, 16, 3], rng=np.random.default_rng(5))
        before = model.fc0.bias.data.copy()
        result = UniformQuantizer(levels=8).quantize_model(model)
        loader = DataLoader(inputs, labels, batch_size=40, seed=0)
        finetune_quantized(model, result, loader, epochs=1, lr=0.05)
        assert not np.allclose(before, model.fc0.bias.data)

    def test_progress_callback(self):
        inputs, labels = toy_problem()
        model = MLP([8, 16, 3], rng=np.random.default_rng(6))
        result = UniformQuantizer(levels=8).quantize_model(model)
        loader = DataLoader(inputs, labels, batch_size=40, seed=0)
        seen = []
        finetune_quantized(model, result, loader, epochs=3, lr=0.01,
                           progress=lambda e, l: seen.append((e, l)))
        assert [e for e, _ in seen] == [0, 1, 2]
