"""Layer sensitivity analysis and group suggestion."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quantization.sensitivity import (
    LayerSensitivity,
    perturbation_sensitivity,
    quantization_sensitivity,
    suggest_groups,
)


@pytest.fixture(scope="module")
def trained_setup():
    """A small trained CNN + its training data for sensitivity probing."""
    from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar
    from repro.datasets.transforms import images_to_batch, normalize_batch
    from repro.models import resnet8_tiny
    from repro.pipeline import Trainer, TrainingConfig

    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=120, num_classes=4, image_size=16, seed=9)
    )
    batch = images_to_batch(data.images)
    batch, _, _ = normalize_batch(batch)
    model = resnet8_tiny(num_classes=4, width=8, rng=np.random.default_rng(0))
    Trainer(model, batch, data.labels,
            TrainingConfig(epochs=8, batch_size=32, lr=0.08)).train()
    return model, batch, data.labels


class TestQuantizationSensitivity:
    def test_one_entry_per_layer(self, trained_setup):
        model, inputs, labels = trained_setup
        results = quantization_sensitivity(model, inputs, labels, bits=2)
        from repro.models import encodable_parameters
        assert len(results) == len(encodable_parameters(model))

    def test_model_restored_after_analysis(self, trained_setup):
        model, inputs, labels = trained_setup
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        quantization_sensitivity(model, inputs, labels, bits=2)
        for name, param in model.named_parameters():
            assert np.array_equal(param.data, before[name]), name

    def test_drops_nonnegative_mostly(self, trained_setup):
        model, inputs, labels = trained_setup
        results = quantization_sensitivity(model, inputs, labels, bits=1)
        # 1-bit quantization of some layer must hurt somewhere.
        assert max(s.accuracy_drop for s in results) > 0.0

    def test_bad_selection_raises(self, trained_setup):
        model, inputs, labels = trained_setup
        with pytest.raises(QuantizationError):
            quantization_sensitivity(model, inputs, labels, names=["nope"])


class TestPerturbationSensitivity:
    def test_runs_and_restores(self, trained_setup):
        model, inputs, labels = trained_setup
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        results = perturbation_sensitivity(model, inputs, labels,
                                           noise_fraction=1.0, trials=2)
        assert len(results) > 0
        for name, param in model.named_parameters():
            assert np.array_equal(param.data, before[name])

    def test_heavy_noise_hurts_somewhere(self, trained_setup):
        model, inputs, labels = trained_setup
        results = perturbation_sensitivity(model, inputs, labels,
                                           noise_fraction=3.0, trials=2)
        assert max(s.accuracy_drop for s in results) > 0.0


class TestSuggestGroups:
    def make(self, drops):
        return [LayerSensitivity(f"layer{i}", 1.0, 1.0 - d)
                for i, d in enumerate(drops)]

    def test_covers_all_layers_contiguously(self):
        ranges = suggest_groups(self.make([0.5, 0.3, 0.1, 0.05, 0.05]), 3)
        assert ranges[0][0] == 1
        assert ranges[-1][1] == 5
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert start == end + 1

    def test_sensitive_prefix_gets_small_group(self):
        # One hugely sensitive first layer -> it should sit alone.
        ranges = suggest_groups(self.make([0.9, 0.01, 0.01, 0.01, 0.01, 0.01]), 3)
        assert ranges[0] == (1, 1)

    def test_uniform_sensitivity_splits_evenly(self):
        ranges = suggest_groups(self.make([0.1] * 6), 3)
        sizes = [end - start + 1 for start, end in ranges]
        assert sizes == [2, 2, 2]

    def test_zero_sensitivity_splits_evenly(self):
        ranges = suggest_groups(self.make([0.0] * 6), 2)
        assert ranges == [(1, 3), (4, 6)]

    def test_more_groups_than_layers(self):
        ranges = suggest_groups(self.make([0.1, 0.2]), 5)
        assert ranges == [(1, 1), (2, 2)]

    def test_single_group(self):
        ranges = suggest_groups(self.make([0.1, 0.2, 0.3]), 1)
        assert ranges == [(1, 3)]

    def test_invalid_group_count(self):
        with pytest.raises(QuantizationError):
            suggest_groups(self.make([0.1]), 0)

    def test_every_group_nonempty(self):
        for drops in ([0.9, 0, 0, 0], [0, 0, 0, 0.9], [0.5, 0.5, 0, 0]):
            ranges = suggest_groups(self.make(drops), 3)
            assert all(end >= start for start, end in ranges)
            assert ranges[-1][1] == len(drops)
