"""Magnitude pruning: masks, sparsity accounting, masked fine-tuning."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.models.mlp import MLP
from repro.nn import DataLoader
from repro.quantization import (
    MagnitudePruner,
    apply_pruning,
    finetune_pruned,
    pruned_model_bytes,
)

RNG = np.random.default_rng(59)


def model(seed=0):
    return MLP([8, 32, 3], rng=np.random.default_rng(seed))


class TestPruner:
    def test_invalid_sparsity(self):
        with pytest.raises(QuantizationError):
            MagnitudePruner(1.0)
        with pytest.raises(QuantizationError):
            MagnitudePruner(-0.1)

    def test_invalid_scope(self):
        with pytest.raises(QuantizationError):
            MagnitudePruner(0.5, scope="weird")

    def test_global_sparsity_achieved(self):
        m = model()
        result = MagnitudePruner(0.5, scope="global").prune_model(m)
        assert abs(result.total_kept_fraction() - 0.5) < 0.02

    def test_per_layer_sparsity_achieved(self):
        m = model()
        result = MagnitudePruner(0.75, scope="per_layer").prune_model(m)
        for name in result.masks:
            assert abs(result.kept_fraction(name) - 0.25) < 0.05

    def test_zero_sparsity_keeps_all(self):
        m = model()
        result = MagnitudePruner(0.0).prune_model(m)
        assert result.total_kept_fraction() == 1.0

    def test_smallest_magnitudes_removed(self):
        m = model()
        result = MagnitudePruner(0.5, scope="per_layer").prune_model(m)
        for name, mask in result.masks.items():
            weights = dict(m.named_parameters())[name].data
            kept = np.abs(weights[mask])
            removed = np.abs(weights[~mask])
            if kept.size and removed.size:
                assert kept.min() >= removed.max() - 1e-12

    def test_empty_selection_raises(self):
        with pytest.raises(QuantizationError):
            MagnitudePruner(0.5).prune_model(model(), names=["nope"])


class TestApply:
    def test_pruned_positions_zero(self):
        m = model()
        result = MagnitudePruner(0.6).prune_model(m)
        apply_pruning(m, result)
        for name, mask in result.masks.items():
            weights = dict(m.named_parameters())[name].data
            assert np.all(weights[~mask] == 0.0)

    def test_kept_positions_unchanged(self):
        m = model()
        before = {n: p.data.copy() for n, p in m.named_parameters()}
        result = MagnitudePruner(0.6).prune_model(m)
        apply_pruning(m, result)
        for name, mask in result.masks.items():
            assert np.allclose(dict(m.named_parameters())[name].data[mask],
                               before[name][mask])

    def test_unknown_name_raises(self):
        from repro.quantization.pruning import PruningResult
        result = PruningResult(sparsity=0.5, masks={"ghost": np.ones((2, 2), dtype=bool)})
        with pytest.raises(QuantizationError):
            apply_pruning(model(), result)


class TestFinetune:
    def _problem(self, n=120, seed=0):
        rng = np.random.default_rng(seed)
        centers = rng.standard_normal((3, 8)) * 3
        labels = np.arange(n) % 3
        return centers[labels] + rng.standard_normal((n, 8)) * 0.4, labels

    def test_pruned_positions_stay_zero(self):
        inputs, labels = self._problem()
        m = model(1)
        result = MagnitudePruner(0.5).prune_model(m)
        loader = DataLoader(inputs, labels, batch_size=40, seed=0)
        finetune_pruned(m, result, loader, epochs=3, lr=0.05)
        for name, mask in result.masks.items():
            weights = dict(m.named_parameters())[name].data
            assert np.all(weights[~mask] == 0.0)

    def test_accuracy_recovers(self):
        from repro.autograd import Tensor, no_grad
        from repro.nn import SGD, CrossEntropyLoss
        inputs, labels = self._problem()
        m = model(2)
        opt = SGD(m.parameters(), lr=0.1, momentum=0.9)
        loss_fn = CrossEntropyLoss()
        loader = DataLoader(inputs, labels, batch_size=40, seed=0)
        for _ in range(15):
            for xb, yb in loader:
                loss = loss_fn(m(Tensor(xb)), yb)
                m.zero_grad(); loss.backward(); opt.step()

        def accuracy():
            with no_grad():
                return float((m(Tensor(inputs)).data.argmax(1) == labels).mean())

        result = MagnitudePruner(0.7).prune_model(m)
        apply_pruning(m, result)
        pruned_acc = accuracy()
        finetune_pruned(m, result, loader, epochs=10, lr=0.02)
        assert accuracy() >= pruned_acc


class TestSize:
    def test_sparse_storage_smaller_at_high_sparsity(self):
        m = MLP([64, 64, 8], rng=np.random.default_rng(0))
        dense = sum(p.size for p in m.parameters()) * 4
        result = MagnitudePruner(0.9).prune_model(m)
        assert pruned_model_bytes(m, result) < dense

    def test_low_sparsity_not_smaller(self):
        # At 10% sparsity the 16-bit indices outweigh the savings.
        m = MLP([64, 64, 8], rng=np.random.default_rng(0))
        dense = sum(p.size for p in m.parameters()) * 4
        result = MagnitudePruner(0.1).prune_model(m)
        assert pruned_model_bytes(m, result) > dense * 0.9
