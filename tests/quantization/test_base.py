"""Quantizer base: result representation, model application, scopes."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.models.mlp import MLP
from repro.quantization import UniformQuantizer, apply_quantization
from repro.quantization.base import QuantizationResult, Quantizer, assign_to_boundaries


class TestQuantizationResult:
    def test_dequantized(self):
        result = QuantizationResult(levels=4)
        result.codebooks["w"] = np.array([0.0, 1.0])
        result.assignments["w"] = np.array([[0, 1], [1, 0]])
        assert np.allclose(result.dequantized("w"), [[0.0, 1.0], [1.0, 0.0]])

    def test_bits(self):
        assert QuantizationResult(levels=16).bits == 4
        assert QuantizationResult(levels=8).bits == 3

    def test_unique_values_bounded_by_levels(self):
        model = MLP([8, 8], rng=np.random.default_rng(0))
        result = UniformQuantizer(levels=4).quantize_model(model)
        assert len(result.unique_values("fc0.weight")) <= 4

    def test_validate_missing_codebook(self):
        result = QuantizationResult(levels=4)
        result.assignments["w"] = np.zeros(3, dtype=np.int64)
        with pytest.raises(QuantizationError):
            result.validate()

    def test_validate_out_of_range_assignment(self):
        result = QuantizationResult(levels=4)
        result.codebooks["w"] = np.array([0.0, 1.0])
        result.assignments["w"] = np.array([0, 5])
        with pytest.raises(QuantizationError):
            result.validate()

    def test_validate_oversized_codebook(self):
        result = QuantizationResult(levels=2)
        result.codebooks["w"] = np.zeros(5)
        result.assignments["w"] = np.zeros(3, dtype=np.int64)
        with pytest.raises(QuantizationError):
            result.validate()


class TestQuantizerInterface:
    def test_invalid_levels(self):
        with pytest.raises(QuantizationError):
            UniformQuantizer(levels=1)

    def test_invalid_scope(self):
        with pytest.raises(QuantizationError):
            UniformQuantizer(levels=4, scope="weird")

    def test_abstract_quantize_vector(self):
        with pytest.raises(NotImplementedError):
            Quantizer(levels=4).quantize_vector(np.zeros(8))

    def test_global_scope_shares_codebook(self):
        model = MLP([8, 8, 8], rng=np.random.default_rng(0))
        result = UniformQuantizer(levels=4, scope="global").quantize_model(model)
        assert result.codebooks["fc0.weight"] is result.codebooks["fc1.weight"]

    def test_per_layer_scope_separate_codebooks(self):
        model = MLP([8, 8, 8], rng=np.random.default_rng(0))
        result = UniformQuantizer(levels=4, scope="per_layer").quantize_model(model)
        assert result.codebooks["fc0.weight"] is not result.codebooks["fc1.weight"]

    def test_names_subset(self):
        model = MLP([8, 8, 8], rng=np.random.default_rng(0))
        result = UniformQuantizer(levels=4).quantize_model(model, names=["fc1.weight"])
        assert set(result.assignments) == {"fc1.weight"}

    def test_empty_selection_raises(self):
        model = MLP([8, 8], rng=np.random.default_rng(0))
        with pytest.raises(QuantizationError):
            UniformQuantizer(levels=4).quantize_model(model, names=["nope"])

    def test_assignment_shapes_match_params(self):
        model = MLP([8, 4], rng=np.random.default_rng(0))
        result = UniformQuantizer(levels=4).quantize_model(model)
        assert result.assignments["fc0.weight"].shape == (4, 8)


class TestApply:
    def test_apply_overwrites_weights(self):
        model = MLP([8, 8], rng=np.random.default_rng(0))
        result = UniformQuantizer(levels=4).quantize_model(model)
        apply_quantization(model, result)
        assert len(np.unique(model.fc0.weight.data)) <= 4

    def test_apply_unknown_name_raises(self):
        model = MLP([8, 8], rng=np.random.default_rng(0))
        result = QuantizationResult(levels=2)
        result.codebooks["ghost"] = np.zeros(2)
        result.assignments["ghost"] = np.zeros((2, 2), dtype=np.int64)
        with pytest.raises(QuantizationError):
            apply_quantization(model, result)

    def test_biases_untouched(self):
        model = MLP([8, 8], rng=np.random.default_rng(0))
        model.fc0.bias.data = np.arange(8.0)
        result = UniformQuantizer(levels=4).quantize_model(model)
        apply_quantization(model, result)
        assert np.allclose(model.fc0.bias.data, np.arange(8.0))


class TestAssignToBoundaries:
    def test_interval_semantics(self):
        boundaries = np.array([-np.inf, 0.0, 1.0, np.inf])
        weights = np.array([-5.0, -0.001, 0.0, 0.5, 1.0, 9.0])
        assignment = assign_to_boundaries(weights, boundaries)
        assert assignment.tolist() == [0, 0, 1, 1, 2, 2]

    def test_all_below_first_boundary_clamp(self):
        boundaries = np.array([-np.inf, 5.0, np.inf])
        assert assign_to_boundaries(np.array([-10.0]), boundaries).tolist() == [0]
