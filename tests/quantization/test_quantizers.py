"""Uniform, k-means, weighted-entropy and target-correlated quantizers."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.quantization import (
    KMeansQuantizer,
    TargetCorrelatedQuantizer,
    UniformQuantizer,
    WeightedEntropyQuantizer,
)
from repro.quantization.target_correlated import pixel_histogram
from repro.quantization.weighted_entropy import weight_importance, weighted_entropy

RNG = np.random.default_rng(41)


def reconstruction(quantizer, weights):
    codebook, assignment = quantizer.quantize_vector(weights)
    return codebook[assignment]


class TestUniform:
    def test_representatives_evenly_spaced(self):
        weights = RNG.standard_normal(1000)
        codebook, _ = UniformQuantizer(levels=8).quantize_vector(weights)
        gaps = np.diff(codebook)
        assert np.allclose(gaps, gaps[0])

    def test_nearest_assignment(self):
        weights = np.array([0.0, 0.24, 0.26, 1.0])
        codebook, assignment = UniformQuantizer(levels=3).quantize_vector(weights)
        # codebook = [0, 0.5, 1]; 0.24 -> 0, 0.26 -> 0.5
        assert assignment.tolist() == [0, 0, 1, 2]

    def test_constant_vector(self):
        codebook, assignment = UniformQuantizer(levels=4).quantize_vector(np.full(10, 3.0))
        assert codebook.tolist() == [3.0]
        assert np.all(assignment == 0)

    def test_error_bounded_by_half_step(self):
        weights = RNG.standard_normal(500)
        recon = reconstruction(UniformQuantizer(levels=16), weights)
        step = (weights.max() - weights.min()) / 15
        assert np.abs(recon - weights).max() <= step / 2 + 1e-12


class TestKMeans:
    def test_lower_mse_than_uniform(self):
        # Gaussian weights: k-means adapts to density and must beat uniform.
        weights = RNG.standard_normal(5000)
        mse_uniform = np.mean((reconstruction(UniformQuantizer(levels=8), weights) - weights) ** 2)
        mse_kmeans = np.mean((reconstruction(KMeansQuantizer(levels=8), weights) - weights) ** 2)
        assert mse_kmeans < mse_uniform

    def test_centroids_are_cluster_means(self):
        weights = np.concatenate([np.full(50, -1.0), np.full(50, 1.0)])
        codebook, assignment = KMeansQuantizer(levels=2).quantize_vector(weights)
        recon = codebook[assignment]
        assert np.allclose(recon, weights)

    def test_constant_vector(self):
        codebook, _ = KMeansQuantizer(levels=4).quantize_vector(np.zeros(10))
        assert codebook.tolist() == [0.0]


class TestWeightedEntropy:
    def test_importance_is_squared_weight(self):
        weights = np.array([-2.0, 3.0])
        assert np.allclose(weight_importance(weights), [4.0, 9.0])

    def test_weighted_entropy_max_at_uniform(self):
        uniform = weighted_entropy(np.ones(8))
        skewed = weighted_entropy(np.array([100.0, 1, 1, 1, 1, 1, 1, 1]))
        assert uniform > skewed

    def test_clusters_have_roughly_equal_importance(self):
        weights = RNG.standard_normal(20_000)
        quantizer = WeightedEntropyQuantizer(levels=8)
        codebook, assignment = quantizer.quantize_vector(weights)
        masses = np.array([
            weight_importance(weights[assignment == k]).sum() for k in range(8)
        ])
        total = masses.sum()
        # Entropy-maximising partition: every cluster within 2x of the mean mass.
        assert masses.max() < 2.0 * total / 8
        assert masses.min() > 0.3 * total / 8

    def test_representative_inside_cluster_range(self):
        weights = RNG.standard_normal(2000)
        codebook, assignment = WeightedEntropyQuantizer(levels=4).quantize_vector(weights)
        for k in range(4):
            members = weights[assignment == k]
            if len(members):
                assert members.min() - 1e-9 <= codebook[k] <= members.max() + 1e-9

    def test_all_zero_weights(self):
        codebook, assignment = WeightedEntropyQuantizer(levels=4).quantize_vector(np.zeros(10))
        assert codebook.tolist() == [0.0]

    def test_reshapes_bimodal_distribution(self):
        # WEQ puts boundaries by importance mass, so near-zero weights are
        # lumped together -- exactly why it destroys pixel-correlated weights.
        weights = np.concatenate([RNG.normal(0, 0.01, 5000), RNG.normal(1.0, 0.1, 100)])
        codebook, assignment = WeightedEntropyQuantizer(levels=4).quantize_vector(weights)
        # The large-magnitude mode grabs most clusters despite being 2% of mass.
        large_clusters = (codebook > 0.5).sum()
        assert large_clusters >= 2


class TestTargetCorrelated:
    def test_histogram_normalised(self):
        images = RNG.integers(0, 256, size=(5, 4, 4, 1), dtype=np.uint8)
        hist = pixel_histogram(images, 16)
        assert np.isclose(hist.sum(), 1.0)
        assert len(hist) == 16

    def test_empty_target_raises(self):
        with pytest.raises(QuantizationError):
            pixel_histogram(np.zeros((0, 4, 4, 1)), 8)

    def test_cluster_sizes_follow_pixel_histogram(self):
        # A target with 75% dark / 25% bright pixels must produce cluster
        # occupancies in (roughly) the same proportions over the weights.
        images = np.zeros((1, 16, 16, 1), dtype=np.uint8)
        images[0, :4] = 255  # 25% bright
        quantizer = TargetCorrelatedQuantizer(images, levels=2)
        weights = np.sort(RNG.standard_normal(1000))
        _, assignment = quantizer.quantize_vector(weights)
        fraction_low = (assignment == 0).mean()
        assert 0.70 < fraction_low < 0.80

    def test_preserves_correlated_weight_distribution(self):
        # Weights that mirror the pixel distribution must survive with a
        # high histogram overlap (the Fig. 3b claim).
        from repro.metrics import histogram_overlap
        images = RNG.integers(0, 256, size=(10, 8, 8, 1), dtype=np.uint8)
        pixels = images.reshape(-1).astype(float)
        weights = (pixels - pixels.mean()) / 255.0 + RNG.normal(0, 0.02, pixels.size)
        quantizer = TargetCorrelatedQuantizer(images, levels=32)
        codebook, assignment = quantizer.quantize_vector(weights)
        recon = codebook[assignment]
        assert histogram_overlap(recon, weights, bins=16) > 0.85

    def test_too_few_weights_raises(self):
        images = RNG.integers(0, 256, size=(1, 4, 4, 1), dtype=np.uint8)
        with pytest.raises(QuantizationError):
            TargetCorrelatedQuantizer(images, levels=16).quantize_vector(np.zeros(4))

    def test_accepts_secret_payload(self):
        from repro.attacks import SecretPayload
        images = RNG.integers(0, 256, size=(2, 4, 4, 1), dtype=np.uint8)
        payload = SecretPayload(images, np.zeros(2, dtype=np.int64))
        quantizer = TargetCorrelatedQuantizer(payload, levels=4)
        assert np.isclose(quantizer.histogram.sum(), 1.0)

    def test_monotone_codebook(self):
        images = RNG.integers(0, 256, size=(4, 8, 8, 1), dtype=np.uint8)
        quantizer = TargetCorrelatedQuantizer(images, levels=8)
        codebook, _ = quantizer.quantize_vector(RNG.standard_normal(500))
        assert np.all(np.diff(codebook) >= -1e-12)


class TestCommonInvariants:
    @pytest.mark.parametrize("make", [
        lambda: UniformQuantizer(levels=8),
        lambda: KMeansQuantizer(levels=8),
        lambda: WeightedEntropyQuantizer(levels=8),
        lambda: TargetCorrelatedQuantizer(
            np.random.default_rng(0).integers(0, 256, (4, 8, 8, 1), dtype=np.uint8), 8
        ),
    ])
    def test_reconstruction_within_weight_range(self, make):
        weights = RNG.standard_normal(500)
        recon = reconstruction(make(), weights)
        assert recon.min() >= weights.min() - 1e-9
        assert recon.max() <= weights.max() + 1e-9

    @pytest.mark.parametrize("make", [
        lambda: UniformQuantizer(levels=4),
        lambda: KMeansQuantizer(levels=4),
    ])
    def test_idempotent(self, make):
        weights = RNG.standard_normal(300)
        quantizer = make()
        once = reconstruction(quantizer, weights)
        twice = reconstruction(make(), once)
        assert np.allclose(once, twice, atol=1e-9)

    def test_weighted_entropy_second_pass_does_not_expand(self):
        # Equal-importance-mass boundaries can land mid-run of duplicated
        # values, so WEQ is not bit-exact idempotent; but a second pass
        # must never *increase* the number of distinct values.
        weights = RNG.standard_normal(300)
        once = reconstruction(WeightedEntropyQuantizer(levels=4), weights)
        twice = reconstruction(WeightedEntropyQuantizer(levels=4), once)
        assert len(np.unique(twice)) <= len(np.unique(once))
