"""Huffman coding over quantization assignments."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.models.mlp import MLP
from repro.quantization import (
    TargetCorrelatedQuantizer,
    UniformQuantizer,
    build_huffman,
    huffman_for_result,
    huffman_model_bytes,
    quantized_model_bytes,
)

RNG = np.random.default_rng(61)


class TestBuildHuffman:
    def test_empty_raises(self):
        with pytest.raises(QuantizationError):
            build_huffman({})

    def test_single_symbol(self):
        code = build_huffman({3: 10})
        assert code.codes == {3: "0"}
        assert code.encoded_bits() == 10

    def test_prefix_property(self):
        code = build_huffman({0: 5, 1: 9, 2: 12, 3: 13, 4: 16, 5: 45})
        words = list(code.codes.values())
        for a in words:
            for b in words:
                if a != b:
                    assert not b.startswith(a)

    def test_classic_example_lengths(self):
        # Standard textbook frequencies: 45 gets a 1-bit code.
        code = build_huffman({0: 5, 1: 9, 2: 12, 3: 13, 4: 16, 5: 45})
        assert len(code.codes[5]) == 1
        assert max(len(c) for c in code.codes.values()) == 4

    def test_average_length_within_entropy_plus_one(self):
        counts = {i: int(c) for i, c in enumerate(RNG.integers(1, 1000, size=16))}
        code = build_huffman(counts)
        entropy = code.entropy_bits_per_symbol()
        average = code.average_bits_per_symbol()
        assert entropy <= average + 1e-9
        assert average < entropy + 1.0

    def test_uniform_counts_give_fixed_length(self):
        code = build_huffman({i: 10 for i in range(8)})
        assert all(len(c) == 3 for c in code.codes.values())

    def test_deterministic(self):
        counts = {0: 3, 1: 3, 2: 5, 3: 7}
        assert build_huffman(counts).codes == build_huffman(counts).codes


class TestModelHuffman:
    def test_for_result(self):
        model = MLP([32, 32], rng=np.random.default_rng(0))
        result = UniformQuantizer(levels=8).quantize_model(model)
        code = huffman_for_result(result, "fc0.weight")
        assert code.total_symbols == 32 * 32

    def test_skewed_assignments_compress_below_fixed_width(self):
        # Target-correlated clusters follow the (skewed) pixel histogram,
        # so Huffman beats the fixed per-weight bit width.
        images = np.zeros((1, 16, 16, 1), dtype=np.uint8)
        images[0, :3] = 255  # heavily skewed pixel histogram
        model = MLP([64, 64], rng=np.random.default_rng(1))
        result = TargetCorrelatedQuantizer(images, levels=16).quantize_model(model)
        code = huffman_for_result(result, "fc0.weight")
        assert code.average_bits_per_symbol() < 4.0  # fixed width would be 4

    def test_model_bytes_at_most_fixed_width(self):
        model = MLP([64, 64, 8], rng=np.random.default_rng(2))
        result = UniformQuantizer(levels=16).quantize_model(model)
        huffman_bytes = huffman_model_bytes(result)
        # quantized_model_bytes includes float params too; compare only
        # the coded part: assignments * 4 bits + codebook.
        assignments_bits = sum(a.size for a in result.assignments.values()) * 4
        codebooks_bits = 32 * sum({id(c): c.size for c in result.codebooks.values()}.values())
        fixed_bytes = (assignments_bits + codebooks_bits + 7) // 8
        assert huffman_bytes <= fixed_bytes + 8
