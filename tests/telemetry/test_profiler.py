"""Autograd op profiler: attribution on a tiny forward/backward pass."""

import numpy as np

from repro.autograd import function as function_mod
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.telemetry.profiler import OpProfile, profile


def tiny_forward_backward():
    a = Tensor(np.random.default_rng(0).normal(size=(4, 4)), requires_grad=True)
    b = Tensor(np.random.default_rng(1).normal(size=(4, 4)), requires_grad=True)
    loss = F.relu(a @ b).sum()
    loss.backward()
    return a, b


class TestProfileRegion:
    def test_attributes_forward_and_backward(self):
        with profile() as prof:
            tiny_forward_backward()
        for name in ("MatMul", "ReLU", "Sum"):
            assert name in prof
            stat = prof.stats[name]
            assert stat.forward_calls == 1
            assert stat.backward_calls == 1
            assert stat.forward_time >= 0.0
            assert stat.backward_time >= 0.0
            assert stat.bytes_moved > 0

    def test_gradients_unaffected_by_profiling(self):
        a1, b1 = tiny_forward_backward()
        with profile():
            a2, b2 = tiny_forward_backward()
        np.testing.assert_array_equal(a1.grad, a2.grad)
        np.testing.assert_array_equal(b1.grad, b2.grad)

    def test_nothing_recorded_outside_region(self):
        with profile() as prof:
            pass
        tiny_forward_backward()
        assert prof.stats == {}
        assert prof.total_calls == 0

    def test_hook_restored_after_region(self):
        assert function_mod.get_op_hook() is None
        with profile():
            assert function_mod.get_op_hook() is not None
        assert function_mod.get_op_hook() is None

    def test_hook_restored_on_exception(self):
        try:
            with profile():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert function_mod.get_op_hook() is None

    def test_accumulates_across_regions(self):
        prof = OpProfile()
        with profile(prof):
            tiny_forward_backward()
        with profile(prof):
            tiny_forward_backward()
        assert prof.stats["MatMul"].forward_calls == 2


class TestReporting:
    def test_wall_time_and_coverage(self):
        with profile() as prof:
            tiny_forward_backward()
        assert prof.wall_time > 0.0
        assert 0.0 < prof.coverage() <= 1.0
        assert prof.total_op_time <= prof.wall_time

    def test_top_is_sorted_by_total_time(self):
        with profile() as prof:
            tiny_forward_backward()
        times = [s.total_time for s in prof.top(10)]
        assert times == sorted(times, reverse=True)

    def test_table_renders_top_k(self):
        with profile() as prof:
            tiny_forward_backward()
        table = prof.table(top_k=2)
        assert "op" in table and "share %" in table
        # header + separator + 2 rows + title
        assert len(table.splitlines()) == 4 + 1

    def test_snapshot_is_plain_data(self):
        import json
        with profile() as prof:
            tiny_forward_backward()
        json.dumps(prof.snapshot())


class TestTrainingStepCoverage:
    def test_op_time_dominates_a_training_step(self):
        """The acceptance bar: ops account for >=90% of a training step.

        Uses a small conv model so numpy work (not Python dispatch)
        dominates, mirroring `repro profile quickstart`.
        """
        from repro.models import resnet8_tiny
        from repro.nn.losses import CrossEntropyLoss
        from repro.nn.optim import SGD

        rng = np.random.default_rng(0)
        model = resnet8_tiny(num_classes=4, in_channels=3, width=8, rng=rng)
        inputs = rng.normal(size=(16, 3, 16, 16))
        labels = rng.integers(0, 4, size=16)
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(model.parameters(), lr=0.01)

        def step():
            logits = model(Tensor(inputs))
            loss = loss_fn(logits, labels)
            model.zero_grad()
            loss.backward()
            optimizer.step()

        step()  # warm-up outside the profiled region
        with profile() as prof:
            step()
        assert prof.coverage() >= 0.75  # CI-safe floor; typically >0.9


class TestActiveProfile:
    def test_none_outside_region(self):
        from repro.telemetry.profiler import active_profile
        assert active_profile() is None

    def test_tracks_innermost_region(self):
        from repro.telemetry.profiler import active_profile
        with profile() as outer:
            assert active_profile() is outer
            with profile() as inner:
                assert active_profile() is inner
            assert active_profile() is outer
        assert active_profile() is None

    def test_restored_on_exception(self):
        from repro.telemetry.profiler import active_profile
        try:
            with profile():
                raise ValueError("x")
        except ValueError:
            pass
        assert active_profile() is None


class TestMergeKernels:
    def test_merges_wire_format_into_empty_profile(self):
        prof = OpProfile()
        prof.merge_kernels({
            "fast/matmul": {"backend": "fast", "kernel": "matmul",
                            "calls": 3, "total_time": 0.5, "bytes_moved": 100},
        })
        stat = prof.kernel_stats["fast/matmul"]
        assert (stat.backend, stat.kernel) == ("fast", "matmul")
        assert stat.calls == 3
        assert stat.total_time == 0.5
        assert stat.bytes_moved == 100

    def test_accumulates_into_existing_stats(self):
        prof = OpProfile()
        prof._record_kernel("fast", "matmul", 0.25, 50)
        prof.merge_kernels({"fast/matmul": {"calls": 2, "total_time": 0.5,
                                            "bytes_moved": 10}})
        stat = prof.kernel_stats["fast/matmul"]
        assert stat.calls == 3
        assert stat.total_time == 0.75
        assert stat.bytes_moved == 60

    def test_key_partition_fallback(self):
        # wire entries missing backend/kernel fields derive them from the key
        prof = OpProfile()
        prof.merge_kernels({"reference/conv2d": {"calls": 1, "total_time": 0.1}})
        stat = prof.kernel_stats["reference/conv2d"]
        assert (stat.backend, stat.kernel) == ("reference", "conv2d")
