"""Structured event log, config fingerprints and the RunManifest."""

import io
import json

import pytest

from repro.errors import ConfigError
from repro.pipeline.config import AttackConfig, TrainingConfig
from repro.telemetry.events import (
    EventLogger,
    RunManifest,
    config_fingerprint,
    new_run_id,
)


class TestEventLogger:
    def test_events_carry_run_id_and_fields(self):
        logger = EventLogger(level="debug", run_id="run42")
        logger.info("train.start", epochs=3)
        (record,) = logger.records
        assert record["run_id"] == "run42"
        assert record["event"] == "train.start"
        assert record["epochs"] == 3
        assert record["level"] == "info"
        assert record["ts"] > 0

    def test_level_threshold_drops_events(self):
        logger = EventLogger(level="warning")
        logger.debug("d")
        logger.info("i")
        logger.warning("w")
        logger.error("e")
        assert [r["event"] for r in logger.records] == ["w", "e"]
        assert logger.is_enabled("error")
        assert not logger.is_enabled("debug")

    def test_unknown_level_raises(self):
        with pytest.raises(ConfigError):
            EventLogger(level="loud")

    def test_jsonl_file_output(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLogger(path=str(path), level="info") as logger:
            logger.info("a", x=1)
            logger.info("b", y=[1, 2])
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["event"] for line in lines] == ["a", "b"]
        assert lines[1]["y"] == [1, 2]

    def test_stream_output(self):
        stream = io.StringIO()
        logger = EventLogger(stream=stream, level="info")
        logger.info("hello")
        assert json.loads(stream.getvalue())["event"] == "hello"

    def test_non_json_fields_fall_back_to_repr(self):
        logger = EventLogger(level="info")
        logger.info("odd", value=object())
        json.dumps(logger.records[0], default=repr)


class TestRunIds:
    def test_unique_and_short(self):
        ids = {new_run_id() for _ in range(32)}
        assert len(ids) == 32
        assert all(len(i) == 12 for i in ids)


class TestConfigFingerprint:
    def test_stable_for_equal_configs(self):
        a = TrainingConfig(epochs=3, lr=0.1)
        b = TrainingConfig(epochs=3, lr=0.1)
        assert config_fingerprint(a) == config_fingerprint(b)

    def test_differs_when_config_differs(self):
        a = TrainingConfig(epochs=3)
        b = TrainingConfig(epochs=4)
        assert config_fingerprint(a) != config_fingerprint(b)

    def test_multiple_configs_hash_together(self):
        t = TrainingConfig()
        k = AttackConfig()
        assert config_fingerprint(t, k) != config_fingerprint(t)

    def test_dicts_are_order_insensitive(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint({"b": 2, "a": 1})

    def test_plain_values(self):
        assert len(config_fingerprint({"x": (1, 2.5, None, True, "s")})) == 16


class TestRunManifest:
    def test_create_fills_defaults(self):
        manifest = RunManifest.create(seed=7, config=TrainingConfig(),
                                      telemetry={"m": 1}, dataset="cifar")
        assert manifest.seed == 7
        assert len(manifest.config_hash) == 16
        assert manifest.telemetry == {"m": 1}
        assert manifest.extra["dataset"] == "cifar"
        # every manifest records the graph-compiler configuration snapshot
        graph = manifest.extra["graph"]
        assert set(graph["capabilities"]) == {
            "graph_compiler", "fusion", "tiling",
        }
        assert isinstance(graph["compile_default"], bool)
        assert manifest.created_at > 0

    def test_create_snapshots_default_registry(self):
        from repro.telemetry.metrics import default_registry
        default_registry().counter("manifest.test.counter").inc(2)
        manifest = RunManifest.create()
        assert manifest.telemetry["manifest.test.counter"] == 2.0

    def test_dict_roundtrip(self):
        manifest = RunManifest.create(seed=1, config={"bits": 4})
        again = RunManifest.from_dict(json.loads(json.dumps(manifest.to_dict())))
        assert again == manifest

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            RunManifest.from_dict({"run_id": "x", "bogus": 1})

    def test_from_dict_requires_run_id(self):
        with pytest.raises(ConfigError):
            RunManifest.from_dict({"seed": 1})
