"""Live exporter: Prometheus rendering, HTTP endpoints, health heartbeat."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigError
from repro.telemetry.export import (
    MetricsExporter,
    active_exporter,
    health_snapshot,
    prometheus_text,
    reset_health,
    serve_metrics,
    stop_exporter,
    update_health,
)
from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_exporter_state():
    yield
    stop_exporter()
    reset_health()


def _get(url: str) -> tuple:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.read().decode("utf-8")


class TestPrometheusText:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("trainer.batches").inc(7)
        registry.gauge("trainer.images_per_s").set(123.5)
        text = prometheus_text(registry)
        assert "# TYPE repro_trainer_batches counter" in text
        assert "repro_trainer_batches 7.0" in text
        assert "# TYPE repro_trainer_images_per_s gauge" in text
        assert "repro_trainer_images_per_s 123.5" in text

    def test_histogram_becomes_summary_with_quantiles(self):
        registry = MetricsRegistry()
        for value in range(100):
            registry.histogram("batch_ms").observe(float(value))
        text = prometheus_text(registry)
        assert "# TYPE repro_batch_ms summary" in text
        assert 'repro_batch_ms{quantile="0.50"}' in text
        assert "repro_batch_ms_count 100" in text

    def test_timer_exposes_ewma(self):
        registry = MetricsRegistry()
        registry.timer("epoch_s").update(2.0)
        text = prometheus_text(registry)
        assert "# TYPE repro_epoch_s_ewma gauge" in text
        assert "repro_epoch_s_count 1" in text

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("a.b-c/d e").inc()
        text = prometheus_text(registry)
        assert "repro_a_b_c_d_e" in text

    def test_empty_registry_renders(self):
        assert prometheus_text(MetricsRegistry()) == "\n"


class TestHealth:
    def test_update_and_snapshot(self):
        update_health(epoch=3, stage="training")
        snap = health_snapshot()
        assert snap["epoch"] == 3
        assert snap["stage"] == "training"
        reset_health()
        assert health_snapshot() == {}


class TestExporterHTTP:
    def test_serves_metrics_and_health(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(3)
        update_health(epoch=5)
        with MetricsExporter(port=0, registry=registry) as exporter:
            assert exporter.port > 0
            status, body = _get(exporter.url + "/metrics")
            assert status == 200
            assert "repro_hits 3.0" in body
            status, body = _get(exporter.url + "/health")
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "ok"
            assert payload["epoch"] == 5
            assert "run_id" in payload and "uptime_s" in payload
            assert payload["workers_alive"] == 0

    def test_health_reflects_pool_liveness_metrics(self):
        registry = MetricsRegistry()
        registry.gauge("pool.workers_alive").set(4.0)
        registry.counter("pool.worker_crashes").inc(1)
        with MetricsExporter(port=0, registry=registry) as exporter:
            _, body = _get(exporter.url + "/health")
            payload = json.loads(body)
            assert payload["workers_alive"] == 4
            assert payload["worker_crashes"] == 1

    def test_unknown_route_is_404(self):
        with MetricsExporter(port=0) as exporter:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(exporter.url + "/nope")
            assert excinfo.value.code == 404

    def test_port_validation(self):
        with pytest.raises(ConfigError):
            MetricsExporter(port=70000)


class TestSingleton:
    def test_serve_metrics_is_idempotent(self):
        first = serve_metrics(port=0)
        second = serve_metrics(port=0)
        assert first is second
        assert active_exporter() is first
        stop_exporter()
        assert active_exporter() is None

    def test_manifest_records_endpoint(self):
        from repro.telemetry.events import RunManifest

        exporter = serve_metrics(port=0)
        manifest = RunManifest.create(seed=1)
        assert manifest.extra["metrics_endpoint"] == exporter.url
        stop_exporter()
        manifest = RunManifest.create(seed=1)
        assert "metrics_endpoint" not in manifest.extra


class TestInjectedClock:
    def test_uptime_is_deterministic_with_a_fake_clock(self):
        now = [1_000.0]
        with MetricsExporter(port=0, registry=MetricsRegistry(),
                             clock=lambda: now[0]) as exporter:
            assert exporter.started_at == 1_000.0
            now[0] = 1_042.5
            _, body = _get(exporter.url + "/health")
            assert json.loads(body)["uptime_s"] == pytest.approx(42.5)
            now[0] = 1_100.0
            _, body = _get(exporter.url + "/health")
            assert json.loads(body)["uptime_s"] == pytest.approx(100.0)
