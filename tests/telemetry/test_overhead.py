"""Disabled-telemetry overhead guard.

The instrumentation left in the training hot loop must be near-free
when no recorder/profiler is active.  Rather than racing two training
runs against each other (noisy), this measures the disabled fast paths
directly -- the exact per-batch work `Trainer.train_epoch` adds -- and
asserts that one epoch's worth costs <5% of a real (small) epoch.
"""

import time

import numpy as np

from repro.models import resnet8_tiny
from repro.pipeline import TrainingConfig
from repro.pipeline.trainer import Trainer
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import get_recorder, span


def _per_batch_instrumentation_cost(reps: int = 2000) -> float:
    """Seconds per batch spent in the disabled instrumentation paths."""
    assert get_recorder() is None
    registry = MetricsRegistry()
    histogram = registry.histogram("probe.batch_s")
    start = time.perf_counter()
    for _ in range(reps):
        # Mirrors one loop iteration of Trainer.train_epoch: a batch
        # span, the batch perf_counter pair, and a histogram observation
        # (the per-epoch counters/gauges are amortized over all batches).
        t0 = time.perf_counter()
        with span("probe.batch"):
            pass
        histogram.observe(time.perf_counter() - t0)
    return (time.perf_counter() - start) / reps


def _epoch_seconds() -> tuple:
    """(seconds per epoch, batches per epoch) for a small real epoch."""
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(96, 3, 16, 16))
    labels = rng.integers(0, 4, size=96)
    model = resnet8_tiny(num_classes=4, in_channels=3, width=8, rng=rng)
    trainer = Trainer(model, inputs, labels,
                      TrainingConfig(epochs=1, batch_size=32, lr=0.05))
    trainer.train_epoch()  # warm-up
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        trainer.train_epoch()
        best = min(best, time.perf_counter() - start)
    return best, int(np.ceil(len(labels) / 32))


def test_disabled_overhead_is_under_five_percent():
    per_batch = _per_batch_instrumentation_cost()
    epoch_seconds, batches = _epoch_seconds()
    # Per epoch: per-batch probes plus a fixed handful of counter/gauge/
    # timer updates and two epoch-level spans (budgeted as 20 probes).
    epoch_overhead = per_batch * (batches + 20)
    assert epoch_overhead < 0.05 * epoch_seconds, (
        f"instrumentation {epoch_overhead * 1e3:.3f} ms/epoch vs "
        f"epoch {epoch_seconds * 1e3:.1f} ms"
    )


def test_noop_span_is_sub_microsecond_scale():
    # A direct absolute bound keeps the fast path honest even if epochs
    # get faster: 10k disabled spans must stay under 50 ms.
    start = time.perf_counter()
    for _ in range(10_000):
        with span("noop"):
            pass
    assert time.perf_counter() - start < 0.05
