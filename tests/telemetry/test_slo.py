"""SloHistogram: buckets, quantiles, exact merge, registry + Prometheus."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.telemetry.export import prometheus_text
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.slo import SloHistogram, bucket_edges


class TestBucketEdges:
    def test_log_spacing_and_coverage(self):
        edges = bucket_edges(lo=0.01, hi=1e5, buckets_per_decade=10)
        assert edges[0] == 0.01
        assert edges[-1] >= 1e5
        ratios = [b / a for a, b in zip(edges, edges[1:])]
        assert all(r == pytest.approx(10 ** 0.1, rel=1e-6) for r in ratios)

    def test_deterministic_across_computations(self):
        # layout equality gates the exact merge path; two independent
        # computations must agree bit-for-bit
        assert bucket_edges() == bucket_edges()
        assert bucket_edges(0.1, 100.0, 5) == bucket_edges(0.1, 100.0, 5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            bucket_edges(lo=0.0)
        with pytest.raises(ConfigError):
            bucket_edges(lo=10.0, hi=1.0)
        with pytest.raises(ConfigError):
            bucket_edges(buckets_per_decade=0)


class TestObserve:
    def test_count_sum_min_max_are_exact(self):
        hist = SloHistogram("lat")
        values = [0.5, 3.0, 12.0, 75.0, 420.0]
        for value in values:
            hist.observe(value)
        assert hist.count == len(values)
        assert hist.total == pytest.approx(sum(values))
        assert hist.min == 0.5
        assert hist.max == 420.0
        assert hist.mean == pytest.approx(np.mean(values))
        assert sum(hist.counts) == len(values)

    def test_underflow_and_overflow_buckets(self):
        hist = SloHistogram("lat", lo=1.0, hi=100.0)
        hist.observe(1e-6)   # below lo -> bucket 0
        hist.observe(1e9)    # above hi -> overflow bucket
        assert hist.counts[0] == 1
        assert hist.counts[-1] == 1
        # overflow quantile answers with the observed max, not a bucket
        assert hist.quantile(1.0) == 1e9

    def test_breaches_count_only_above_slo(self):
        hist = SloHistogram("lat", slo=100.0)
        for value in (10.0, 100.0, 101.0, 500.0):
            hist.observe(value)
        assert hist.breaches == 2  # strictly above the target

    def test_no_slo_means_no_breaches(self):
        hist = SloHistogram("lat")
        hist.observe(1e9)
        assert hist.breaches == 0


class TestQuantiles:
    def test_within_bucket_resolution_of_numpy(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=3.0, sigma=1.0, size=5000)
        hist = SloHistogram("lat")
        for value in values:
            hist.observe(float(value))
        # bucket ratio at 10/decade is 10**0.1 (~26%); the geometric
        # midpoint estimate stays within one bucket of the true quantile
        ratio = 10 ** 0.1
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(values, q))
            estimate = hist.quantile(q)
            assert exact / ratio <= estimate <= exact * ratio

    def test_clamped_to_observed_range(self):
        hist = SloHistogram("lat")
        hist.observe(42.0)
        for q in (0.0, 0.5, 1.0):
            assert hist.quantile(q) == 42.0

    def test_empty_histogram_is_nan(self):
        hist = SloHistogram("lat")
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.mean)

    def test_percentiles_keys(self):
        hist = SloHistogram("lat")
        hist.observe(5.0)
        assert set(hist.percentiles()) == {"p50", "p90", "p99", "p999"}

    def test_quantile_validation(self):
        with pytest.raises(ConfigError):
            SloHistogram("lat").quantile(1.5)


class TestMerge:
    def test_merged_quantiles_equal_single_stream(self):
        # the whole point of fixed buckets: two shards' histograms merge
        # into exactly what one observer of both streams would hold
        rng = np.random.default_rng(3)
        stream_a = rng.uniform(1.0, 500.0, size=400)
        stream_b = rng.uniform(0.1, 50.0, size=300)
        merged = SloHistogram("lat", slo=100.0)
        for value in stream_a:
            merged.observe(float(value))
        other = SloHistogram("lat", slo=100.0)
        for value in stream_b:
            other.observe(float(value))
        merged.merge_snapshot(other.snapshot())

        single = SloHistogram("lat", slo=100.0)
        for value in list(stream_a) + list(stream_b):
            single.observe(float(value))
        assert merged.counts == single.counts
        assert merged.count == single.count
        assert merged.total == pytest.approx(single.total)
        assert merged.breaches == single.breaches
        assert merged.min == single.min and merged.max == single.max
        for q in (0.5, 0.9, 0.99):
            assert merged.quantile(q) == single.quantile(q)

    def test_layout_mismatch_degrades_to_scalar_fold(self):
        coarse = SloHistogram("lat", buckets_per_decade=2)
        fine = SloHistogram("lat", buckets_per_decade=10)
        fine.observe(10.0)
        before = list(coarse.counts)
        coarse.merge_snapshot(fine.snapshot())
        assert coarse.counts == before  # buckets untouched
        assert coarse.count == 1        # scalars still folded
        assert coarse.min == 10.0 and coarse.max == 10.0

    def test_empty_snapshot_is_a_noop(self):
        hist = SloHistogram("lat")
        hist.observe(1.0)
        hist.merge_snapshot(SloHistogram("lat").snapshot())
        assert hist.count == 1

    def test_reset(self):
        hist = SloHistogram("lat", slo=1.0)
        hist.observe(5.0)
        hist.reset()
        assert hist.count == 0 and hist.breaches == 0
        assert sum(hist.counts) == 0


class TestRegistryIntegration:
    def test_typed_snapshot_roundtrip_across_registries(self):
        source = MetricsRegistry()
        hist = source.slo("serve.slo.latency_ms", slo=100.0)
        for value in (10.0, 150.0, 30.0):
            hist.observe(value)
        shipped = source.typed_snapshot()
        assert "serve.slo.latency_ms" in shipped["slo"]

        parent = MetricsRegistry()
        parent.merge_typed(shipped)
        merged = parent.slo("serve.slo.latency_ms")
        assert merged.count == 3
        assert merged.breaches == 1
        assert merged.counts == hist.counts

    def test_accessor_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.slo("x")
        with pytest.raises(ConfigError):
            registry.counter("x")

    def test_flat_snapshot_skips_bucket_vector(self):
        registry = MetricsRegistry()
        registry.slo("x", slo=1.0).observe(2.0)
        flat = registry.flat_snapshot()
        assert flat["x.count"] == 1
        assert flat["x.breaches"] == 1.0
        assert "x.counts" not in flat
        assert all(isinstance(v, (int, float)) for v in flat.values())


class TestPrometheusRendering:
    def test_native_histogram_series(self):
        registry = MetricsRegistry()
        hist = registry.slo("serve.slo.latency_ms", slo=50.0)
        for value in (1.0, 10.0, 100.0):
            hist.observe(value)
        text = prometheus_text(registry)
        assert "# TYPE repro_serve_slo_latency_ms histogram" in text
        assert 'repro_serve_slo_latency_ms_bucket{le="+Inf"} 3' in text
        assert "repro_serve_slo_latency_ms_count 3" in text
        assert "repro_serve_slo_latency_ms_breaches 1.0" in text
        # bucket series are cumulative: the last finite bucket holds all
        lines = [l for l in text.splitlines()
                 if l.startswith("repro_serve_slo_latency_ms_bucket")]
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)
