"""Stack sampler: sampling mechanics, exports, and the profiler cross-check."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.telemetry.sampler import StackSampler, _frame_label, compare_with_profile


def _spin(seconds: float) -> None:
    """Busy-loop so the main thread is actually on-CPU while sampled."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(200))


class _FakeClock:
    """Deterministic clock for timing assertions without real sleeps."""

    def __init__(self, start: float = 100.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def tick(self, dt: float) -> None:
        self.now += dt


def _park_thread(name: str = "background"):
    """Start a daemon thread parked in a recognisably-named frame.

    Returns ``(release, join)`` callables; the thread's stack contains a
    frame labelled with ``name`` for as long as it is parked, so
    ``sample_once`` observes it deterministically.
    """
    parked = threading.Event()
    release = threading.Event()

    def background():
        parked.set()
        release.wait(10.0)

    background.__name__ = name
    background.__qualname__ = name
    thread = threading.Thread(target=background, daemon=True, name=name)
    thread.start()
    parked.wait(10.0)
    return release.set, thread.join


class TestSampling:
    """Deterministic sampling tests: construct with a fake clock and a
    rate too low for the background thread to ever fire, then drive
    :meth:`StackSampler.sample_once` per simulated tick by hand."""

    def test_sample_once_tallies_the_calling_stack(self):
        clock = _FakeClock()
        sampler = StackSampler(hz=1e-9, clock=clock)
        sampler.start()
        for _ in range(16):
            assert sampler.sample_once() == 1
            clock.tick(0.01)
        sampler.stop()
        assert sampler.sample_count == 16
        assert sampler.wall_time == pytest.approx(0.16)
        # every snapshot was taken from inside this very test function
        assert sampler.share("test_sample_once_tallies") == 1.0

    def test_stacks_are_root_first(self):
        sampler = StackSampler(hz=1e-9)

        def leaf():
            sampler.sample_once()

        def trunk():
            leaf()

        trunk()
        stack = max(sampler.samples, key=sampler.samples.get)
        labels = list(stack)
        trunk_pos = max(i for i, l in enumerate(labels) if "trunk" in l)
        leaf_pos = max(i for i, l in enumerate(labels) if ":leaf" in l)
        assert trunk_pos < leaf_pos, "caller must precede callee (root first)"
        assert ":leaf" in labels[-1] or "sample_once" in labels[-1]

    def test_main_mode_ignores_other_threads(self):
        release, join = _park_thread("background")
        try:
            sampler = StackSampler(hz=1e-9, threads="main")
            tallied = sampler.sample_once()
        finally:
            release()
            join()
        assert tallied == 1, "main mode tallies exactly the main thread"
        assert not any("background" in label
                       for stack in sampler.samples for label in stack)

    def test_all_mode_sees_other_threads(self):
        release, join = _park_thread("background")
        try:
            sampler = StackSampler(hz=1e-9, threads="all")
            tallied = sampler.sample_once()
        finally:
            release()
            join()
        assert tallied >= 2, "all mode tallies main + the parked thread"
        assert any("background" in label
                   for stack in sampler.samples for label in stack)

    def test_sample_once_can_exclude_a_thread(self):
        release, join = _park_thread("excluded_me")
        try:
            sampler = StackSampler(hz=1e-9, threads="all")
            parked = [t for t in threading.enumerate()
                      if t.name == "excluded_me"]
            assert parked, "parked thread should be alive"
            sampler.sample_once(exclude_thread=parked[0].ident)
        finally:
            release()
            join()
        assert not any("excluded_me" in label
                       for stack in sampler.samples for label in stack)

    def test_max_depth_truncates(self):
        sampler = StackSampler(hz=1e-9, max_depth=5)

        def recurse(n):
            if n == 0:
                sampler.sample_once()
            else:
                recurse(n - 1)

        recurse(30)
        assert sampler.samples
        assert all(len(stack) <= 5 for stack in sampler.samples)
        # truncation keeps the *innermost* frames
        stack = next(iter(sampler.samples))
        assert any("recurse" in label or "sample_once" in label
                   for label in stack)

    def test_background_thread_smoke(self):
        """Loose real-time check that the daemon loop does sample at all;
        the strict assertions above run on the deterministic path."""
        with StackSampler(hz=500) as sampler:
            _spin(0.2)
        assert sampler.sample_count >= 1
        assert sampler.wall_time > 0

    def test_fake_clock_wall_time_is_exact(self):
        clock = _FakeClock(start=50.0)
        sampler = StackSampler(hz=1e-9, clock=clock)
        sampler.start()
        clock.tick(2.5)
        assert sampler.wall_time == pytest.approx(2.5)
        clock.tick(1.5)
        sampler.stop()
        assert sampler.wall_time == pytest.approx(4.0)
        clock.tick(99.0)  # after stop the window is frozen
        assert sampler.wall_time == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            StackSampler(hz=0)
        with pytest.raises(ConfigError):
            StackSampler(threads="bogus")
        sampler = StackSampler().start()
        with pytest.raises(ConfigError):
            sampler.start()
        sampler.stop()
        sampler.stop()  # idempotent

    def test_frame_label_format(self):
        import sys
        frame = sys._getframe()
        label = _frame_label(frame)
        assert label == f"{__name__}:test_frame_label_format"


class TestQueriesAndExport:
    def make_sampler(self):
        sampler = StackSampler(hz=500)
        sampler.samples = {
            ("mod:root", "mod:work"): 6,
            ("mod:root", "mod:other"): 3,
            ("mod:root",): 1,
        }
        sampler.sample_count = 10
        return sampler

    def test_leaf_shares(self):
        shares = self.make_sampler().leaf_shares()
        assert shares["mod:work"] == pytest.approx(0.6)
        assert shares["mod:other"] == pytest.approx(0.3)
        assert shares["mod:root"] == pytest.approx(0.1)

    def test_total_shares_count_recursion_once(self):
        shares = self.make_sampler().total_shares()
        assert shares["mod:root"] == pytest.approx(1.0)
        assert shares["mod:work"] == pytest.approx(0.6)

    def test_share_substring(self):
        sampler = self.make_sampler()
        assert sampler.share("work") == pytest.approx(0.6)
        assert sampler.share("mod:") == pytest.approx(1.0)
        assert sampler.share("absent") == 0.0

    def test_empty_sampler_queries(self):
        sampler = StackSampler()
        assert sampler.leaf_shares() == {}
        assert sampler.total_shares() == {}
        assert sampler.share("x") == 0.0

    def test_collapsed_format(self, tmp_path):
        sampler = self.make_sampler()
        text = sampler.collapsed()
        assert "mod:root;mod:work 6" in text.splitlines()
        path = tmp_path / "profile.folded"
        sampler.to_collapsed(path)
        assert path.read_text().strip() == text

    def test_table_renders(self):
        out = self.make_sampler().table(top_k=2)
        assert "mod:work" in out
        assert "60.0" in out


class TestProfilerCrossCheck:
    def test_cross_check_on_a_tiny_training_step(self):
        """The sampler's repro.* compute share and the op profiler's
        coverage both attribute a real training step; they must agree
        that compute dominates (loose band -- both are statistical)."""
        import numpy as np

        from repro.pipeline.trainer import Trainer, TrainingConfig
        from repro.telemetry.profiler import profile
        from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar
        from repro.datasets.transforms import images_to_batch, normalize_batch
        from repro.models import resnet8_tiny

        data = make_synthetic_cifar(SyntheticCifarConfig(
            num_images=64, num_classes=4, image_size=16, seed=0))
        batch = images_to_batch(data.images)
        batch, _, _ = normalize_batch(batch)
        trainer = Trainer(
            resnet8_tiny(num_classes=4, in_channels=3, width=8,
                         rng=np.random.default_rng(0)),
            batch, data.labels,
            TrainingConfig(epochs=1, batch_size=32, lr=0.05, seed=0))
        trainer.train_epoch()  # warm-up outside both instruments
        with StackSampler(hz=500) as sampler, profile() as prof:
            trainer.train_epoch()
        check = compare_with_profile(sampler, prof)
        assert check["sampled_compute_share"] > 0.3
        assert check["profiled_op_coverage"] > 0.3
        assert 0.0 <= check["gap"] <= 0.7
