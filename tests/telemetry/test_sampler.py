"""Stack sampler: sampling mechanics, exports, and the profiler cross-check."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ConfigError
from repro.telemetry.sampler import StackSampler, _frame_label, compare_with_profile


def _spin(seconds: float) -> None:
    """Busy-loop so the main thread is actually on-CPU while sampled."""
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        sum(range(200))


class TestSampling:
    def test_captures_samples_of_the_main_thread(self):
        with StackSampler(hz=500) as sampler:
            _spin(0.2)
        assert sampler.sample_count > 10
        assert sampler.wall_time >= 0.2
        # the busy loop is visible in the collected stacks
        assert sampler.share("test_sampler:_spin") > 0.5

    def test_stacks_are_root_first(self):
        with StackSampler(hz=500) as sampler:
            _spin(0.1)
        stack = max(sampler.samples, key=sampler.samples.get)
        assert any("_spin" in label for label in stack)
        # _spin is deeper in the stack than the pytest machinery
        spin_pos = max(i for i, label in enumerate(stack) if "_spin" in label)
        assert spin_pos == len(stack) - 1 or spin_pos > 0

    def test_main_mode_ignores_other_threads(self):
        stop = threading.Event()

        def background():
            while not stop.wait(0.001):
                pass

        thread = threading.Thread(target=background, daemon=True)
        thread.start()
        try:
            with StackSampler(hz=500, threads="main") as sampler:
                _spin(0.1)
        finally:
            stop.set()
            thread.join()
        assert not any("background" in label
                       for stack in sampler.samples for label in stack)

    def test_all_mode_sees_other_threads(self):
        stop = threading.Event()

        def background():
            while not stop.wait(0.001):
                pass

        thread = threading.Thread(target=background, daemon=True)
        thread.start()
        try:
            with StackSampler(hz=500, threads="all") as sampler:
                _spin(0.2)
        finally:
            stop.set()
            thread.join()
        assert any("background" in label
                   for stack in sampler.samples for label in stack)

    def test_max_depth_truncates(self):
        def recurse(n):
            if n == 0:
                _spin(0.15)
            else:
                recurse(n - 1)

        with StackSampler(hz=500, max_depth=5) as sampler:
            recurse(30)
        assert sampler.samples
        assert all(len(stack) <= 5 for stack in sampler.samples)

    def test_validation(self):
        with pytest.raises(ConfigError):
            StackSampler(hz=0)
        with pytest.raises(ConfigError):
            StackSampler(threads="bogus")
        sampler = StackSampler().start()
        with pytest.raises(ConfigError):
            sampler.start()
        sampler.stop()
        sampler.stop()  # idempotent

    def test_frame_label_format(self):
        import sys
        frame = sys._getframe()
        label = _frame_label(frame)
        assert label == f"{__name__}:test_frame_label_format"


class TestQueriesAndExport:
    def make_sampler(self):
        sampler = StackSampler(hz=500)
        sampler.samples = {
            ("mod:root", "mod:work"): 6,
            ("mod:root", "mod:other"): 3,
            ("mod:root",): 1,
        }
        sampler.sample_count = 10
        return sampler

    def test_leaf_shares(self):
        shares = self.make_sampler().leaf_shares()
        assert shares["mod:work"] == pytest.approx(0.6)
        assert shares["mod:other"] == pytest.approx(0.3)
        assert shares["mod:root"] == pytest.approx(0.1)

    def test_total_shares_count_recursion_once(self):
        shares = self.make_sampler().total_shares()
        assert shares["mod:root"] == pytest.approx(1.0)
        assert shares["mod:work"] == pytest.approx(0.6)

    def test_share_substring(self):
        sampler = self.make_sampler()
        assert sampler.share("work") == pytest.approx(0.6)
        assert sampler.share("mod:") == pytest.approx(1.0)
        assert sampler.share("absent") == 0.0

    def test_empty_sampler_queries(self):
        sampler = StackSampler()
        assert sampler.leaf_shares() == {}
        assert sampler.total_shares() == {}
        assert sampler.share("x") == 0.0

    def test_collapsed_format(self, tmp_path):
        sampler = self.make_sampler()
        text = sampler.collapsed()
        assert "mod:root;mod:work 6" in text.splitlines()
        path = tmp_path / "profile.folded"
        sampler.to_collapsed(path)
        assert path.read_text().strip() == text

    def test_table_renders(self):
        out = self.make_sampler().table(top_k=2)
        assert "mod:work" in out
        assert "60.0" in out


class TestProfilerCrossCheck:
    def test_cross_check_on_a_tiny_training_step(self):
        """The sampler's repro.* compute share and the op profiler's
        coverage both attribute a real training step; they must agree
        that compute dominates (loose band -- both are statistical)."""
        import numpy as np

        from repro.pipeline.trainer import Trainer, TrainingConfig
        from repro.telemetry.profiler import profile
        from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar
        from repro.datasets.transforms import images_to_batch, normalize_batch
        from repro.models import resnet8_tiny

        data = make_synthetic_cifar(SyntheticCifarConfig(
            num_images=64, num_classes=4, image_size=16, seed=0))
        batch = images_to_batch(data.images)
        batch, _, _ = normalize_batch(batch)
        trainer = Trainer(
            resnet8_tiny(num_classes=4, in_channels=3, width=8,
                         rng=np.random.default_rng(0)),
            batch, data.labels,
            TrainingConfig(epochs=1, batch_size=32, lr=0.05, seed=0))
        trainer.train_epoch()  # warm-up outside both instruments
        with StackSampler(hz=500) as sampler, profile() as prof:
            trainer.train_epoch()
        check = compare_with_profile(sampler, prof)
        assert check["sampled_compute_share"] > 0.3
        assert check["profiled_op_coverage"] > 0.3
        assert 0.0 <= check["gap"] <= 0.7
