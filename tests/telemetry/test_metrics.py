"""Metrics registry: counter/gauge/histogram/timer semantics."""

import json
import math

import pytest

from repro.errors import ConfigError
from repro.telemetry.metrics import (
    Counter,
    EwmaTimer,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("c")
        assert c.snapshot() == 0.0
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5.0

    def test_negative_increment_raises(self):
        with pytest.raises(ConfigError):
            Counter("c").inc(-1)

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.snapshot() == 0.0


class TestGauge:
    def test_nan_until_set(self):
        g = Gauge("g")
        assert math.isnan(g.snapshot())
        g.set(2.5)
        assert g.snapshot() == 2.5

    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(1.0)
        g.set(-7.0)
        assert g.snapshot() == -7.0


class TestHistogram:
    def test_count_sum_min_max(self):
        h = Histogram("h")
        for v in [3.0, 1.0, 2.0]:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 6.0
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == 2.0

    def test_quantiles(self):
        h = Histogram("h")
        for v in range(101):
            h.observe(float(v))
        assert h.quantile(0.0) == 0.0
        assert h.quantile(0.5) == 50.0
        assert h.quantile(1.0) == 100.0

    def test_quantile_window_is_bounded(self):
        h = Histogram("h", window=10)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100           # full-stream count survives
        assert h.quantile(0.0) == 90.0  # window keeps only the newest 10

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram("h").quantile(0.5))

    def test_bad_quantile_raises(self):
        with pytest.raises(ConfigError):
            Histogram("h").quantile(1.5)


class TestEwmaTimer:
    def test_first_update_seeds_ewma(self):
        t = EwmaTimer("t")
        t.update(2.0)
        assert t.ewma == 2.0
        assert t.last == 2.0
        assert t.count == 1

    def test_ewma_tracks_drift(self):
        t = EwmaTimer("t", alpha=0.5)
        t.update(0.0)
        t.update(1.0)
        assert t.ewma == 0.5
        assert t.total == 1.0
        assert t.mean == 0.5

    def test_time_context_manager(self):
        t = EwmaTimer("t")
        with t.time():
            pass
        assert t.count == 1
        assert t.last >= 0.0

    def test_bad_alpha_raises(self):
        with pytest.raises(ConfigError):
            EwmaTimer("t", alpha=0.0)


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(2)
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(3.0)
        reg.timer("d").update(0.1)
        data = reg.snapshot()
        json.dumps(data)
        assert data["a"] == 2.0
        assert data["c"]["count"] == 1

    def test_flat_snapshot_dotted_keys(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h").observe(1.0)
        flat = reg.flat_snapshot()
        assert flat["a"] == 1.0
        assert flat["h.count"] == 1

    def test_reset_keeps_names(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(5)
        reg.reset()
        assert reg.names() == ["a"]
        assert reg.counter("a").snapshot() == 0.0

    def test_render_table(self):
        reg = MetricsRegistry()
        reg.counter("calls").inc(3)
        reg.timer("step_s").update(0.25)
        table = reg.render_table()
        assert "calls" in table
        assert "step_s" in table

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestCrossProcessMerge:
    """typed_snapshot/merge_typed: the worker ship-back contract."""

    def make_source(self):
        src = MetricsRegistry()
        src.counter("jobs").inc(3)
        src.gauge("loss").set(0.5)
        for v in (1.0, 2.0, 3.0):
            src.histogram("sizes").observe(v)
        src.timer("step_s").update(0.25)
        src.timer("step_s").update(0.35)
        return src

    def test_counters_add_gauges_overwrite(self):
        dst = MetricsRegistry()
        dst.counter("jobs").inc(1)
        dst.gauge("loss").set(9.0)
        dst.merge_typed(self.make_source().typed_snapshot())
        assert dst.counter("jobs").snapshot() == 4.0
        assert dst.gauge("loss").snapshot() == 0.5

    def test_histogram_and_timer_fold(self):
        dst = MetricsRegistry()
        dst.histogram("sizes").observe(10.0)
        dst.merge_typed(self.make_source().typed_snapshot())
        snap = dst.histogram("sizes").snapshot()
        assert snap["count"] == 4
        assert snap["min"] == 1.0 and snap["max"] == 10.0
        timer = dst.timer("step_s").snapshot()
        assert timer["count"] == 2
        assert timer["sum"] == pytest.approx(0.6)

    def test_zero_count_snapshots_do_not_create_metrics(self):
        # a worker that registered names but observed nothing (e.g. a
        # forked child after reset()) must not leave NaN-valued ghosts
        src = MetricsRegistry()
        src.histogram("ghost_h")
        src.timer("ghost_t")
        src.gauge("ghost_g")
        src.counter("ghost_c")
        dst = MetricsRegistry()
        dst.merge_typed(src.typed_snapshot())
        assert dst.snapshot() == {}

    def test_merged_registry_roundtrips_through_json(self):
        dst = MetricsRegistry()
        dst.merge_typed(self.make_source().typed_snapshot())
        flat = dst.flat_snapshot()
        assert flat == json.loads(json.dumps(flat))  # no NaN anywhere

    def test_merge_only_histogram_quantiles_fall_back_to_mean(self):
        dst = MetricsRegistry()
        dst.merge_typed(self.make_source().typed_snapshot())
        snap = dst.histogram("sizes").snapshot()
        assert snap["p50"] == pytest.approx(snap["mean"])
        assert not any(math.isnan(v) for v in snap.values())
