"""Span tracing: nesting, recorder queries, JSONL + Chrome-trace export."""

import json
import time

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import (
    TraceRecorder,
    get_recorder,
    recording,
    set_recorder,
    span,
    timed_stage,
)


class TestDisabledFastPath:
    def test_span_without_recorder_is_noop(self):
        assert get_recorder() is None
        with span("nothing", attr=1) as s:
            assert s is None

    def test_noop_object_is_shared(self):
        assert span("a") is span("b")


class TestRecording:
    def test_records_span_with_attrs(self):
        with recording() as recorder:
            with span("work", phase="test"):
                pass
        assert len(recorder) == 1
        record = recorder.spans[0]
        assert record.name == "work"
        assert record.attrs == {"phase": "test"}
        assert record.duration >= 0.0

    def test_nesting_depths(self):
        with recording() as recorder:
            with span("outer"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        by_name = {s.name: s for s in recorder.spans}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert len(recorder.roots()) == 1
        # inner spans complete (and are appended) before outer
        assert [s.name for s in recorder.spans] == ["inner", "inner", "outer"]

    def test_inner_spans_within_outer_interval(self):
        with recording() as recorder:
            with span("outer"):
                with span("inner"):
                    time.sleep(0.001)
        inner = recorder.by_name("inner")[0]
        outer = recorder.by_name("outer")[0]
        assert outer.start <= inner.start
        assert inner.end <= outer.end + 1e-9
        assert recorder.total_time("inner") <= recorder.total_time("outer")

    def test_recording_restores_previous_recorder(self):
        outer_recorder = TraceRecorder()
        set_recorder(outer_recorder)
        try:
            with recording():
                assert get_recorder() is not outer_recorder
            assert get_recorder() is outer_recorder
        finally:
            set_recorder(None)

    def test_exception_still_records_span(self):
        try:
            with recording() as recorder:
                with span("boom"):
                    raise ValueError("x")
        except ValueError:
            pass
        assert len(recorder.by_name("boom")) == 1


class TestExport:
    def make_recorder(self):
        with recording() as recorder:
            with span("a", k="v"):
                with span("b"):
                    pass
        return recorder

    def test_jsonl_roundtrip(self, tmp_path):
        recorder = self.make_recorder()
        path = tmp_path / "trace.jsonl"
        recorder.to_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 2
        assert {line["name"] for line in lines} == {"a", "b"}
        assert all("duration" in line and "depth" in line for line in lines)

    def test_chrome_trace_structure(self):
        trace = self.make_recorder().chrome_trace()
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 2
        for event in events:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        named = {e["name"]: e for e in events}
        assert named["a"]["args"] == {"k": "v"}

    def test_chrome_trace_metadata_lanes(self):
        trace = self.make_recorder().chrome_trace()
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in meta}
        assert {"process_name", "process_sort_index", "thread_name"} <= names
        proc = next(e for e in meta if e["name"] == "process_name")
        assert proc["args"]["name"] == "repro main"

    def test_chrome_trace_file_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self.make_recorder().to_chrome_trace(path)
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded


class TestTimedStage:
    def test_updates_timer_and_span(self):
        registry = MetricsRegistry()
        with recording() as recorder:
            with timed_stage("stage.x", registry=registry, tag="t"):
                pass
        assert registry.timer("stage.x_s").count == 1
        assert len(recorder.by_name("stage.x")) == 1

    def test_timer_updates_even_without_recorder(self):
        registry = MetricsRegistry()
        with timed_stage("stage.y", registry=registry):
            pass
        assert registry.timer("stage.y_s").count == 1


class TestExceptionUnwind:
    def test_nested_spans_unwind_through_exception(self):
        """A raise deep inside a span stack closes every level, and the
        next span opens back at depth 0 (the stack fully unwound)."""
        with recording() as recorder:
            try:
                with span("outer"):
                    with span("middle"):
                        with span("inner"):
                            raise RuntimeError("deep failure")
            except RuntimeError:
                pass
            with span("after"):
                pass
        by_name = {s.name: s for s in recorder.spans}
        assert set(by_name) == {"outer", "middle", "inner", "after"}
        assert by_name["inner"].depth == 2
        assert by_name["middle"].depth == 1
        assert by_name["outer"].depth == 0
        assert by_name["after"].depth == 0
        # every span closed: end times are set and nested intervals hold
        assert by_name["inner"].end <= by_name["middle"].end + 1e-9
        assert by_name["middle"].end <= by_name["outer"].end + 1e-9
