"""Lint: no new hard-coded ``dtype=np.float64`` in compute paths.

The compute dtype must come from :mod:`repro.precision`; a bare
``dtype=np.float64`` in a kernel or layer silently upcasts float32
training and forfeits the policy's speedup.  Metric, decoder and
finite-difference modules are deliberately pinned to float64 (see
``precision.METRICS_DTYPE``) and whitelisted below.
"""

import pathlib
import re

import repro

PATTERN = re.compile(r"dtype\s*=\s*np\.float64")

#: Modules allowed to pin float64: paper-table metrics, the decoder,
#: the float64 finite-difference oracle, and analysis/monitoring code
#: whose numbers must not move with the compute policy.
WHITELIST = {
    "attacks/correlated.py",
    "attacks/decoder.py",
    "attacks/membership.py",
    "autograd/grad_check.py",
    "datasets/transforms.py",
    "metrics/distribution.py",
    "metrics/mape.py",
    "metrics/psnr.py",
    "metrics/ssim.py",
    "monitor/probes.py",
    "preprocessing/stats.py",
    "quantization/target_correlated.py",
    "viz.py",
}


def _package_root() -> pathlib.Path:
    return pathlib.Path(repro.__file__).parent


def test_no_new_float64_literals_outside_whitelist():
    root = _package_root()
    offenders = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel in WHITELIST:
            continue
        if PATTERN.search(path.read_text(encoding="utf-8")):
            offenders.append(rel)
    assert not offenders, (
        "hard-coded dtype=np.float64 outside the metrics whitelist "
        f"(use repro.precision instead): {offenders}"
    )


def test_whitelist_entries_are_live():
    # a whitelisted file that no longer pins float64 should drop off
    # the list, so the lint stays meaningful
    root = _package_root()
    stale = []
    for rel in sorted(WHITELIST):
        path = root / rel
        if not path.exists() or not PATTERN.search(
                path.read_text(encoding="utf-8")):
            stale.append(rel)
    assert not stale, f"whitelist entries without float64 literals: {stale}"
