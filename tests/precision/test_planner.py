"""The autograd tape memory planner: release, retain, recycle, report."""

import numpy as np
import pytest

from repro import backend as B
from repro.autograd import functional as F, last_tape_stats
from repro.autograd.tensor import Tensor
from repro.errors import GradientError


def _conv_loss(seed=3):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.standard_normal((2, 2, 8, 8)).astype(np.float32),
               requires_grad=True)
    w = Tensor(rng.standard_normal((3, 2, 3, 3)).astype(np.float32),
               requires_grad=True)
    loss = F.sum(F.max_pool2d(F.relu(F.conv2d(x, w, padding=1)), 2))
    return x, w, loss


class TestRelease:
    def test_saved_state_released_after_backward(self):
        x, w, loss = _conv_loss()
        conv_fn = None
        node = loss
        while node._creator is not None:
            conv_fn = node._creator
            node = conv_fn.inputs[0]
        assert conv_fn.saved_arrays(), "conv should have saved arrays"
        loss.backward()
        assert conv_fn.released
        assert conv_fn.saved == ()
        assert conv_fn.saved_arrays() == ()

    def test_second_backward_raises_without_retain(self):
        _, _, loss = _conv_loss()
        loss.backward()
        with pytest.raises(GradientError, match="retain_graph"):
            loss.backward()

    def test_retain_graph_allows_double_backward(self):
        x, w, loss = _conv_loss()
        loss.backward(retain_graph=True)
        first = (x.grad.copy(), w.grad.copy())
        loss.backward(retain_graph=True)
        np.testing.assert_allclose(x.grad, 2.0 * first[0], rtol=1e-6)
        np.testing.assert_allclose(w.grad, 2.0 * first[1], rtol=1e-6)
        # a final non-retaining pass releases and still accumulates
        loss.backward()
        np.testing.assert_allclose(w.grad, 3.0 * first[1], rtol=1e-6)

    def test_extra_saved_attributes_released(self):
        x = Tensor(np.random.default_rng(0).standard_normal(
            (1, 2, 6, 6)).astype(np.float32), requires_grad=True)
        out = F.max_pool2d(x, 2)
        pool_fn = out._creator
        assert pool_fn._argmax is not None
        F.sum(out).backward()
        assert pool_fn._argmax is None
        assert pool_fn.released


class TestStats:
    def test_stats_recorded(self):
        _, _, loss = _conv_loss()
        loss.backward()
        stats = last_tape_stats()
        assert stats is not None
        assert stats.functions > 0
        assert stats.total_saved_bytes > 0
        assert stats.released_bytes == stats.total_saved_bytes
        assert 0 < stats.peak_live_bytes <= stats.unplanned_peak_bytes
        assert 0.0 <= stats.peak_reduction < 1.0

    def test_retained_graph_releases_nothing(self):
        _, _, loss = _conv_loss()
        loss.backward(retain_graph=True)
        stats = last_tape_stats()
        assert stats.released_bytes == 0

    def test_gauges_published(self):
        from repro.telemetry.metrics import default_registry

        _, _, loss = _conv_loss()
        loss.backward()
        registry = default_registry()
        stats = last_tape_stats()
        assert registry.gauge("autograd.live_saved_bytes").snapshot() == \
            float(stats.peak_live_bytes)
        assert registry.gauge("autograd.saved_bytes_total").snapshot() == \
            float(stats.total_saved_bytes)
        assert registry.gauge("autograd.unplanned_peak_bytes").snapshot() == \
            float(stats.unplanned_peak_bytes)

    def test_memory_probe_reports_tape_stats(self):
        from repro.monitor.probes import ProbeContext
        from repro.monitor.system import MemoryProbe
        from repro.nn.layers import Linear

        _, _, loss = _conv_loss()
        loss.backward()
        values = MemoryProbe().observe(
            ProbeContext(model=Linear(2, 2), epoch=0))
        assert "tape_live_peak_mib" in values
        assert "tape_unplanned_peak_mib" in values
        assert values["tape_live_peak_mib"] <= values["tape_unplanned_peak_mib"]
        assert 0.0 <= values["tape_peak_reduction"] < 1.0


class TestRecycling:
    def test_fast_backend_recycles_gradient_buffers(self):
        with B.use_backend("fast"):
            _, _, loss = _conv_loss()
            loss.backward()
            stats = last_tape_stats()
        assert stats.recycled_buffers > 0
        assert stats.recycled_bytes > 0

    def test_reference_backend_never_recycles(self):
        with B.use_backend("reference"):
            _, _, loss = _conv_loss()
            loss.backward()
            stats = last_tape_stats()
        assert stats.recycled_buffers == 0

    def test_recycling_does_not_change_gradients(self):
        grads = {}
        for name in ("reference", "fast"):
            with B.use_backend(name):
                x, w, loss = _conv_loss(seed=9)
                loss.backward()
                grads[name] = (x.grad.copy(), w.grad.copy())
        np.testing.assert_allclose(grads["fast"][0], grads["reference"][0],
                                   rtol=1e-4, atol=1e-6)
        np.testing.assert_allclose(grads["fast"][1], grads["reference"][1],
                                   rtol=1e-4, atol=1e-6)

    def test_shared_gradient_object_not_recycled_too_early(self):
        # Add.backward hands the SAME array to both parents; each parent
        # feeds a different chain.  If the buffer were recycled after
        # the first consumer, the second chain would read poisoned data.
        with B.use_backend("fast"):
            rng = np.random.default_rng(5)
            a = Tensor(rng.standard_normal((16, 16)).astype(np.float32),
                       requires_grad=True)
            b = Tensor(rng.standard_normal((16, 16)).astype(np.float32),
                       requires_grad=True)
            left = F.mul(a, Tensor(np.float32(2.0)))
            right = F.mul(b, Tensor(np.float32(3.0)))
            loss = F.sum(F.add(left, right))
            loss.backward()
            np.testing.assert_allclose(a.grad, np.full((16, 16), 2.0,
                                                       dtype=np.float32))
            np.testing.assert_allclose(b.grad, np.full((16, 16), 3.0,
                                                       dtype=np.float32))


class TestTrainingWithPlanner:
    def test_small_training_step_matches_across_backends(self):
        from repro.nn.layers import Conv2d, Flatten, Linear
        from repro.nn.losses import CrossEntropyLoss
        from repro.nn.module import Module

        class Tiny(Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(21)
                self.conv = Conv2d(1, 2, 3, rng=rng)
                self.flat = Flatten()
                self.fc = Linear(2 * 4 * 4, 3, rng=rng)

            def forward(self, x):
                return self.fc(self.flat(F.relu(self.conv(x))))

        rng = np.random.default_rng(2)
        inputs = rng.standard_normal((4, 1, 6, 6)).astype(np.float32)
        labels = rng.integers(0, 3, size=4)
        results = {}
        for name in ("reference", "fast"):
            with B.use_backend(name):
                model = Tiny()
                loss = CrossEntropyLoss()(model(Tensor(inputs)), labels)
                model.zero_grad()
                loss.backward()
                results[name] = [p.grad.copy() for p in model.parameters()]
        for g_fast, g_ref in zip(results["fast"], results["reference"]):
            np.testing.assert_allclose(g_fast, g_ref, rtol=1e-4, atol=1e-6)
