"""Paper-table metrics must not move with the compute-dtype policy.

The decoder and every reported metric (PSNR/SSIM/MAPE, the Eq. 2
Pearson probe) accumulate in float64 internally, so decoding the same
released weights reports identical numbers whether the surrounding
process trains in float32 or float64.
"""

import numpy as np

from repro import precision
from repro.attacks.decoder import decode_images, decode_slice
from repro.attacks.secret import SecretPayload
from repro.metrics import batch_mape, batch_psnr, batch_ssim


def _payload(n=3, side=6, channels=1, seed=4):
    rng = np.random.default_rng(seed)
    images = rng.integers(0, 256, size=(n, side, side, channels),
                          dtype=np.uint8)
    labels = rng.integers(0, 4, size=n).astype(np.int64)
    return SecretPayload(images, labels)


class TestDecoderPinned:
    def test_decode_identical_under_both_policies(self):
        payload = _payload()
        rng = np.random.default_rng(8)
        weights32 = rng.standard_normal(payload.total_pixels).astype(np.float32)
        with precision.use_dtype("float32"):
            rec32 = decode_images(weights32, payload)
        with precision.use_dtype("float64"):
            rec64 = decode_images(weights32, payload)
        np.testing.assert_array_equal(rec32, rec64)

    def test_float64_view_of_float32_weights_decodes_identically(self):
        # a float32-trained model and its float64 cast hold the same
        # values, so the decode -- pinned to float64 internally -- must
        # be bit-identical
        payload = _payload(seed=5)
        rng = np.random.default_rng(9)
        weights32 = rng.standard_normal(payload.total_pixels).astype(np.float32)
        rec_from_32 = decode_images(weights32, payload)
        rec_from_64 = decode_images(weights32.astype(np.float64), payload)
        np.testing.assert_array_equal(rec_from_32, rec_from_64)

    def test_decode_slice_pinned(self):
        values = np.random.default_rng(1).standard_normal(12).astype(np.float32)
        a = decode_slice(values, (2, 2, 3), polarity="pos")
        b = decode_slice(values.astype(np.float64), (2, 2, 3), polarity="pos")
        np.testing.assert_array_equal(a, b)


class TestMetricsPinned:
    def test_metrics_identical_to_1e9_across_policies(self):
        payload = _payload(seed=6)
        rng = np.random.default_rng(10)
        weights32 = rng.standard_normal(payload.total_pixels).astype(np.float32)
        reports = {}
        for name in ("float32", "float64"):
            with precision.use_dtype(name):
                rec = decode_images(weights32, payload)
                reports[name] = (
                    batch_psnr(payload.images, rec),
                    batch_ssim(payload.images, rec),
                    batch_mape(payload.images, rec),
                )
        for a, b in zip(reports["float32"], reports["float64"]):
            np.testing.assert_allclose(a, b, rtol=0, atol=1e-9)
            assert np.asarray(a).dtype == precision.METRICS_DTYPE

    def test_pearson_probe_pinned_to_float64(self):
        from repro.attacks.correlated import CorrelationPenalty
        from repro.nn.module import Parameter

        rng = np.random.default_rng(11)
        secret = rng.integers(0, 256, size=64).astype(np.float64)
        values64 = rng.standard_normal(64)
        expected = CorrelationPenalty(
            [Parameter(values64, dtype=np.float64)], secret, rate=1.0
        ).correlation_value()
        # the float32 model carries rounded weights; the probe itself
        # still accumulates in float64, so the only difference is the
        # float32 rounding of the weights (~1e-7 relative), far inside
        # the 1e-4 agreement the pinning is meant to guarantee
        with precision.use_dtype("float32"):
            got = CorrelationPenalty(
                [Parameter(values64)], secret, rate=1.0
            ).correlation_value()
        assert isinstance(got, float)
        np.testing.assert_allclose(got, expected, atol=1e-5)

    def test_penalty_graph_matches_parameter_dtype(self):
        from repro.attacks.correlated import CorrelationPenalty
        from repro.nn.module import Parameter

        rng = np.random.default_rng(12)
        secret = rng.integers(0, 256, size=32).astype(np.float64)
        with precision.use_dtype("float32"):
            penalty = CorrelationPenalty(
                [Parameter(rng.standard_normal(32))], secret, rate=2.0)
            term = penalty()
            assert term.dtype == np.float32
        with precision.use_dtype("float64"):
            penalty64 = CorrelationPenalty(
                [Parameter(rng.standard_normal(32))], secret, rate=2.0)
            assert penalty64().dtype == np.float64
