"""The compute-dtype policy and where it takes hold of the stack."""

import numpy as np
import pytest

from repro import precision
from repro.autograd.tensor import Tensor
from repro.errors import ConfigError
from repro.nn.dataloader import DataLoader
from repro.nn.module import Module, Parameter


class TestPolicy:
    def test_default_is_float32(self):
        assert precision.default_dtype() == np.dtype(np.float32)

    def test_use_dtype_scopes_and_restores(self):
        before = precision.default_dtype()
        with precision.use_dtype("float64") as active:
            assert active == np.dtype(np.float64)
            assert precision.default_dtype() == np.dtype(np.float64)
            with precision.use_dtype(np.float32):
                assert precision.default_dtype() == np.dtype(np.float32)
            assert precision.default_dtype() == np.dtype(np.float64)
        assert precision.default_dtype() == before

    def test_use_dtype_restores_on_exception(self):
        before = precision.default_dtype()
        with pytest.raises(RuntimeError):
            with precision.use_dtype("float64"):
                raise RuntimeError("boom")
        assert precision.default_dtype() == before

    def test_none_is_a_no_op(self):
        before = precision.default_dtype()
        assert precision.set_default_dtype(None) == before
        assert precision.default_dtype() == before
        with precision.use_dtype(None):
            assert precision.default_dtype() == before

    def test_set_returns_previous(self):
        previous = precision.set_default_dtype("float64")
        try:
            assert previous == np.dtype(np.float32)
            assert precision.default_dtype() == np.dtype(np.float64)
        finally:
            precision.set_default_dtype(previous)

    @pytest.mark.parametrize("bad", ["banana", object()])
    def test_invalid_dtype_rejected(self, bad):
        with pytest.raises(ConfigError, match="not a dtype"):
            precision.normalize_dtype(bad)

    @pytest.mark.parametrize("unsupported", [np.float16, np.int32, np.complex128])
    def test_unsupported_dtype_rejected(self, unsupported):
        with pytest.raises(ConfigError, match="unsupported compute dtype"):
            precision.normalize_dtype(unsupported)

    def test_resolve(self):
        assert precision.resolve(None) == precision.default_dtype()
        assert precision.resolve("float64") == np.dtype(np.float64)
        with pytest.raises(ConfigError):
            precision.resolve("int8")

    def test_metrics_dtype_is_float64(self):
        assert precision.METRICS_DTYPE == np.dtype(np.float64)


class TestTensorConstruction:
    def test_scalar_and_list_follow_policy(self):
        assert Tensor(1.5).dtype == np.float32
        assert Tensor([1.0, 2.0]).dtype == np.float32
        with precision.use_dtype("float64"):
            assert Tensor(1.5).dtype == np.float64
            assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_int_and_bool_promote_to_policy(self):
        assert Tensor(3).dtype == np.float32
        assert Tensor(np.arange(4)).dtype == np.float32
        assert Tensor(np.array([True, False])).dtype == np.float32
        with precision.use_dtype("float64"):
            assert Tensor(np.arange(4)).dtype == np.float64

    def test_explicit_float_ndarray_keeps_its_dtype(self):
        assert Tensor(np.ones(3, dtype=np.float64)).dtype == np.float64
        assert Tensor(np.ones(3, dtype=np.float32)).dtype == np.float32
        with precision.use_dtype("float64"):
            assert Tensor(np.ones(3, dtype=np.float32)).dtype == np.float32

    def test_explicit_dtype_argument_wins(self):
        assert Tensor([1, 2], dtype=np.float64).dtype == np.float64
        assert Tensor(np.ones(2), dtype=np.float32).dtype == np.float32


class TestModulePolicy:
    def test_parameter_follows_policy(self):
        assert Parameter(np.ones(3, dtype=np.float64)).data.dtype == np.float32
        assert Parameter([1.0, 2.0]).data.dtype == np.float32
        with precision.use_dtype("float64"):
            assert Parameter(np.ones(3)).data.dtype == np.float64

    def test_parameter_explicit_dtype_wins(self):
        assert Parameter(np.ones(3), dtype=np.float64).data.dtype == np.float64

    def test_buffers_follow_policy(self):
        module = Module()
        module.register_buffer("stat", np.zeros(4))
        assert module.stat.dtype == np.float32
        module.register_buffer("ids", np.arange(4))
        assert module.ids.dtype.kind == "i"  # non-float buffers untouched

    def test_layer_parameters_are_float32_by_default(self):
        from repro.nn.layers import Conv2d, Linear
        from repro.nn.norm import BatchNorm2d

        for module in (Linear(4, 2), Conv2d(2, 3, 3), BatchNorm2d(3)):
            for param in module.parameters():
                assert param.data.dtype == np.float32, type(module).__name__


class TestDataLoaderPolicy:
    def test_batches_materialize_at_policy_dtype(self):
        inputs = np.random.default_rng(0).standard_normal((8, 2, 4, 4))
        labels = np.arange(8) % 2
        batches = [b for b, _ in DataLoader(inputs, labels, batch_size=4,
                                            shuffle=False)]
        assert all(b.dtype == np.float32 for b in batches)

    def test_labels_never_cast(self):
        inputs = np.random.default_rng(0).standard_normal((6, 3))
        labels = np.arange(6)
        for _, lab in DataLoader(inputs, labels, batch_size=3, shuffle=False):
            assert lab.dtype == labels.dtype

    def test_explicit_dtype_overrides_policy(self):
        inputs = np.random.default_rng(0).standard_normal((6, 3))
        labels = np.arange(6)
        loader = DataLoader(inputs, labels, batch_size=3, shuffle=False,
                            dtype="float64")
        assert all(b.dtype == np.float64 for b, _ in loader)

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ConfigError):
            DataLoader(np.ones((4, 2)), np.arange(4), batch_size=2,
                       dtype="int64")

    def test_float64_policy_keeps_batches_float64(self):
        inputs = np.random.default_rng(0).standard_normal((6, 3))
        with precision.use_dtype("float64"):
            loader = DataLoader(inputs, np.arange(6), batch_size=3,
                                shuffle=False)
            assert all(b.dtype == np.float64 for b, _ in loader)


class TestKernelDtypePreservation:
    def test_forward_backward_stays_float32(self):
        from repro import backend as B
        from repro.autograd import functional as F

        for name in ("reference", "fast"):
            with B.use_backend(name):
                x = Tensor(np.random.default_rng(1).standard_normal(
                    (2, 2, 6, 6)).astype(np.float32), requires_grad=True)
                w = Tensor(np.random.default_rng(2).standard_normal(
                    (3, 2, 3, 3)).astype(np.float32), requires_grad=True)
                out = F.max_pool2d(F.conv2d(x, w, padding=1).relu(), 2)
                assert out.dtype == np.float32, name
                out.sum().backward()
                assert x.grad.dtype == np.float32, name
                assert w.grad.dtype == np.float32, name
