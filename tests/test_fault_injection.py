"""Failure-injection tests: corrupted inputs must fail loudly, not silently.

A reproduction library gets used at 2am with the wrong file paths and
half-broken configs; every failure here should be a clear library error
(ReproError subclass) or a clean numpy exception -- never silent
corruption.
"""

import numpy as np
import pytest

from repro.errors import DatasetError, GradientError, QuantizationError, ReproError


class TestCorruptedStateDicts:
    def test_truncated_npz(self, tmp_path):
        from repro.models.mlp import MLP
        from repro.nn import load_state
        path = tmp_path / "broken.npz"
        path.write_bytes(b"PK\x03\x04 this is not a real archive")
        model = MLP([4, 2], rng=np.random.default_rng(0))
        with pytest.raises(Exception):
            load_state(model, path)

    def test_state_from_different_architecture(self, tmp_path):
        from repro.models.mlp import MLP
        from repro.nn import load_state, save_state
        big = MLP([8, 8, 2], rng=np.random.default_rng(0))
        small = MLP([4, 2], rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_state(big, path)
        with pytest.raises(ReproError):
            load_state(small, path)


class TestNaNPropagation:
    def test_trainer_raises_on_nan(self):
        from repro.models.mlp import MLP
        from repro.pipeline import Trainer, TrainingConfig
        model = MLP([4, 2], rng=np.random.default_rng(0))
        model.fc0.weight.data[0, 0] = np.inf
        trainer = Trainer(model, np.ones((8, 4)), np.zeros(8, dtype=int),
                          TrainingConfig(epochs=1))
        with pytest.raises(GradientError):
            trainer.train()

    def test_quantizer_with_nan_weights(self):
        # NaN weights produce NaN codebooks rather than silently clamping;
        # validate() still passes structure, but downstream training
        # raises -- verify the quantizer at least doesn't crash cryptically.
        from repro.quantization import UniformQuantizer
        weights = np.array([1.0, np.nan, 2.0])
        codebook, assignment = UniformQuantizer(levels=2).quantize_vector(weights)
        assert assignment.shape == weights.shape


class TestMisusedAPIs:
    def test_decode_wrong_image_shape(self):
        from repro.attacks import decode_slice
        from repro.errors import CapacityError
        with pytest.raises(CapacityError):
            decode_slice(np.zeros(10), (4, 4, 3))

    def test_dataset_non_uint8(self):
        from repro.datasets import ImageDataset
        with pytest.raises(DatasetError):
            ImageDataset(np.zeros((2, 4, 4, 1), dtype=np.float32), np.zeros(2))

    def test_quantize_empty_model_selection(self):
        from repro.models.mlp import MLP
        from repro.quantization import WeightedEntropyQuantizer
        model = MLP([4, 2], rng=np.random.default_rng(0))
        with pytest.raises(QuantizationError):
            WeightedEntropyQuantizer(4).quantize_model(model, names=[])

    def test_attack_config_catches_reversed_ranges(self):
        from repro.attacks import group_by_layer_ranges
        from repro.errors import ConfigError
        from repro.models.mlp import MLP
        model = MLP([4, 4, 2], rng=np.random.default_rng(0))
        with pytest.raises(ConfigError):
            group_by_layer_ranges(model, ((2, 1),), (1.0,))

    def test_sweep_with_failing_experiment_propagates(self):
        from repro.pipeline import Sweep

        def boom(x):
            raise RuntimeError("experiment exploded")

        with pytest.raises(RuntimeError):
            Sweep({"x": [1]}, boom).run()

    def test_dataloader_rejects_scalar_labels(self):
        from repro.nn import DataLoader
        with pytest.raises(Exception):
            DataLoader(np.zeros((3, 2)), np.zeros(()))


class TestErrorHierarchy:
    def test_all_library_errors_catchable_as_repro_error(self):
        from repro import errors
        for name in ("ShapeError", "GradientError", "CapacityError",
                     "QuantizationError", "DatasetError", "ConfigError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_library_raises_repro_errors_not_bare_asserts(self):
        """A sampling of misuse paths all raise from the hierarchy."""
        from repro.attacks import SecretPayload
        from repro.errors import CapacityError
        with pytest.raises(CapacityError):
            SecretPayload(np.zeros((2, 2, 2), dtype=np.uint8), np.zeros(2))
