"""Failure-injection tests: corrupted inputs must fail loudly, not silently.

A reproduction library gets used at 2am with the wrong file paths and
half-broken configs; every failure here should be a clear library error
(ReproError subclass) or a clean numpy exception -- never silent
corruption.
"""

import numpy as np
import pytest

from repro.errors import DatasetError, GradientError, QuantizationError, ReproError


class TestCorruptedStateDicts:
    def test_truncated_npz(self, tmp_path):
        from repro.models.mlp import MLP
        from repro.nn import load_state
        path = tmp_path / "broken.npz"
        path.write_bytes(b"PK\x03\x04 this is not a real archive")
        model = MLP([4, 2], rng=np.random.default_rng(0))
        with pytest.raises(Exception):
            load_state(model, path)

    def test_state_from_different_architecture(self, tmp_path):
        from repro.models.mlp import MLP
        from repro.nn import load_state, save_state
        big = MLP([8, 8, 2], rng=np.random.default_rng(0))
        small = MLP([4, 2], rng=np.random.default_rng(0))
        path = tmp_path / "model.npz"
        save_state(big, path)
        with pytest.raises(ReproError):
            load_state(small, path)


class TestNaNPropagation:
    def test_trainer_raises_on_nan(self):
        from repro.models.mlp import MLP
        from repro.pipeline import Trainer, TrainingConfig
        model = MLP([4, 2], rng=np.random.default_rng(0))
        model.fc0.weight.data[0, 0] = np.inf
        trainer = Trainer(model, np.ones((8, 4)), np.zeros(8, dtype=int),
                          TrainingConfig(epochs=1))
        with pytest.raises(GradientError):
            trainer.train()

    def test_quantizer_with_nan_weights(self):
        # NaN weights produce NaN codebooks rather than silently clamping;
        # validate() still passes structure, but downstream training
        # raises -- verify the quantizer at least doesn't crash cryptically.
        from repro.quantization import UniformQuantizer
        weights = np.array([1.0, np.nan, 2.0])
        codebook, assignment = UniformQuantizer(levels=2).quantize_vector(weights)
        assert assignment.shape == weights.shape


class TestMisusedAPIs:
    def test_decode_wrong_image_shape(self):
        from repro.attacks import decode_slice
        from repro.errors import CapacityError
        with pytest.raises(CapacityError):
            decode_slice(np.zeros(10), (4, 4, 3))

    def test_dataset_non_uint8(self):
        from repro.datasets import ImageDataset
        with pytest.raises(DatasetError):
            ImageDataset(np.zeros((2, 4, 4, 1), dtype=np.float32), np.zeros(2))

    def test_quantize_empty_model_selection(self):
        from repro.models.mlp import MLP
        from repro.quantization import WeightedEntropyQuantizer
        model = MLP([4, 2], rng=np.random.default_rng(0))
        with pytest.raises(QuantizationError):
            WeightedEntropyQuantizer(4).quantize_model(model, names=[])

    def test_attack_config_catches_reversed_ranges(self):
        from repro.attacks import group_by_layer_ranges
        from repro.errors import ConfigError
        from repro.models.mlp import MLP
        model = MLP([4, 4, 2], rng=np.random.default_rng(0))
        with pytest.raises(ConfigError):
            group_by_layer_ranges(model, ((2, 1),), (1.0,))

    def test_sweep_with_failing_experiment_propagates(self):
        from repro.pipeline import Sweep

        def boom(x):
            raise RuntimeError("experiment exploded")

        with pytest.raises(RuntimeError):
            Sweep({"x": [1]}, boom).run()

    def test_dataloader_rejects_scalar_labels(self):
        from repro.nn import DataLoader
        with pytest.raises(Exception):
            DataLoader(np.zeros((3, 2)), np.zeros(()))


class TestErrorHierarchy:
    def test_all_library_errors_catchable_as_repro_error(self):
        from repro import errors
        for name in ("ShapeError", "GradientError", "CapacityError",
                     "QuantizationError", "DatasetError", "ConfigError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_library_raises_repro_errors_not_bare_asserts(self):
        """A sampling of misuse paths all raise from the hierarchy."""
        from repro.attacks import SecretPayload
        from repro.errors import CapacityError
        with pytest.raises(CapacityError):
            SecretPayload(np.zeros((2, 2, 2), dtype=np.uint8), np.zeros(2))


class TestServingFaults:
    """Fault injection against the serving stack: broken artifacts,
    dying shards, and overloaded servers must all resolve to structured
    errors, never hangs or silent corruption."""

    KW = dict(num_classes=4, in_channels=3, width=4)

    def _artifact(self, tmp_path, name="released"):
        from repro.models.registry import build_model
        from repro.serve import save_artifact
        model = build_model("resnet8_tiny", rng=np.random.default_rng(0),
                            **self.KW)
        path = tmp_path / name
        save_artifact(model, path, "resnet8_tiny", model_kwargs=self.KW,
                      input_shape=(3, 8, 8))
        return path

    def test_tampered_artifact_weights_refuse_to_load(self, tmp_path):
        from repro.errors import ServeError
        from repro.serve import load_artifact
        path = self._artifact(tmp_path)
        with open(path / "weights.npz", "r+b") as fh:
            fh.seek(40)
            fh.write(b"\xff\xff\xff\xff")
        with pytest.raises(ServeError):
            load_artifact(path)

    def test_server_rejects_missing_artifact_at_startup(self, tmp_path):
        from repro.errors import ServeError
        from repro.serve import ModelServer
        with pytest.raises(ServeError):
            ModelServer({"m": tmp_path / "never_released"})

    def test_evicted_artifact_reloads_transparently(self, tmp_path):
        from repro.serve import ArtifactCache, load_artifact
        first = self._artifact(tmp_path, "a")
        second = self._artifact(tmp_path / "sub", "b")
        cache = ArtifactCache(capacity=1)
        before_model, _ = cache.get(first)
        cache.get(second)  # evicts `first` from the single slot
        after_model, _ = cache.get(first)  # must reload from disk, not fail
        assert after_model is not before_model
        want = load_artifact(first)[0].state_dict()
        got = after_model.state_dict()
        for key in want:
            np.testing.assert_array_equal(got[key], want[key])

    def test_shard_kill_mid_request_is_bounded_retry_then_error(
            self, tmp_path):
        import multiprocessing
        import time as _time
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        from repro.parallel import ShardPool
        from repro.telemetry.metrics import default_registry
        from tests.serve.test_shards import _make_handler

        respawns = default_registry().counter("serve.shard_respawns")
        respawns0 = respawns.value
        sentinel = str(tmp_path / "never_written")
        with ShardPool(_make_handler, shards=1, retries=1,
                       max_respawns=1) as pool:
            ticket = pool.submit({"block_unless": sentinel})
            deadline = _time.monotonic() + 5.0
            while _time.monotonic() < deadline and not pool.kill_shard(0):
                _time.sleep(0.02)
            # wait for the collector to respawn the slot and re-dispatch,
            # then kill the *respawned* shard too (respawn budget now spent)
            deadline = _time.monotonic() + 10.0
            while _time.monotonic() < deadline and respawns.value == respawns0:
                _time.sleep(0.02)
            assert respawns.value > respawns0, "slot was never respawned"
            deadline = _time.monotonic() + 10.0
            while _time.monotonic() < deadline and not pool.kill_shard(0):
                _time.sleep(0.02)
            result = pool.result(ticket, timeout=20)
            assert not result.ok
            assert result.error_kind == "crash"
            assert result.attempts == 2, "exactly one retry, then give up"

    def test_loadgen_survives_a_server_refusing_everything(self):
        import asyncio
        from repro.serve import InferenceResponse, LoadGenConfig, \
            generate_trace, run_loadgen

        class _Refuser:
            async def infer(self, **kwargs):
                return InferenceResponse(
                    request_id=str(kwargs.get("request_id")), ok=False,
                    error="queue full", error_kind="refused")

        trace = generate_trace(LoadGenConfig(seed=11, n_requests=8,
                                             rate_rps=2000.0))
        report = asyncio.run(run_loadgen(_Refuser(), trace))
        assert report.sent == 8
        assert report.refused == 8
        assert report.completed == 0
