"""End-to-end attack on the digits dataset (third data family)."""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.datasets import SyntheticDigitsConfig, make_synthetic_digits, train_test_split
from repro.models import SimpleCNN
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    TrainingConfig,
    run_quantized_correlation_attack,
)


class TestDigitsAttackFlow:
    @pytest.fixture(scope="class")
    def digits_attack(self):
        data = make_synthetic_digits(
            SyntheticDigitsConfig(num_images=250, image_size=20, seed=0)
        )
        train, test = train_test_split(data, test_fraction=0.2, seed=0)
        return run_quantized_correlation_attack(
            train, test,
            lambda: SimpleCNN(in_channels=1, num_classes=10, image_size=20,
                              width=8, rng=np.random.default_rng(2)),
            TrainingConfig(epochs=12, batch_size=32, lr=0.05),
            # Encode only into fc1 (the wide hidden layer): the conv
            # stem is accuracy-critical and the classifier head (fc2)
            # must stay clean for the model to pass validation.
            AttackConfig(layer_ranges=((1, 2), (3, 3), (4, -1)),
                         rates=(0.0, 20.0, 0.0), std_window=8.0),
            QuantizationConfig(bits=4, method="target_correlated"),
        )

    def test_digits_encode_and_survive_quantization(self, digits_attack):
        quantized = digits_attack.quantized
        assert digits_attack.encoded_images >= 3
        assert quantized.accuracy > 0.6
        assert quantized.mean_mape < 60.0

    def test_reconstructed_digit_recognizable_by_eye_proxy(self, digits_attack):
        # SSIM proxy for "you can read the digit": the best reconstruction
        # must retain substantial stroke structure.
        quantized = digits_attack.quantized
        assert quantized.ssim_per_image.max() > 0.3

    def test_simple_cnn_supports_layer_grouping(self, digits_attack):
        groups = digits_attack.groups
        assert groups[0].payload is None      # zero-rate early group
        assert groups[1].payload is not None  # encoding group
