"""Golden attack-metric bands under data-parallel training.

The hard acceptance criterion for the DDP runtime: the full quantized
correlation attack, trained across 1/2/4 ranks, stays inside the same
golden bands as the serial seed run (``test_golden_pipeline.py``).
Per-rank batch-norm statistics make multi-rank runs drift slightly from
serial (classic DDP-without-sync-BN behaviour) but the drift must stay
well inside the bands -- and ``ddp_workers=1`` must not merely land in
the bands, it must reproduce the serial numbers *exactly*, proving the
serial code path is untouched.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar, train_test_split
from repro.metrics.psnr import batch_psnr
from repro.models import resnet8_tiny
from repro.parallel import ddp
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    TrainingConfig,
    run_quantized_correlation_attack,
)
from repro.telemetry.metrics import default_registry

from tests.integration.test_golden_pipeline import GOLDEN, within


def _golden_attack(ddp_workers):
    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=120, num_classes=4, image_size=16, seed=11)
    )
    train, test = train_test_split(data, test_fraction=0.2, seed=0)
    return run_quantized_correlation_attack(
        train, test,
        lambda: resnet8_tiny(num_classes=4, in_channels=3, width=8,
                             rng=np.random.default_rng(7)),
        TrainingConfig(epochs=6, batch_size=32, lr=0.08, seed=0),
        AttackConfig(layer_ranges=((1, 3), (4, -1)), rates=(0.0, 20.0),
                     std_window=8.0),
        QuantizationConfig(bits=4, method="target_correlated",
                           finetune_epochs=1),
        ddp_workers=ddp_workers,
    )


def _assert_in_bands(result):
    assert result.encoded_images == GOLDEN["encoded_images"]
    assert within(result.uncompressed.accuracy, GOLDEN["uncompressed_accuracy"])
    assert within(result.quantized.accuracy, GOLDEN["quantized_accuracy"])
    assert within(result.quantized.mean_ssim, GOLDEN["quantized_ssim"])
    assert within(result.quantized.mean_mape, GOLDEN["quantized_mape"])
    psnr = batch_psnr(result.quantized.originals,
                      result.quantized.reconstructions)
    assert np.isfinite(psnr).all()
    assert within(float(psnr.mean()), GOLDEN["quantized_psnr"])
    assert within(result.quantized.recognized_count,
                  GOLDEN["recognized_count"])


def test_ddp_workers_one_reproduces_serial_exactly():
    """world=1 takes the serial code path bit-for-bit."""
    serial = _golden_attack(ddp_workers=None)
    one = _golden_attack(ddp_workers=1)
    assert one.uncompressed.accuracy == serial.uncompressed.accuracy
    assert one.quantized.accuracy == serial.quantized.accuracy
    assert np.array_equal(one.quantized.reconstructions,
                          serial.quantized.reconstructions)
    _assert_in_bands(one)


@pytest.mark.skipif(not ddp.available(), reason="fork start method unavailable")
@pytest.mark.parametrize("world", [2, 4])
def test_ddp_attack_flow_stays_in_golden_bands(world):
    result = _golden_attack(ddp_workers=world)
    _assert_in_bands(result)
    # the run really was data-parallel, and it cleaned up after itself
    registry = default_registry()
    assert registry.gauge("ddp.workers").value == float(world)
    assert registry.counter("ddp.worker_steps").value > 0
    assert registry.gauge("ddp.shm_segments").value == 0.0
