"""Integration tests: the paper's core claims at miniature scale.

These reuse the session-scoped trained attack where possible; the
quantization comparisons reload its state so that training happens once.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.pipeline import QuantizationConfig, TrainingConfig
from repro.pipeline.baselines import quantize_and_finetune
from repro.pipeline.evaluation import evaluate_attack
from repro.datasets.transforms import images_to_batch, normalize_batch


COMPARISON_BITS = 3  # the paper's 4-bit point maps to 3-bit at this scale


@pytest.fixture(scope="module")
def quantization_comparison(trained_attack):
    """Quantize the same trained attack model with both quantizers at the
    low bit width where the defense effect appears on this substrate."""
    result = trained_attack["result"]
    train, test = trained_attack["train"], trained_attack["test"]
    state = result.model.state_dict()
    test_batch = images_to_batch(test.images)
    test_batch, _, _ = normalize_batch(test_batch, result.mean, result.std)

    outcomes = {}
    for method in ("target_correlated", "weighted_entropy"):
        result.model.load_state_dict(state)
        quantize_and_finetune(
            result.model,
            QuantizationConfig(bits=COMPARISON_BITS, method=method, finetune_epochs=1),
            train, TrainingConfig(epochs=1, batch_size=32, lr=0.08),
            result.mean, result.std, target_images=result.payload.images,
        )
        outcomes[method] = evaluate_attack(
            result.model, test_batch, test.labels, groups=result.groups,
            mean=result.mean, std=result.std,
        )
    result.model.load_state_dict(state)
    return outcomes


class TestPaperClaims:
    def test_weq_defense_degrades_attack(self, trained_attack, quantization_comparison):
        """Table I's claim: WEQ at low bits degrades the attack."""
        uncompressed = trained_attack["result"].uncompressed
        weq = quantization_comparison["weighted_entropy"]
        degraded_accuracy = weq.accuracy < uncompressed.accuracy - 0.05
        degraded_recognition = weq.recognized_count < uncompressed.recognized_count
        assert degraded_accuracy or degraded_recognition

    def test_target_correlated_beats_weq(self, quantization_comparison):
        """Fig. 4 / Table III: the adversary's quantizer wins on both axes."""
        ours = quantization_comparison["target_correlated"]
        weq = quantization_comparison["weighted_entropy"]
        assert ours.accuracy >= weq.accuracy
        assert ours.recognized_count >= weq.recognized_count

    def test_target_correlated_close_to_uncompressed(
        self, trained_attack, quantization_comparison
    ):
        """Table III: our 4-bit model stays near the uncompressed attack."""
        uncompressed = trained_attack["result"].uncompressed
        ours = quantization_comparison["target_correlated"]
        assert ours.accuracy > uncompressed.accuracy - 0.1
        assert ours.mean_mape < uncompressed.mean_mape + 8.0

    def test_distribution_shape_preserved(self, trained_attack, quantization_comparison):
        """Fig. 3: Algorithm 1 keeps the attacked weight distribution."""
        from repro.metrics import histogram_overlap
        result = trained_attack["result"]
        group = result.groups[1]
        weights = group.weight_vector()
        pixels = group.payload.secret_vector()
        # The trained (uncompressed) weights already mirror the pixels.
        assert histogram_overlap(weights, pixels, bins=24) > 0.5


class TestBenignVsAttack:
    def test_attack_reshapes_weight_distribution(self, trained_attack, cifar_splits):
        """Fig. 2a: the attack pushes weights towards the pixel distribution."""
        from repro.metrics import histogram_overlap
        from repro.pipeline.baselines import train_benign
        from tests.conftest import tiny_model_builder

        train, test = cifar_splits
        benign = train_benign(train, test, tiny_model_builder(),
                              TrainingConfig(epochs=3, batch_size=32))
        result = trained_attack["result"]
        group = result.groups[1]
        pixels = group.payload.secret_vector()

        from repro.models import parameter_vector
        benign_weights = parameter_vector(benign.model, group.param_names)
        attacked_weights = group.weight_vector()
        assert histogram_overlap(attacked_weights, pixels, bins=24) > \
            histogram_overlap(benign_weights, pixels, bins=24)


class TestFaceFlow:
    def test_face_attack_end_to_end(self, faces_small):
        """Miniature Table IV: faces encode and decode with texture."""
        from repro.datasets import train_test_split
        from repro.models import face_net_mini
        from repro.pipeline import AttackConfig, run_quantized_correlation_attack

        train, test = train_test_split(faces_small, test_fraction=0.25, seed=0)
        result = run_quantized_correlation_attack(
            train, test,
            lambda: face_net_mini(num_identities=8, width=8,
                                  rng=np.random.default_rng(3)),
            TrainingConfig(epochs=10, batch_size=16, lr=0.05),
            AttackConfig(layer_ranges=((1, 2), (3, -1)), rates=(0.0, 20.0),
                         std_window=10.0),
            QuantizationConfig(bits=3, method="target_correlated", finetune_epochs=1),
        )
        assert result.encoded_images >= 1
        assert result.quantized.mean_ssim > 0.1
        # 3-bit weights: at most 8 distinct values per quantized tensor.
        from repro.models import encodable_parameters
        for name, param in encodable_parameters(result.model):
            assert len(np.unique(param.data)) <= 8
