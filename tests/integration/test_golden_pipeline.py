"""Golden end-to-end regression: fixed-seed attack -> quantize -> decode.

Checked-in expected values (captured from the seed configuration below)
guard the paper's headline numbers -- accuracy, PSNR, SSIM, MAPE,
recognizability -- against silent regression anywhere in the pipeline.
Bands are wide enough to absorb BLAS/platform float drift but far
tighter than any behavioral change: a broken encoder, decoder,
quantizer or trainer moves these numbers by multiples of the band.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.slow

from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar, train_test_split
from repro.metrics.psnr import batch_psnr
from repro.models import resnet8_tiny
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    TrainingConfig,
    run_quantized_correlation_attack,
)

# Expected values for the fixed-seed run below, with tolerance bands.
GOLDEN = {
    "encoded_images": 23,          # exact: pure capacity arithmetic
    "uncompressed_accuracy": (0.9167, 0.10),
    "quantized_accuracy": (0.9583, 0.10),
    "quantized_ssim": (0.1944, 0.05),
    "quantized_psnr": (14.40, 1.50),
    "quantized_mape": (39.43, 6.0),
    "recognized_count": (18, 5),
}


@pytest.fixture(scope="module")
def golden_run():
    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=120, num_classes=4, image_size=16, seed=11)
    )
    train, test = train_test_split(data, test_fraction=0.2, seed=0)
    return run_quantized_correlation_attack(
        train, test,
        lambda: resnet8_tiny(num_classes=4, in_channels=3, width=8,
                             rng=np.random.default_rng(7)),
        TrainingConfig(epochs=6, batch_size=32, lr=0.08, seed=0),
        AttackConfig(layer_ranges=((1, 3), (4, -1)), rates=(0.0, 20.0),
                     std_window=8.0),
        QuantizationConfig(bits=4, method="target_correlated",
                           finetune_epochs=1),
    )


def within(value, expected_band):
    expected, band = expected_band
    return abs(value - expected) <= band


class TestGoldenNumbers:
    def test_payload_capacity_exact(self, golden_run):
        assert golden_run.encoded_images == GOLDEN["encoded_images"]

    def test_accuracy(self, golden_run):
        assert within(golden_run.uncompressed.accuracy,
                      GOLDEN["uncompressed_accuracy"])
        assert within(golden_run.quantized.accuracy,
                      GOLDEN["quantized_accuracy"])

    def test_reconstruction_quality(self, golden_run):
        quant = golden_run.quantized
        assert within(quant.mean_ssim, GOLDEN["quantized_ssim"])
        assert within(quant.mean_mape, GOLDEN["quantized_mape"])
        psnr = batch_psnr(quant.originals, quant.reconstructions)
        assert np.isfinite(psnr).all()
        assert within(float(psnr.mean()), GOLDEN["quantized_psnr"])

    def test_recognizability(self, golden_run):
        assert within(golden_run.quantized.recognized_count,
                      GOLDEN["recognized_count"])

    def test_quantized_weights_use_16_levels(self, golden_run):
        from repro.models import encodable_parameters
        for _, param in encodable_parameters(golden_run.model):
            assert len(np.unique(param.data)) <= 16

    def test_rerun_is_bit_identical(self, golden_run):
        """The flow is fully seeded: a second run reproduces the decoded
        images exactly, so the banded asserts above never flake locally."""
        data = make_synthetic_cifar(
            SyntheticCifarConfig(num_images=120, num_classes=4,
                                 image_size=16, seed=11)
        )
        train, test = train_test_split(data, test_fraction=0.2, seed=0)
        again = run_quantized_correlation_attack(
            train, test,
            lambda: resnet8_tiny(num_classes=4, in_channels=3, width=8,
                                 rng=np.random.default_rng(7)),
            TrainingConfig(epochs=6, batch_size=32, lr=0.08, seed=0),
            AttackConfig(layer_ranges=((1, 3), (4, -1)), rates=(0.0, 20.0),
                         std_window=8.0),
            QuantizationConfig(bits=4, method="target_correlated",
                               finetune_epochs=1),
        )
        assert np.array_equal(again.quantized.reconstructions,
                              golden_run.quantized.reconstructions)
        assert again.quantized.accuracy == golden_run.quantized.accuracy
