"""End-to-end monitor acceptance: watch the imprint appear, then vanish.

Fixed-seed malicious and benign runs over the same would-be encoding
target.  The correlation probe must separate the two by epoch 2, the
decode probe's PSNR must grow monotone-ish over the malicious run, and
a weighted-entropy release tick must show the imprint being erased.
The timeseries round-trips through ``repro report``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.layerwise import assign_payload, group_by_layer_ranges
from repro.attacks.secret import SecretPayload
from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar, train_test_split
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.models import resnet8_tiny
from repro.monitor import CorrelationProbe, DecodeProbe, Monitor, default_probes
from repro.pipeline import (
    AttackConfig,
    QuantizationConfig,
    Trainer,
    TrainingConfig,
    run_quantized_correlation_attack,
)

EPOCHS = 5
RANGES = ((1, 2), (3, 4), (5, -1))
RATES = (0.0, 0.0, 20.0)


@pytest.fixture(autouse=True)
def _clean_default_registry():
    """Attack runs + probes populate the global registry; drop the
    metrics after each test so later suites see a pristine snapshot."""
    from repro.telemetry.metrics import default_registry
    yield
    default_registry().clear()


@pytest.fixture(scope="module")
def splits():
    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=120, num_classes=4, image_size=16,
                             seed=11))
    return train_test_split(data, test_fraction=0.2, seed=0)


@pytest.fixture(scope="module")
def malicious(splits, tmp_path_factory):
    """Full attack flow under the default probe suite, weighted-entropy
    release so the post-release tick shows the imprint erased."""
    train, test = splits
    path = str(tmp_path_factory.mktemp("mal") / "malicious.timeseries.jsonl")
    monitor = Monitor(default_probes(decode_images=2), path=path)
    result = run_quantized_correlation_attack(
        train, test,
        lambda: resnet8_tiny(num_classes=4, in_channels=3, width=8,
                             rng=np.random.default_rng(7)),
        training=TrainingConfig(epochs=EPOCHS, batch_size=32, lr=0.08, seed=7),
        attack=AttackConfig(layer_ranges=RANGES, rates=RATES, std_window=8.0),
        quantization=QuantizationConfig(bits=2, method="weighted_entropy",
                                        finetune_epochs=0),
        monitor=monitor,
    )
    monitor.close()
    return monitor, result, path


@pytest.fixture(scope="module")
def benign(splits, tmp_path_factory):
    """Benign training observed against the same would-be target."""
    train, _ = splits
    batch = images_to_batch(train.images)
    batch, _, _ = normalize_batch(batch)
    model = resnet8_tiny(num_classes=4, in_channels=3, width=8,
                         rng=np.random.default_rng(7))
    groups = group_by_layer_ranges(model, RANGES, RATES)
    pixels = train.pixels_per_image
    capacity = sum(g.capacity(pixels) for g in groups if g.rate > 0.0)
    payload_all = SecretPayload.from_dataset(
        train, np.arange(min(capacity, len(train))))
    payload_all.take(assign_payload(groups, payload_all))
    path = str(tmp_path_factory.mktemp("ben") / "benign.timeseries.jsonl")
    monitor = Monitor([CorrelationProbe(), DecodeProbe(max_images=2)],
                      path=path).bind(groups=groups)
    Trainer(model, batch, train.labels,
            TrainingConfig(epochs=EPOCHS, batch_size=32, lr=0.08, seed=7),
            probes=monitor).train()
    monitor.close()
    return monitor, path


class TestLeakageSeparation:
    def test_correlation_separates_by_epoch_2(self, malicious, benign):
        mal_monitor, _, _ = malicious
        ben_monitor, _ = benign
        mal = mal_monitor.series("corr_abs_mean")
        ben = ben_monitor.series("corr_abs_mean")
        assert len(mal) >= EPOCHS and len(ben) == EPOCHS
        # by the second epoch the malicious run has visibly pulled away
        assert mal[1] > ben[1] + 0.1
        assert mal[1] > 2.0 * abs(ben[1])
        # and keeps climbing while benign stays near zero throughout
        assert mal[EPOCHS - 1] > mal[0]
        assert max(abs(v) for v in ben) < 0.15

    def test_decode_psnr_grows_monotone_ish(self, malicious):
        monitor, _, _ = malicious
        psnr = monitor.series("psnr_mean")[:EPOCHS]  # training epochs only
        assert len(psnr) == EPOCHS
        assert psnr[-1] > psnr[0]
        # monotone-ish: no epoch may fall far below its predecessor
        assert all(b - a > -1.0 for a, b in zip(psnr, psnr[1:]))

    def test_release_tick_shows_imprint_degraded(self, malicious):
        monitor, result, _ = malicious
        epochs = result.history.epochs
        release = [r for r in monitor.probe_records("correlation")
                   if r["epoch"] == epochs]
        training = [r for r in monitor.probe_records("correlation")
                    if r["epoch"] == epochs - 1]
        assert release and training
        # 2-bit weighted-entropy quantization visibly weakens the
        # encoding (Table I); at this tiny scale the correlation drops
        # rather than vanishing outright
        assert release[0]["corr_abs_mean"] < 0.85 * training[0]["corr_abs_mean"]

    def test_quantized_attack_quality_collapses(self, malicious):
        _, result, _ = malicious
        assert result.quantized is not None
        assert result.quantized.mean_ssim < result.uncompressed.mean_ssim


class TestReportRendering:
    def test_cli_report_renders_single_run(self, malicious, capsys):
        from repro.cli import main
        _, _, path = malicious
        assert main(["report", path]) == 0
        out = capsys.readouterr().out
        assert "corr_abs_mean" in out
        assert any(tick in out for tick in "▁▂▃▄▅▆▇█")

    def test_cli_report_diffs_runs(self, malicious, benign, capsys):
        from repro.cli import main
        _, _, mal_path = malicious
        _, ben_path = benign
        assert main(["report", mal_path, ben_path]) == 0
        out = capsys.readouterr().out
        assert "monitor diff" in out
        assert "correlation" in out

    def test_timeseries_parses_as_jsonl(self, malicious):
        from repro.monitor import load_timeseries
        _, _, path = malicious
        records = load_timeseries(path)
        assert records
        run_ids = {r.get("run_id") for r in records}
        assert len(run_ids) == 1  # one run id keys the whole timeseries


class TestAlertSeparation:
    """Acceptance: replaying the correlation rule over the two stored
    timeseries raises an alert on the malicious run and stays silent on
    the benign one."""

    @staticmethod
    def _correlation_engine():
        from repro.monitor import AlertEngine, ThresholdRule
        return AlertEngine([ThresholdRule(
            "correlation_leak", "corr_abs_mean", above=0.25,
            probe="correlation", min_epoch=1, severity="critical")])

    def test_malicious_run_raises_correlation_alert(self, malicious):
        from repro.monitor import load_timeseries
        _, _, path = malicious
        fired = self._correlation_engine().replay(load_timeseries(path))
        assert len(fired) == 1  # fire_once: flags, does not spam
        alert = fired[0]
        assert alert.rule == "correlation_leak"
        assert alert.severity == "critical"
        assert alert.value > 0.25
        assert alert.epoch >= 1

    def test_benign_run_raises_nothing(self, benign):
        from repro.monitor import load_timeseries
        _, path = benign
        assert self._correlation_engine().replay(load_timeseries(path)) == []

    def test_cli_alerts_separates_runs(self, malicious, benign, capsys):
        from repro.cli import main
        _, _, mal_path = malicious
        _, ben_path = benign
        assert main(["alerts", mal_path]) == 1
        assert "correlation_leak" in capsys.readouterr().out
        assert main(["alerts", ben_path]) == 0
        assert "no alerts" in capsys.readouterr().out
