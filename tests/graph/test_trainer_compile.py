"""Compiled training must be bit-identical to eager training.

The speedup gate (``benchmarks/test_graph_speedup.py``) only enforces
rtol 1e-5; this suite pins the real contract -- *exact* equality of
loss traces, parameters, and batch-norm running statistics between a
``compile=True`` trainer and its eager twin -- on both the fast and the
compiled backend, including the ragged final batch that forces a second
program signature mid-epoch.
"""

import numpy as np
import pytest

from repro import graph
from repro.attacks.correlated import CorrelationPenalty
from repro.models.simple_cnn import SimpleCNN
from repro.pipeline.config import TrainingConfig
from repro.pipeline.trainer import Trainer

SEED = 7


def build_trainer(compile_flag, *, n=24, batch=8, backend="fast",
                  epochs=2, penalty=True):
    """A small SimpleCNN trainer; twins share every seed."""
    rng = np.random.default_rng(SEED)
    inputs = rng.standard_normal((n, 3, 8, 8))
    labels = rng.integers(0, 5, size=n)
    model = SimpleCNN(num_classes=5, image_size=8, width=4,
                      rng=np.random.default_rng(SEED + 1))
    pen = None
    if penalty:
        pen = CorrelationPenalty([model.parameters()[0]],
                                 rng.standard_normal(16), rate=0.1)
    config = TrainingConfig(epochs=epochs, batch_size=batch, lr=0.05,
                            seed=SEED)
    return Trainer(model, inputs, labels, config, penalty=pen,
                   backend=backend, compile=compile_flag)


def assert_models_identical(eager: Trainer, compiled: Trainer) -> None:
    assert compiled.history.task_loss == eager.history.task_loss
    assert compiled.history.penalty == eager.history.penalty
    for (name, pe), pc in zip(eager.model.named_parameters(),
                              compiled.model.parameters()):
        assert pe.data.dtype == pc.data.dtype, name
        assert np.array_equal(pe.data, pc.data), f"parameter {name} diverged"
        if pe.grad is None:
            assert pc.grad is None, name
        else:
            assert np.array_equal(pe.grad, pc.grad), f"gradient {name} diverged"
    eager_buffers = dict(eager.model.named_buffers())
    compiled_buffers = dict(compiled.model.named_buffers())
    assert eager_buffers.keys() == compiled_buffers.keys()
    for name, buf in eager_buffers.items():
        assert np.array_equal(buf, compiled_buffers[name]), \
            f"buffer {name} diverged"


class TestBitIdentity:
    @pytest.mark.parametrize("backend", ["fast", "compiled"])
    def test_two_epochs_bitwise_identical(self, backend):
        eager = build_trainer(False, backend=backend)
        compiled = build_trainer(True, backend=backend)
        for _ in range(2):
            eager.train_epoch()
            compiled.train_epoch()
        assert_models_identical(eager, compiled)
        stats = compiled.compile_stats
        # 24 images / batch 8 = 3 steps per epoch: 1 capture, then replays
        assert stats["captures"] == 1
        assert stats["programs"] == 1
        assert stats["replays"] == 5
        assert stats["fallbacks"] == 0
        assert stats["capture_failures"] == 0

    def test_ragged_final_batch_compiles_second_signature(self):
        # 20 images / batch 8 -> 8, 8, 4: the mid-epoch shape change
        # must capture a second program, not fall back and not diverge
        eager = build_trainer(False, n=20)
        compiled = build_trainer(True, n=20)
        for _ in range(2):
            eager.train_epoch()
            compiled.train_epoch()
        assert_models_identical(eager, compiled)
        stats = compiled.compile_stats
        assert stats["captures"] == 2
        assert stats["programs"] == 2
        assert stats["replays"] == 4
        assert stats["fallbacks"] == 0
        assert {key[0][0] for key in compiled._programs} == {8, 4}

    def test_reference_backend_refuses_capture_and_stays_exact(self):
        # reference has no fused batch-norm node: the composed graph's
        # running-statistics update is a side effect a replay would
        # freeze, so the layer marks the trace dynamic and the trainer
        # stays eager -- and therefore exactly equal to the eager twin
        eager = build_trainer(False, backend="reference")
        compiled = build_trainer(True, backend="reference")
        for _ in range(2):
            eager.train_epoch()
            compiled.train_epoch()
        stats = compiled.compile_stats
        assert stats["captures"] == 0
        assert stats["capture_failures"] == 1
        assert stats["replays"] == 0
        assert compiled._capture_failed is True
        assert_models_identical(eager, compiled)

    def test_max_programs_cap_keeps_odd_shapes_eager(self):
        eager = build_trainer(False, n=20)
        compiled = build_trainer(True, n=20)
        compiled.MAX_PROGRAMS = 1
        for _ in range(2):
            eager.train_epoch()
            compiled.train_epoch()
        assert_models_identical(eager, compiled)
        stats = compiled.compile_stats
        assert stats["captures"] == 1
        assert stats["programs"] == 1
        # the ragged batch ran eagerly both epochs without a capture try
        assert stats["capture_failures"] == 0


class TestCompileDefault:
    def test_trainer_follows_process_default(self):
        previous = graph.set_compile_default(True)
        try:
            assert graph.compile_default() is True
            trainer = build_trainer(None, epochs=1)
            trainer.train_epoch()
            assert trainer.compile_stats["captures"] == 1
        finally:
            graph.set_compile_default(previous)

    def test_set_returns_previous_value(self):
        first = graph.set_compile_default(True)
        second = graph.set_compile_default(first)
        assert second is True
        assert graph.compile_default() is first


class TestStats:
    def test_counters_tick_and_gauge_is_finite(self):
        before = graph.stats()
        trainer = build_trainer(True, epochs=1)
        trainer.train_epoch()
        after = graph.stats()
        assert after["graph.captures"] >= before["graph.captures"] + 1
        assert after["graph.replays"] >= before["graph.replays"] + 2
        assert after["graph.fallbacks"] >= before["graph.fallbacks"]
        # the gauge NaN-guard: always a real number, even pre-first-set
        assert after["graph.programs"] == after["graph.programs"]
        assert set(after) == {
            "graph.captures", "graph.capture_failures", "graph.replays",
            "graph.fallbacks", "graph.programs",
        }
