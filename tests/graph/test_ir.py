"""IR lints: op-to-kernel mapping vs the registry, JSON round-trip."""

import numpy as np
import pytest

from repro import backend as B
from repro.graph.ir import FUNCTION_KERNELS, GraphIR, kernels_for

from tests.graph.test_trainer_compile import build_trainer

BACKENDS = ["reference", "fast", "compiled"]


@pytest.fixture(scope="module")
def captured_program():
    trainer = build_trainer(True, epochs=1)
    trainer.train_epoch()
    return next(iter(trainer._programs.values()))


class TestKernelLint:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_mapped_kernel_is_registered(self, backend):
        K = B.get_backend(backend)
        missing = {
            f"{op} -> {kernel}"
            for op, kernels in FUNCTION_KERNELS.items()
            for kernel in kernels
            if not K.has(kernel)
        }
        assert not missing, f"FUNCTION_KERNELS drifted from {backend}: {missing}"

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_captured_graph_kernels_resolve(self, captured_program, backend):
        # the round-trip lint the module docstring promises: every kernel
        # a real captured training step may dispatch exists on every
        # shipped backend
        K = B.get_backend(backend)
        names = captured_program.ir.kernel_names()
        assert names, "captured IR names no kernels"
        unresolved = [name for name in names if not K.has(name)]
        assert not unresolved

    def test_kernels_for_unknown_op_is_empty(self):
        assert kernels_for("FluxCapacitor") == ()
        assert kernels_for("Conv2dFn") == FUNCTION_KERNELS["Conv2dFn"]


class TestRoundTrip:
    def test_json_round_trip_is_lossless(self, captured_program):
        ir = captured_program.ir
        payload = ir.to_payload()
        again = GraphIR.from_json(ir.to_json(indent=2))
        assert again.to_payload() == payload
        assert again.kernel_names() == ir.kernel_names()
        assert again.ops() == ir.ops()

    def test_ir_structure_matches_capture(self, captured_program):
        ir = captured_program.ir
        kinds = {source.kind for source in ir.sources}
        assert kinds <= {"feed", "leaf", "const"}
        feeds = [s for s in ir.sources if s.kind == "feed"]
        assert [s.name for s in feeds] == ["inputs"]
        assert set(ir.outputs) == {"task_loss", "penalty", "loss"}
        assert ir.backward_roots == [ir.outputs["loss"]]
        # the training step of a conv net must include the conv stack
        ops = set(ir.ops())
        assert {"Conv2dFn", "BatchNormTrainFn", "MaxPool2dFn"} <= ops
        by_id = {node.id: node for node in ir.nodes}
        source_ids = {source.id for source in ir.sources}
        for node in ir.nodes:
            for value in node.inputs:
                assert value in by_id or value in source_ids, \
                    f"{node.id} consumes unknown value {value}"

    def test_empty_graph_round_trips(self):
        blank = GraphIR.from_json(GraphIR().to_json())
        assert blank.nodes == [] and blank.sources == []
        assert blank.kernel_names() == []
