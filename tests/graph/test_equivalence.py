"""Fused-subgraph equivalence: every chain vs the reference oracle."""

import numpy as np
import pytest

from repro import backend as B
from repro import graph
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.backend.registry import Backend
from repro.errors import GraphError
from repro.graph import check_chain, check_program, fusion_supported

from tests.graph.test_trainer_compile import build_trainer


def capture_chain_program(fuse=True):
    """Mul -> Add -> ReLU: one three-op fused chain feeding a Sum."""
    rng = np.random.default_rng(3)
    w = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
    b = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
    x = Tensor(rng.standard_normal((4, 5)))

    def step():
        loss = F.sum(F.relu(F.add(F.mul(x, w), b)))
        loss.backward()
        return {"loss": loss}

    result, program = graph.capture_step(step, feeds={"inputs": x},
                                         fuse=fuse)
    assert program is not None
    return program


class TestCheckProgram:
    def test_covers_every_chain_and_op(self):
        program = capture_chain_program()
        assert len(program.fused_chains) == 1
        assert program.fused_op_count == 3
        summary = check_program(program)
        assert summary == {"chains": 1, "ops": 3}

    def test_every_chain_of_a_real_training_step_verifies(self):
        # the acceptance wording: the equivalence harness covers every
        # fused subgraph of a captured step against the reference oracle
        trainer = build_trainer(True, n=20, epochs=1)
        trainer.train_epoch()
        assert trainer._programs, "no program captured"
        total_chains = 0
        for program in trainer._programs.values():
            summary = check_program(program)
            assert summary["chains"] == len(program.fused_chains)
            assert summary["ops"] == program.fused_op_count
            total_chains += summary["chains"]
        assert total_chains >= 1, "training step fused nothing"

    def test_detects_bitwise_divergence_and_restores_state(self):
        program = capture_chain_program()
        chain = program.fused_chains[0]
        step = chain.steps[-1]
        saved_before = step.fn.saved
        real = step.runner

        def skewed(fn, ins, dest):
            out = real(fn, ins, dest)
            np.add(out, 1e-8, out=out)  # one ULP-ish nudge must be caught
            return out

        step.runner = skewed
        try:
            with pytest.raises(GraphError, match="diverges bitwise"):
                check_chain(chain, np.random.default_rng(0))
        finally:
            step.runner = real
        # the harness snapshots and restores saved state even on failure
        assert step.fn.saved is saved_before

    def test_unfused_compile_still_replays_bitwise(self):
        fused = capture_chain_program(fuse=True)
        plain = capture_chain_program(fuse=False)
        assert plain.fused_chains == []
        rng = np.random.default_rng(9)
        fresh = rng.standard_normal((4, 5))
        out_fused = fused.replay(inputs=fresh)["loss"]
        out_plain = plain.replay(inputs=fresh)["loss"]
        assert np.array_equal(out_fused, out_plain)


class TestFusionSupported:
    @pytest.mark.parametrize("backend", ["reference", "fast", "compiled"])
    def test_shipped_backends_support_fusion(self, backend):
        assert fusion_supported(B.get_backend(backend))

    def test_foreign_elementwise_kernel_disables_fusion(self):
        foreign = Backend("foreign-elementwise",
                          fallback=B.get_backend("reference"))

        @foreign.register()
        def add(a, b):  # same math, different object: not provably bitwise
            return a + b

        assert not fusion_supported(foreign)
