"""Capture/replay edge cases: double backward, fallbacks, dynamic layers.

Every failure mode here must degrade to eager execution with training
results exactly equal to a never-compiled twin -- fallback is only
correct if it is invisible.
"""

import numpy as np
import pytest

from repro import graph
from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.errors import GraphError
from repro.nn.layers import Dropout, Flatten, Linear
from repro.nn.module import Module
from repro.pipeline.config import TrainingConfig
from repro.pipeline.trainer import Trainer

from tests.graph.test_trainer_compile import (
    assert_models_identical,
    build_trainer,
)


class TestRetainGraphReplay:
    def _capture_double_backward(self):
        rng = np.random.default_rng(11)
        w = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        x = Tensor(rng.standard_normal((3, 4)))

        def step():
            loss = F.sum(F.relu(F.mul(x, w)))
            loss.backward(retain_graph=True)
            loss.backward()
            return {"loss": loss}

        result, program = graph.capture_step(step, feeds={"inputs": x})
        return w, x, result, program

    def test_double_backward_captures_two_sections(self):
        w, x, result, program = self._capture_double_backward()
        assert program is not None
        assert program.describe()["backward_sections"] == 2
        # eager warm-up accumulated both passes
        mask = (x.data * w.data) > 0
        np.testing.assert_array_equal(w.grad, 2.0 * x.data * mask)

    def test_replay_accumulates_like_eager(self):
        w, x, result, program = self._capture_double_backward()
        rng = np.random.default_rng(12)
        fresh = rng.standard_normal((3, 4))
        w.grad = None
        outs = program.replay(inputs=fresh)
        mask = (fresh * w.data) > 0
        expected = fresh * w.data * mask
        assert np.array_equal(outs["loss"], expected.sum())
        np.testing.assert_array_equal(w.grad, 2.0 * fresh * mask)

    def test_explicit_gradient_seed_refuses_capture(self):
        rng = np.random.default_rng(13)
        w = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        x = Tensor(rng.standard_normal((3, 4)))

        def step():
            loss = F.sum(F.mul(x, w))
            loss.backward(np.asarray(2.0))  # non-unit seed cannot replay
            return {"loss": loss}

        result, program = self._swallowing_capture(step, x)
        assert program is None
        np.testing.assert_array_equal(w.grad, 2.0 * x.data)

    @staticmethod
    def _swallowing_capture(step, x):
        before = graph.stats()["graph.capture_failures"]
        result, program = graph.capture_step(step, feeds={"inputs": x})
        assert graph.stats()["graph.capture_failures"] == before + (
            1 if program is None else 0
        )
        return result, program


class TestReplayShapeGuards:
    def test_wrong_shape_asks_for_recompile(self):
        trainer = build_trainer(True, epochs=1)
        trainer.train_epoch()
        program = next(iter(trainer._programs.values()))
        bad = np.zeros((3, 3, 8, 8))
        with pytest.raises(GraphError, match="recompile"):
            program.replay(inputs=bad, targets=np.zeros(3, dtype=int))

    def test_missing_feed_raises(self):
        trainer = build_trainer(True, epochs=1)
        trainer.train_epoch()
        program = next(iter(trainer._programs.values()))
        with pytest.raises(GraphError, match="missing feed"):
            program.replay(targets=np.zeros(8, dtype=int))


class TestRaisingFusedKernel:
    def test_fused_failure_falls_back_without_corruption(self):
        eager = build_trainer(False)
        compiled = build_trainer(True)
        eager.train_epoch()
        compiled.train_epoch()
        program = next(iter(compiled._programs.values()))
        chains = program.fused_chains
        assert chains, "workload captured no fused chain to sabotage"
        step = chains[0].steps[0]

        def bomb(fn, ins, dest):
            dest.fill(np.nan)  # scribble on the planned scratch buffer
            raise GraphError("injected fused-kernel failure")

        step.runner = bomb
        # second epoch: first replay raises, program is discarded, the
        # step re-runs eagerly, and the next batch re-captures cleanly
        eager.train_epoch()
        compiled.train_epoch()
        stats = compiled.compile_stats
        assert stats["fallbacks"] == 1
        assert stats["captures"] == 2
        assert stats["replays"] >= 3
        assert_models_identical(eager, compiled)


class DropNet(Module):
    """Tiny MLP with a Dropout layer -- inherently uncapturable."""

    def __init__(self, seed: int) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.flatten = Flatten()
        self.fc1 = Linear(48, 16, rng=rng)
        self.drop = Dropout(0.5, rng=np.random.default_rng(seed + 1))
        self.fc2 = Linear(16, 3, rng=rng)

    def forward(self, x):
        return self.fc2(self.drop(self.fc1(self.flatten(x)).relu()))


class TestDynamicModelStaysEager:
    def _trainer(self, compile_flag):
        rng = np.random.default_rng(3)
        inputs = rng.standard_normal((12, 3, 4, 4))
        labels = rng.integers(0, 3, size=12)
        config = TrainingConfig(epochs=2, batch_size=4, lr=0.05, seed=3)
        return Trainer(DropNet(21), inputs, labels, config,
                       compile=compile_flag)

    def test_dropout_capture_fails_once_then_stays_eager(self):
        eager = self._trainer(False)
        compiled = self._trainer(True)
        for _ in range(2):
            eager.train_epoch()
            compiled.train_epoch()
        stats = compiled.compile_stats
        assert stats["capture_failures"] == 1
        assert stats["captures"] == 0
        assert stats["replays"] == 0
        assert compiled._capture_failed is True
        # both twins drew the same dropout masks (module-owned rngs), so
        # the eager fallback must be exactly the eager run
        assert compiled.history.task_loss == eager.history.task_loss
        for pe, pc in zip(eager.model.parameters(),
                          compiled.model.parameters()):
            assert np.array_equal(pe.data, pc.data)
