"""Kernel-level inference capture: bitwise replay, guards, probe check."""

import numpy as np
import pytest

from repro import backend as B
from repro.autograd import no_grad
from repro.autograd.tensor import Tensor
from repro.errors import GraphError
from repro.graph import capture_infer
from repro.models.simple_cnn import SimpleCNN


def eval_model():
    model = SimpleCNN(num_classes=4, image_size=8, width=4,
                      rng=np.random.default_rng(5))
    model.eval()
    return model


def forward_fn(model):
    def fn(arr):
        with no_grad():
            return model(Tensor(np.asarray(arr))).data
    return fn


class TestCaptureInfer:
    def test_replay_is_bitwise_identical_to_eager(self):
        model = eval_model()
        fn = forward_fn(model)
        rng = np.random.default_rng(1)
        feed = rng.standard_normal((3, 3, 8, 8))
        with B.use_backend("fast"):
            program = capture_infer(fn, feed)
            for seed in range(3):
                x = np.random.default_rng(seed + 10).standard_normal(feed.shape)
                assert np.array_equal(program.run(x), fn(x))
        assert program.runs >= 3
        # eval-mode conv dispatches the fused inference kernel
        assert "conv2d_infer" in program.kernel_names

    def test_wrong_shape_or_dtype_raises(self):
        model = eval_model()
        fn = forward_fn(model)
        feed = np.random.default_rng(1).standard_normal((2, 3, 8, 8))
        with B.use_backend("fast"):
            program = capture_infer(fn, feed)
        with pytest.raises(GraphError, match="captured"):
            program.run(np.zeros((4, 3, 8, 8)))
        with pytest.raises(GraphError, match="captured"):
            program.run(np.zeros((2, 3, 8, 8), dtype=np.float32))

    def test_probe_input_catches_frozen_constants(self):
        # ``x + 0.0`` allocates a fresh array the resolver cannot tie to
        # the feed, so it freezes as a capture-time constant; the
        # same-input verification passes and only the second, perturbed
        # input exposes the wrong program
        K = B.get_backend("fast")
        W = np.random.default_rng(2).standard_normal((4, 3))

        def leaky(x):
            return K.matmul(np.asarray(x) + 0.0, W)

        feed = np.random.default_rng(3).standard_normal((5, 4))
        with pytest.raises(GraphError, match="probe input"):
            capture_infer(leaky, feed)
        # without the probe the broken program would have shipped
        program = capture_infer(leaky, feed, verify_second_input=False)
        other = np.random.default_rng(4).standard_normal((5, 4))
        assert not np.array_equal(program.run(other), leaky(other))

    def test_no_kernel_calls_refuses(self):
        with pytest.raises(GraphError, match="no kernel calls"):
            capture_infer(lambda x: np.asarray(x) * 2.0, np.ones((2, 2)))

    def test_compiled_backend_capture_matches_fast(self):
        model = eval_model()
        fn = forward_fn(model)
        feed = np.random.default_rng(6).standard_normal((2, 3, 8, 8))
        with B.use_backend("fast"):
            eager = fn(feed)
        with B.use_backend("compiled"):
            program = capture_infer(fn, feed)
            replay = program.run(feed)
        # the compiled backend's gather kernels are bitwise identical to
        # fast's, so even cross-backend the forward cannot move a ULP
        assert np.array_equal(replay, eager)
