"""Dependency-free line-coverage floor for the parallel, backend and
monitor layers.

The container has no ``pytest-cov``, so this plugin implements the
coverage gate with the stdlib: a targeted ``sys.settrace`` hook records
executed lines in the watched files, executable lines are derived from
the compiled code objects (``dis.findlinestarts``), and the session
fails when coverage of ``src/repro/parallel/`` +
``src/repro/pipeline/sweep.py`` + ``src/repro/backend/`` +
``src/repro/monitor/`` + ``src/repro/serve/`` drops below the floor.

Wired into ``pyproject.toml`` addopts via
``-p tests.plugins.coverage_floor`` (loaded always) but inert -- zero
tracing overhead -- unless ``--repro-cov`` is passed.  CI enforces the
floor with::

    PYTHONPATH=src python -m pytest --repro-cov -m "not slow"

Known limit: lines that execute only inside worker *processes* (the
``_worker_main`` body) are invisible to the parent's trace hook, so the
floor is set with that in mind; everything else in the layer runs
in-process somewhere in the suite.
"""

from __future__ import annotations

import dis
import sys
import threading
from typing import Dict, Set, Tuple

FLOOR_PERCENT = 85.0
TARGET_FILES = (
    "src/repro/parallel/__init__.py",
    "src/repro/parallel/pool.py",
    "src/repro/parallel/seeding.py",
    "src/repro/parallel/shards.py",
    "src/repro/serve/__init__.py",
    "src/repro/serve/artifacts.py",
    "src/repro/serve/batcher.py",
    "src/repro/serve/server.py",
    "src/repro/serve/loadgen.py",
    "src/repro/serve/http.py",
    "src/repro/serve/tracing.py",
    "src/repro/serve/analyze.py",
    "src/repro/telemetry/slo.py",
    "src/repro/pipeline/sweep.py",
    "src/repro/backend/__init__.py",
    "src/repro/backend/registry.py",
    "src/repro/backend/reference.py",
    "src/repro/backend/fast.py",
    "src/repro/backend/equivalence.py",
    "src/repro/backend/bench.py",
    "src/repro/monitor/__init__.py",
    "src/repro/monitor/core.py",
    "src/repro/monitor/probes.py",
    "src/repro/monitor/system.py",
    "src/repro/monitor/report.py",
    "src/repro/monitor/bench.py",
    "src/repro/monitor/alerts.py",
    "src/repro/telemetry/sampler.py",
    "src/repro/telemetry/export.py",
    "src/repro/precision.py",
    "src/repro/autograd/planner.py",
    "src/repro/backend/compiled.py",
    "src/repro/graph/__init__.py",
    "src/repro/graph/ir.py",
    "src/repro/graph/trace.py",
    "src/repro/graph/compiler.py",
    "src/repro/graph/executor.py",
    "src/repro/graph/infer.py",
    "src/repro/graph/equivalence.py",
    "src/repro/autograd/function.py",
)


def pytest_addoption(parser):
    parser.addoption(
        "--repro-cov", action="store_true", default=False,
        help=f"trace src/repro/parallel + pipeline/sweep.py line coverage "
             f"and fail the session under {FLOOR_PERCENT:.0f}%%",
    )


class _FloorTracer:
    """Targeted line tracer: only frames from watched files are traced."""

    def __init__(self, targets: Set[str]) -> None:
        self.targets = targets
        self.hits: Dict[str, Set[int]] = {path: set() for path in targets}

    def global_trace(self, frame, event, arg):
        if event == "call":
            filename = frame.f_code.co_filename
            if filename in self.targets:
                # the call event's line is the def line, which never
                # fires as a separate "line" event inside the body
                self.hits[filename].add(frame.f_lineno)
                return self.local_trace
        return None

    def local_trace(self, frame, event, arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self.local_trace

    def install(self) -> None:
        threading.settrace(self.global_trace)
        sys.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def _executable_lines(path: str) -> Tuple[Set[int], Set[int]]:
    """(module-level lines, nested-code lines) with trace-visible numbers.

    Module-level lines execute at import time; nested code objects
    (functions, methods, comprehensions) need a runtime call.  Each
    nested code object's first line (the ``def``) is attributed to the
    call event, so it stays in the nested set.
    """
    with open(path, "r", encoding="utf-8") as handle:
        top = compile(handle.read(), path, "exec")
    module_lines: Set[int] = set()
    nested_lines: Set[int] = set()
    stack = [(top, True)]
    while stack:
        code, is_module = stack.pop()
        lines = {line for _, line in dis.findlinestarts(code)
                 if line is not None and line > 0}
        (module_lines if is_module else nested_lines).update(lines)
        for const in code.co_consts:
            if isinstance(const, type(top)):
                stack.append((const, False))
    nested_lines -= module_lines
    return module_lines, nested_lines


def pytest_configure(config):
    if not config.getoption("--repro-cov"):
        config._repro_cov = None
        return
    root = config.rootpath
    targets = {str(root / rel) for rel in TARGET_FILES}
    tracer = _FloorTracer(targets)
    tracer.install()
    config._repro_cov = tracer


def pytest_sessionfinish(session, exitstatus):
    tracer = getattr(session.config, "_repro_cov", None)
    if tracer is None:
        return
    tracer.uninstall()
    total_executable = 0
    total_covered = 0
    rows = []
    for path in sorted(tracer.targets):
        module_lines, nested_lines = _executable_lines(path)
        # importing the module executes every module-level line; the
        # import itself happened under the tracer, but count it as
        # covered regardless so early-imported modules aren't penalised
        imported = any(
            getattr(mod, "__file__", None) == path
            for mod in list(sys.modules.values())
        )
        hits = tracer.hits[path]
        covered = (module_lines if imported else module_lines & hits) | \
                  (nested_lines & hits)
        executable = module_lines | nested_lines
        total_executable += len(executable)
        total_covered += len(covered)
        pct = 100.0 * len(covered) / len(executable) if executable else 100.0
        rows.append((path, len(covered), len(executable), pct))

    pct = 100.0 * total_covered / total_executable if total_executable else 100.0
    lines = ["", "repro.parallel + repro.backend + repro.monitor coverage "
                 f"floor (floor {FLOOR_PERCENT:.0f}%):"]
    for path, covered, executable, file_pct in rows:
        lines.append(f"  {file_pct:5.1f}%  {covered}/{executable}  {path}")
    lines.append(f"  total: {pct:.1f}%")
    print("\n".join(lines))
    if pct < FLOOR_PERCENT:
        print(f"FAILED coverage floor: {pct:.1f}% < {FLOOR_PERCENT:.0f}%")
        session.exitstatus = 1
