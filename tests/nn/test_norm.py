"""BatchNorm: normalization math, running stats, train/eval behaviour."""

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.nn import BatchNorm1d, BatchNorm2d

RNG = np.random.default_rng(5)


class TestBatchNorm2d:
    def test_training_output_is_normalized(self):
        bn = BatchNorm2d(3)
        x = RNG.standard_normal((8, 3, 4, 4)) * 5 + 2
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_gamma_beta_applied(self):
        bn = BatchNorm2d(2)
        bn.gamma.data = np.array([2.0, 3.0])
        bn.beta.data = np.array([1.0, -1.0])
        x = RNG.standard_normal((4, 2, 3, 3))
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), [1.0, -1.0], atol=1e-7)

    def test_running_stats_update(self):
        bn = BatchNorm2d(2, momentum=0.5)
        x = np.ones((4, 2, 2, 2)) * 10.0
        bn(Tensor(x))
        assert np.allclose(bn.running_mean, 5.0)  # 0.5*0 + 0.5*10

    def test_eval_uses_running_stats(self):
        bn = BatchNorm2d(1, momentum=1.0)
        x = RNG.standard_normal((16, 1, 4, 4)) * 3 + 7
        bn(Tensor(x))  # one train step with momentum 1 copies the batch stats
        bn.eval()
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(), 0.0, atol=1e-2)

    def test_eval_does_not_update_stats(self):
        bn = BatchNorm2d(1)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(RNG.standard_normal((4, 1, 2, 2)) + 100))
        assert np.allclose(bn.running_mean, before)

    def test_gradients_flow_to_gamma_beta(self):
        bn = BatchNorm2d(2)
        out = F.sum(bn(Tensor(RNG.standard_normal((4, 2, 3, 3)))))
        out.backward()
        assert bn.gamma.grad is not None
        assert bn.beta.grad is not None

    def test_gradient_flows_to_input(self):
        bn = BatchNorm2d(2)
        x = Tensor(RNG.standard_normal((4, 2, 3, 3)), requires_grad=True)
        F.sum(F.mul(bn(x), bn(x))).backward()
        assert x.grad is not None
        assert x.grad.shape == x.shape


class TestBatchNorm1d:
    def test_training_output_normalized(self):
        bn = BatchNorm1d(4)
        x = RNG.standard_normal((32, 4)) * 3 - 1
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_state_dict_contains_running_stats(self):
        bn = BatchNorm1d(4)
        state = bn.state_dict()
        assert "buffer:running_mean" in state
        assert "buffer:running_var" in state

    def test_state_roundtrip_preserves_stats(self):
        a = BatchNorm1d(2, momentum=1.0)
        a(Tensor(RNG.standard_normal((8, 2)) + 5))
        b = BatchNorm1d(2)
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.running_mean, b.running_mean)
        assert np.allclose(a.running_var, b.running_var)
