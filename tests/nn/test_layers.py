"""Layers: shapes, values, determinism, error handling."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.errors import ConfigError
from repro.nn import Conv2d, Dropout, Flatten, Identity, LeakyReLU, Linear, ReLU, Sigmoid, Tanh

RNG = np.random.default_rng(3)


class TestLinear:
    def test_output_shape(self):
        layer = Linear(5, 3, rng=np.random.default_rng(0))
        assert layer(Tensor(RNG.standard_normal((4, 5)))).shape == (4, 3)

    def test_matches_manual_affine(self):
        layer = Linear(4, 2, rng=np.random.default_rng(0))
        layer.bias.data = RNG.standard_normal(2)
        x = RNG.standard_normal((3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        assert np.allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert len([n for n, _ in layer.named_parameters()]) == 1

    def test_deterministic_given_rng(self):
        a = Linear(6, 4, rng=np.random.default_rng(9))
        b = Linear(6, 4, rng=np.random.default_rng(9))
        assert np.allclose(a.weight.data, b.weight.data)

    def test_trains_toward_target(self):
        layer = Linear(3, 1, rng=np.random.default_rng(1))
        x = RNG.standard_normal((50, 3))
        target = x @ np.array([[1.0], [-2.0], [0.5]])
        from repro.nn import SGD
        opt = SGD(layer.parameters(), lr=0.1)
        for _ in range(200):
            out = layer(Tensor(x))
            diff = out - Tensor(target)
            loss = (diff * diff).mean()
            layer.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3


class TestConv2d:
    def test_output_shape(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=np.random.default_rng(0))
        assert conv(Tensor(RNG.standard_normal((2, 3, 8, 8)))).shape == (2, 8, 4, 4)

    def test_bias_optional(self):
        conv = Conv2d(2, 4, 3, bias=False)
        assert conv.bias is None

    def test_repr(self):
        assert "Conv2d(3, 8" in repr(Conv2d(3, 8, 3))


class TestActivations:
    def test_relu_module(self):
        assert np.allclose(ReLU()(Tensor([-1.0, 2.0])).data, [0.0, 2.0])

    def test_leaky_relu_module(self):
        assert np.allclose(LeakyReLU(0.1)(Tensor([-1.0])).data, [-0.1])

    def test_sigmoid_module(self):
        assert np.isclose(Sigmoid()(Tensor([0.0])).data[0], 0.5)

    def test_tanh_module(self):
        assert np.isclose(Tanh()(Tensor([0.0])).data[0], 0.0)

    def test_identity(self):
        x = Tensor(RNG.standard_normal(5))
        assert Identity()(x) is x


class TestFlatten:
    def test_default(self):
        out = Flatten()(Tensor(RNG.standard_normal((2, 3, 4))))
        assert out.shape == (2, 12)

    def test_start_axis_zero(self):
        out = Flatten(start_axis=0)(Tensor(RNG.standard_normal((2, 3))))
        assert out.shape == (6,)


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        drop.eval()
        x = Tensor(RNG.standard_normal((4, 4)))
        assert np.allclose(drop(x).data, x.data)

    def test_train_zeroes_and_scales(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((100, 100)))
        out = drop(x).data
        zero_fraction = (out == 0).mean()
        assert 0.4 < zero_fraction < 0.6
        # Surviving entries are scaled by 1/keep.
        assert np.allclose(out[out != 0], 2.0)

    def test_p_zero_is_identity_in_train(self):
        drop = Dropout(0.0)
        x = Tensor(np.ones((3, 3)))
        assert np.allclose(drop(x).data, 1.0)

    def test_invalid_p_raises(self):
        with pytest.raises(ConfigError):
            Dropout(1.0)
        with pytest.raises(ConfigError):
            Dropout(-0.1)

    def test_expected_value_preserved(self):
        drop = Dropout(0.3, rng=np.random.default_rng(1))
        x = Tensor(np.ones(100_000))
        assert abs(drop(x).data.mean() - 1.0) < 0.02
