"""DataLoader: batching, shuffling, determinism, validation."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.nn import DataLoader


def make_data(n=10):
    return np.arange(n, dtype=float).reshape(n, 1), np.arange(n)


class TestBatching:
    def test_batch_count(self):
        x, y = make_data(10)
        assert len(DataLoader(x, y, batch_size=3, shuffle=False)) == 4

    def test_drop_last(self):
        x, y = make_data(10)
        loader = DataLoader(x, y, batch_size=3, shuffle=False, drop_last=True)
        assert len(loader) == 3
        batches = list(loader)
        assert all(len(b[0]) == 3 for b in batches)

    def test_exact_division(self):
        x, y = make_data(9)
        assert len(DataLoader(x, y, batch_size=3)) == 3

    def test_covers_all_samples(self):
        x, y = make_data(10)
        loader = DataLoader(x, y, batch_size=4, shuffle=True, seed=0)
        seen = np.concatenate([labels for _, labels in loader])
        assert sorted(seen.tolist()) == list(range(10))

    def test_unshuffled_order(self):
        x, y = make_data(6)
        loader = DataLoader(x, y, batch_size=2, shuffle=False)
        first_inputs, first_labels = next(iter(loader))
        assert np.allclose(first_labels, [0, 1])

    def test_inputs_match_labels(self):
        x, y = make_data(20)
        loader = DataLoader(x, y, batch_size=7, shuffle=True, seed=1)
        for inputs, labels in loader:
            assert np.allclose(inputs.reshape(-1), labels)


class TestDeterminism:
    def test_same_seed_same_order(self):
        x, y = make_data(12)
        a = [lbl.tolist() for _, lbl in DataLoader(x, y, batch_size=4, seed=5)]
        b = [lbl.tolist() for _, lbl in DataLoader(x, y, batch_size=4, seed=5)]
        assert a == b

    def test_epochs_differ_within_loader(self):
        x, y = make_data(32)
        loader = DataLoader(x, y, batch_size=32, seed=5)
        first = next(iter(loader))[1].tolist()
        second = next(iter(loader))[1].tolist()
        assert first != second  # reshuffled between epochs

    def test_same_seed_identical_batches_across_epochs(self):
        """Two loaders with one seed replay the same multi-epoch batch
        sequence -- inputs and labels both, epoch by epoch."""
        x, y = make_data(23)
        a = DataLoader(x, y, batch_size=5, seed=11)
        b = DataLoader(x, y, batch_size=5, seed=11)
        for _ in range(3):  # each epoch advances the loader's own rng
            batches_a, batches_b = list(a), list(b)
            assert len(batches_a) == len(batches_b)
            for (xa, ya), (xb, yb) in zip(batches_a, batches_b):
                assert np.array_equal(xa, xb)
                assert np.array_equal(ya, yb)


class TestValidation:
    def test_length_mismatch(self):
        with pytest.raises(DatasetError):
            DataLoader(np.zeros((3, 1)), np.zeros(4))

    def test_empty_dataset(self):
        with pytest.raises(DatasetError):
            DataLoader(np.zeros((0, 1)), np.zeros(0))

    def test_bad_batch_size(self):
        with pytest.raises(DatasetError):
            DataLoader(np.zeros((3, 1)), np.zeros(3), batch_size=0)
