"""DataLoader.shard: exact disjoint partition of the serial epoch."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.nn.dataloader import DataLoader, ShardBatch


def _make_loader(n=50, batch_size=16, seed=7, **kwargs):
    # inputs carry their own index so slices are traceable to examples
    inputs = np.arange(n, dtype=np.float64).reshape(n, 1) * 10.0
    labels = np.arange(n, dtype=np.int64)
    return DataLoader(inputs, labels, batch_size=batch_size, seed=seed,
                      **kwargs)


@pytest.mark.parametrize("world", [1, 2, 3, 4, 5])
def test_rank_slices_reassemble_each_serial_batch(world):
    serial_batches = list(_make_loader())
    shard_batches = [list(_make_loader().shard(rank, world).iter_meta())
                     for rank in range(world)]
    assert all(len(s) == len(serial_batches) for s in shard_batches)
    for b, (inputs, labels) in enumerate(serial_batches):
        pieces = [shard_batches[rank][b] for rank in range(world)]
        # contiguous, ordered, metadata-consistent slices ...
        offset = 0
        for piece in pieces:
            assert isinstance(piece, ShardBatch)
            assert piece.global_size == len(labels)
            assert piece.offset == offset
            offset += len(piece.labels)
        assert offset == len(labels)
        # ... that concatenate back to exactly the serial batch
        np.testing.assert_array_equal(
            np.concatenate([p.labels for p in pieces]), labels)
        np.testing.assert_array_equal(
            np.concatenate([p.inputs for p in pieces]), inputs)


def test_epoch_partition_is_exact_and_disjoint():
    world, n = 3, 50
    seen = []
    for rank in range(world):
        for piece in _make_loader(n=n).shard(rank, world).iter_meta():
            seen.extend(piece.labels.tolist())
    # every example exactly once across all ranks and batches
    assert sorted(seen) == list(range(n))


def test_near_equal_slice_sizes():
    # 16 across 3 ranks -> 5/5/6 (the r*n//W split), never 6/6/4
    sizes = []
    for rank in range(3):
        piece = next(_make_loader(n=16).shard(rank, 3).iter_meta())
        sizes.append(len(piece.labels))
    assert sizes == [5, 5, 6]
    assert max(sizes) - min(sizes) <= 1


def test_ragged_final_batch_smaller_than_world_gives_empty_slices():
    # 17 examples, batch 16 -> final global batch of 1 across 4 ranks
    world = 4
    finals = [list(_make_loader(n=17).shard(rank, world).iter_meta())[-1]
              for rank in range(world)]
    assert [len(f.labels) for f in finals].count(0) == world - 1
    for final in finals:
        assert final.global_size == 1  # empty ranks still see the size
    assert sum(len(f.labels) for f in finals) == 1


def test_shard_advances_the_shared_rng_like_a_serial_epoch():
    """Consuming epoch k sharded then epoch k+1 serially must match a
    purely serial run -- each shard iteration draws the epoch order
    exactly once from the shared RNG."""
    serial = _make_loader()
    first_serial = [labels for _, labels in serial]
    second_serial = [labels for _, labels in serial]

    mixed = _make_loader()
    list(mixed.shard(0, 4).iter_meta())  # consume epoch 0 as one rank
    second_mixed = [labels for _, labels in mixed]
    for a, b in zip(second_serial, second_mixed):
        np.testing.assert_array_equal(a, b)
    # and epoch orders do differ between epochs (shuffling is live)
    assert any(not np.array_equal(a, b)
               for a, b in zip(first_serial, second_serial))


def test_iter_yields_plain_pairs():
    inputs, labels = next(iter(_make_loader().shard(1, 2)))
    assert isinstance(inputs, np.ndarray) and isinstance(labels, np.ndarray)
    assert len(inputs) == len(labels) == 8


def test_drop_last_respected_by_shards():
    loader = _make_loader(n=50, drop_last=True)
    shard = loader.shard(0, 2)
    assert len(shard) == 3  # 50 // 16, ragged batch dropped
    assert len(list(shard.iter_meta())) == 3


def test_invalid_rank_or_world_raises():
    loader = _make_loader()
    with pytest.raises(DatasetError):
        loader.shard(0, 0)
    with pytest.raises(DatasetError):
        loader.shard(-1, 2)
    with pytest.raises(DatasetError):
        loader.shard(2, 2)
