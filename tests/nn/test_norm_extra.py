"""LayerNorm and GroupNorm."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.errors import ConfigError
from repro.nn import GroupNorm, LayerNorm

RNG = np.random.default_rng(97)


class TestLayerNorm:
    def test_rows_normalized(self):
        norm = LayerNorm(8)
        x = RNG.standard_normal((5, 8)) * 4 + 2
        out = norm(Tensor(x)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta(self):
        norm = LayerNorm(4)
        norm.gamma.data = np.full(4, 3.0)
        norm.beta.data = np.full(4, -1.0)
        out = norm(Tensor(RNG.standard_normal((2, 4)))).data
        assert np.allclose(out.mean(axis=-1), -1.0, atol=1e-7)

    def test_batch_independent(self):
        norm = LayerNorm(6)
        x = RNG.standard_normal((1, 6))
        single = norm(Tensor(x)).data
        stacked = norm(Tensor(np.concatenate([x, RNG.standard_normal((3, 6))]))).data
        assert np.allclose(single[0], stacked[0])

    def test_gradients_flow(self):
        norm = LayerNorm(4)
        x = Tensor(RNG.standard_normal((3, 4)), requires_grad=True)
        F.sum(F.mul(norm(x), norm(x))).backward()
        assert x.grad is not None
        assert norm.gamma.grad is not None


class TestGroupNorm:
    def test_group_statistics(self):
        norm = GroupNorm(2, 4)
        x = RNG.standard_normal((3, 4, 5, 5)) * 3 + 1
        out = norm(Tensor(x)).data
        grouped = out.reshape(3, 2, -1)
        assert np.allclose(grouped.mean(axis=2), 0.0, atol=1e-7)
        assert np.allclose(grouped.std(axis=2), 1.0, atol=1e-3)

    def test_indivisible_raises(self):
        with pytest.raises(ConfigError):
            GroupNorm(3, 4)

    def test_channel_mismatch_raises(self):
        norm = GroupNorm(2, 4)
        with pytest.raises(ConfigError):
            norm(Tensor(RNG.standard_normal((1, 6, 3, 3))))

    def test_single_group_is_instance_wide(self):
        norm = GroupNorm(1, 4)
        x = RNG.standard_normal((2, 4, 3, 3))
        out = norm(Tensor(x)).data
        flat = out.reshape(2, -1)
        assert np.allclose(flat.mean(axis=1), 0.0, atol=1e-7)

    def test_gradients_flow(self):
        norm = GroupNorm(2, 4)
        x = Tensor(RNG.standard_normal((2, 4, 3, 3)), requires_grad=True)
        F.sum(F.mul(norm(x), norm(x))).backward()
        assert x.grad is not None
        assert norm.beta.grad is not None
