"""Module system: registration, traversal, modes, state dicts."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.errors import ReproError
from repro.nn import Linear, Module, Parameter, ReLU, Sequential


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 3, rng=np.random.default_rng(0))
        self.fc2 = Linear(3, 2, rng=np.random.default_rng(1))
        self.scale = Parameter(np.ones(1))
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return F.mul(self.fc2(F.relu(self.fc1(x))), self.scale)


class TestRegistration:
    def test_parameters_registered_in_order(self):
        names = [n for n, _ in Toy().named_parameters()]
        assert names == ["scale", "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        toy = Toy()
        assert toy.num_parameters() == 1 + (4 * 3 + 3) + (3 * 2 + 2)

    def test_named_modules_includes_self(self):
        names = [n for n, _ in Toy().named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_buffers(self):
        toy = Toy()
        assert [n for n, _ in toy.named_buffers()] == ["counter"]
        toy.update_buffer("counter", np.array([5.0]))
        assert toy.counter[0] == 5.0

    def test_update_unknown_buffer_raises(self):
        with pytest.raises(ReproError):
            Toy().update_buffer("missing", np.zeros(1))

    def test_nested_parameter_names(self):
        seq = Sequential(Linear(2, 2), Sequential(Linear(2, 2)))
        names = [n for n, _ in seq.named_parameters()]
        assert "0.weight" in names
        assert "1.0.weight" in names


class TestModes:
    def test_train_eval_propagate(self):
        toy = Toy()
        toy.eval()
        assert not toy.fc1.training
        toy.train()
        assert toy.fc2.training

    def test_zero_grad(self):
        toy = Toy()
        out = F.sum(toy(Tensor(np.ones((2, 4)))))
        out.backward()
        assert toy.fc1.weight.grad is not None
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Toy(), Toy()
        b.fc1.weight.data = b.fc1.weight.data + 1.0
        b.load_state_dict(a.state_dict())
        assert np.allclose(a.fc1.weight.data, b.fc1.weight.data)

    def test_state_dict_copies(self):
        toy = Toy()
        state = toy.state_dict()
        state["fc1.weight"][:] = 99.0
        assert not np.allclose(toy.fc1.weight.data, 99.0)

    def test_buffers_in_state_dict(self):
        toy = Toy()
        toy.update_buffer("counter", np.array([7.0]))
        other = Toy()
        other.load_state_dict(toy.state_dict())
        assert other.counter[0] == 7.0

    def test_unknown_parameter_raises(self):
        toy = Toy()
        with pytest.raises(ReproError):
            toy.load_state_dict({"nope": np.zeros(1)})

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["fc1.weight"] = np.zeros((1, 1))
        with pytest.raises(ReproError):
            toy.load_state_dict(state)


class TestSequential:
    def test_forward_chains(self):
        seq = Sequential(Linear(3, 3, rng=np.random.default_rng(0)), ReLU())
        out = seq(Tensor(np.ones((2, 3))))
        assert out.shape == (2, 3)
        assert np.all(out.data >= 0)

    def test_len_iter_getitem(self):
        seq = Sequential(ReLU(), ReLU(), ReLU())
        assert len(seq) == 3
        assert len(list(seq)) == 3
        assert isinstance(seq[1], ReLU)
