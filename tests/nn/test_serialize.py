"""npz save/load of model state."""

import numpy as np

from repro.autograd import Tensor
from repro.nn import BatchNorm1d, Linear, Sequential, load_state, save_state


def make_model(seed=0):
    return Sequential(
        Linear(4, 8, rng=np.random.default_rng(seed)),
        BatchNorm1d(8),
        Linear(8, 2, rng=np.random.default_rng(seed + 1)),
    )


class TestSerialize:
    def test_roundtrip_parameters(self, tmp_path):
        model = make_model(seed=1)
        path = tmp_path / "model.npz"
        save_state(model, path)
        other = make_model(seed=2)
        load_state(other, path)
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            assert np.allclose(a.data, b.data)

    def test_roundtrip_buffers(self, tmp_path):
        model = make_model()
        model(Tensor(np.random.default_rng(0).standard_normal((16, 4))))  # move BN stats
        path = tmp_path / "model.npz"
        save_state(model, path)
        other = make_model()
        load_state(other, path)
        bn_a = model[1]
        bn_b = other[1]
        assert np.allclose(bn_a.running_mean, bn_b.running_mean)

    def test_same_predictions_after_load(self, tmp_path):
        model = make_model(seed=3)
        model.eval()
        x = np.random.default_rng(1).standard_normal((5, 4))
        expected = model(Tensor(x)).data
        path = tmp_path / "model.npz"
        save_state(model, path)
        other = make_model(seed=9)
        other.eval()
        load_state(other, path)
        assert np.allclose(other(Tensor(x)).data, expected)
