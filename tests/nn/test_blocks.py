"""Residual blocks and conv-bn-relu stems."""

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.nn import BasicBlock, ConvBnRelu, Identity

RNG = np.random.default_rng(13)


class TestConvBnRelu:
    def test_output_shape(self):
        block = ConvBnRelu(3, 8, rng=np.random.default_rng(0))
        out = block(Tensor(RNG.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 8, 8)

    def test_output_nonnegative(self):
        block = ConvBnRelu(2, 4, rng=np.random.default_rng(0))
        out = block(Tensor(RNG.standard_normal((2, 2, 6, 6))))
        assert np.all(out.data >= 0)

    def test_strided(self):
        block = ConvBnRelu(3, 8, stride=2, rng=np.random.default_rng(0))
        out = block(Tensor(RNG.standard_normal((1, 3, 8, 8))))
        assert out.shape == (1, 8, 4, 4)


class TestBasicBlock:
    def test_identity_shortcut_when_same_shape(self):
        block = BasicBlock(8, 8, stride=1, rng=np.random.default_rng(0))
        assert isinstance(block.shortcut, Identity)

    def test_projection_shortcut_on_stride(self):
        block = BasicBlock(8, 8, stride=2, rng=np.random.default_rng(0))
        assert not isinstance(block.shortcut, Identity)

    def test_projection_shortcut_on_channel_change(self):
        block = BasicBlock(8, 16, stride=1, rng=np.random.default_rng(0))
        assert not isinstance(block.shortcut, Identity)

    def test_output_shape_stride2(self):
        block = BasicBlock(4, 8, stride=2, rng=np.random.default_rng(0))
        out = block(Tensor(RNG.standard_normal((2, 4, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_gradient_flows_through_shortcut(self):
        block = BasicBlock(4, 4, rng=np.random.default_rng(0))
        x = Tensor(RNG.standard_normal((2, 4, 6, 6)), requires_grad=True)
        F.sum(block(x)).backward()
        assert x.grad is not None
        # Identity shortcut guarantees a non-vanishing path.
        assert np.abs(x.grad).max() > 0

    def test_all_parameters_receive_gradients(self):
        block = BasicBlock(4, 8, stride=2, rng=np.random.default_rng(0))
        out = F.sum(F.mul(block(Tensor(RNG.standard_normal((2, 4, 6, 6)))),
                          Tensor(RNG.standard_normal((2, 8, 3, 3)))))
        out.backward()
        missing = [n for n, p in block.named_parameters() if p.grad is None]
        assert missing == []
