"""Optimizers and schedules: update rules and convergence."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.errors import ConfigError
from repro.nn import SGD, Adam, CosineSchedule, StepSchedule
from repro.nn.module import Parameter


def quadratic_loss(param):
    # loss = sum((p - 3)^2), minimum at 3.
    diff = F.sub(param, Tensor(3.0))
    return F.sum(F.mul(diff, diff))


class TestSGD:
    def test_vanilla_step(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([2.0])
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [0.8])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        assert np.allclose(p.data, [-1.0])
        p.grad = np.array([1.0])
        opt.step()  # velocity = 0.9*1 + 1 = 1.9
        assert np.allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = Parameter(np.array([10.0]))
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.1).step()
        assert np.allclose(p.data, [10.0 - 0.1 * 0.1 * 10.0])

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [1.0])

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([0.0, 10.0]))
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            loss = quadratic_loss(p)
            p.grad = None
            loss.backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-4)

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.ones(1)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_empty_params_raises(self):
        with pytest.raises(ConfigError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ConfigError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step is ~lr * sign(grad).
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([5.0])
        opt.step()
        assert np.allclose(p.data, [-0.01], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([-5.0, 20.0]))
        opt = Adam([p], lr=0.3)
        for _ in range(300):
            loss = quadratic_loss(p)
            p.grad = None
            loss.backward()
            opt.step()
        assert np.allclose(p.data, 3.0, atol=1e-2)

    def test_weight_decay_applied(self):
        p = Parameter(np.array([100.0]))
        p.grad = np.array([0.0])
        opt = Adam([p], lr=0.1, weight_decay=0.5)
        opt.step()
        assert p.data[0] < 100.0


class TestSchedules:
    def test_step_schedule(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = StepSchedule(opt, step_size=2, gamma=0.1)
        sched.step()
        assert np.isclose(opt.lr, 1.0)
        sched.step()
        assert np.isclose(opt.lr, 0.1)
        sched.step(); sched.step()
        assert np.isclose(opt.lr, 0.01)

    def test_cosine_schedule_endpoints(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(opt, total_epochs=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.0, atol=1e-12)

    def test_cosine_schedule_monotone_decreasing(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(opt, total_epochs=5)
        values = []
        for _ in range(5):
            sched.step()
            values.append(opt.lr)
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_cosine_clamps_past_total(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(opt, total_epochs=3, min_lr=0.05)
        for _ in range(10):
            sched.step()
        assert np.isclose(opt.lr, 0.05)
