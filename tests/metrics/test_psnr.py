"""PSNR metric."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics import batch_psnr, psnr

RNG = np.random.default_rng(71)


class TestPsnr:
    def test_identical_is_infinite(self):
        image = RNG.integers(0, 256, (8, 8)).astype(float)
        assert psnr(image, image) == float("inf")

    def test_known_value(self):
        # MSE = 100 -> PSNR = 20 log10(255) - 10 log10(100) ~ 28.13 dB.
        a = np.zeros((4, 4))
        b = np.full((4, 4), 10.0)
        assert np.isclose(psnr(a, b), 20 * np.log10(255) - 20, atol=1e-9)

    def test_monotone_in_noise(self):
        base = RNG.integers(0, 256, (16, 16)).astype(float)
        small = np.clip(base + RNG.normal(0, 2, base.shape), 0, 255)
        large = np.clip(base + RNG.normal(0, 30, base.shape), 0, 255)
        assert psnr(base, small) > psnr(base, large)

    def test_symmetry(self):
        a = RNG.integers(0, 256, (8, 8)).astype(float)
        b = RNG.integers(0, 256, (8, 8)).astype(float)
        assert np.isclose(psnr(a, b), psnr(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_batch(self):
        originals = RNG.integers(0, 256, (3, 8, 8, 1)).astype(np.uint8)
        recon = originals.copy()
        recon[1] = 255 - recon[1]
        values = batch_psnr(originals, recon)
        assert values.shape == (3,)
        assert values[0] == float("inf")
        assert values[1] < 15.0

    def test_batch_shape_mismatch(self):
        with pytest.raises(ShapeError):
            batch_psnr(np.zeros((2, 4, 4, 1)), np.zeros((3, 4, 4, 1)))
