"""Accuracy, recognizability and distribution metrics."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.metrics import (
    evaluate_accuracy,
    histogram_overlap,
    ks_distance,
    predict_classes,
    recognizable_count,
    recognizable_mask,
)
from repro.nn.module import Module

RNG = np.random.default_rng(53)


class FirstPixelClassifier(Module):
    """Predicts class by thresholding the first pixel -- fully predictable."""

    def __init__(self, num_classes=4):
        super().__init__()
        self.num_classes = num_classes

    def forward(self, x):
        # x is NCHW in [0,1]; bucket the first pixel into num_classes bins.
        first = x.data[:, 0, 0, 0]
        buckets = np.clip((first * self.num_classes).astype(int), 0, self.num_classes - 1)
        logits = np.zeros((len(buckets), self.num_classes))
        logits[np.arange(len(buckets)), buckets] = 10.0
        return Tensor(logits)


class TestAccuracy:
    def test_perfect_predictions(self):
        model = FirstPixelClassifier(4)
        inputs = np.zeros((8, 1, 2, 2))
        inputs[:, 0, 0, 0] = (np.arange(8) % 4) / 4 + 0.1
        labels = np.arange(8) % 4
        assert evaluate_accuracy(model, inputs, labels) == 1.0

    def test_wrong_labels(self):
        model = FirstPixelClassifier(2)
        inputs = np.zeros((4, 1, 2, 2))
        labels = np.ones(4, dtype=int)  # model will predict class 0
        assert evaluate_accuracy(model, inputs, labels) == 0.0

    def test_batched_prediction_consistent(self):
        model = FirstPixelClassifier(4)
        inputs = RNG.random((10, 1, 2, 2))
        assert np.array_equal(
            predict_classes(model, inputs, batch_size=3),
            predict_classes(model, inputs, batch_size=100),
        )

    def test_restores_training_mode(self):
        model = FirstPixelClassifier(2)
        model.train()
        predict_classes(model, np.zeros((2, 1, 2, 2)))
        assert model.training


class TestRecognizability:
    def test_mask_true_for_matching_class(self):
        model = FirstPixelClassifier(4)
        images = np.zeros((4, 2, 2, 1), dtype=np.uint8)
        # first pixel encodes the class: class k -> pixel ~ k*64 + 32
        labels = np.arange(4)
        images[:, 0, 0, 0] = labels * 64 + 32
        mask = recognizable_mask(model, images, labels)
        assert mask.all()

    def test_count(self):
        model = FirstPixelClassifier(4)
        images = np.zeros((4, 2, 2, 1), dtype=np.uint8)
        images[:, 0, 0, 0] = np.arange(4) * 64 + 32
        labels = np.array([0, 1, 0, 0])  # two wrong labels
        assert recognizable_count(model, images, labels) == 2

    def test_normalization_applied(self):
        model = FirstPixelClassifier(2)
        images = np.zeros((2, 2, 2, 1), dtype=np.uint8)
        images[:, 0, 0, 0] = [32, 224]
        # With mean 0.5/std 1 normalization the first pixels become
        # negative/positive -> clip to classes 0/1 still works.
        mask = recognizable_mask(model, images, np.array([0, 1]),
                                 mean=np.array([0.0]), std=np.array([1.0]))
        assert mask.tolist() == [True, True]


class TestDistributionDistances:
    def test_overlap_identical_samples(self):
        sample = RNG.standard_normal(5000)
        assert histogram_overlap(sample, sample) == pytest.approx(1.0)

    def test_overlap_scale_invariant(self):
        sample = RNG.standard_normal(5000)
        assert histogram_overlap(sample, sample * 7 + 3) == pytest.approx(1.0)

    def test_overlap_disjoint_shapes(self):
        uniform = RNG.random(5000)
        spiky = np.concatenate([np.zeros(4900), np.ones(100)])
        assert histogram_overlap(uniform, spiky) < 0.3

    def test_overlap_symmetry(self):
        a, b = RNG.standard_normal(2000), RNG.random(2000)
        assert np.isclose(histogram_overlap(a, b), histogram_overlap(b, a))

    def test_ks_identical_zero(self):
        sample = RNG.standard_normal(2000)
        assert ks_distance(sample, sample) == pytest.approx(0.0, abs=1e-12)

    def test_ks_different_distributions(self):
        gauss = RNG.standard_normal(2000)
        bimodal = np.concatenate([RNG.normal(-3, 0.1, 1000), RNG.normal(3, 0.1, 1000)])
        assert ks_distance(gauss, bimodal) > 0.2

    def test_overlap_empty_raises(self):
        from repro.errors import ShapeError
        with pytest.raises(ShapeError):
            histogram_overlap(np.array([]), np.ones(4))
