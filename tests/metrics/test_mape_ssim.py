"""MAPE and SSIM metrics."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.metrics import (
    batch_mape,
    batch_ssim,
    count_above_threshold,
    count_below_threshold,
    mape,
    ssim,
)

RNG = np.random.default_rng(47)


def random_image(size=16, channels=1, seed=0):
    return np.random.default_rng(seed).integers(0, 256, (size, size, channels)).astype(np.uint8)


class TestMape:
    def test_identical_images_zero(self):
        image = random_image()
        assert mape(image, image) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2, 1))
        b = np.full((2, 2, 1), 10.0)
        assert mape(a, b) == 10.0

    def test_symmetry(self):
        a, b = random_image(seed=1), random_image(seed=2)
        assert np.isclose(mape(a, b), mape(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            mape(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_batch(self):
        originals = np.stack([random_image(seed=i) for i in range(3)])
        offset = np.clip(originals.astype(int) + 5, 0, 255).astype(np.uint8)
        values = batch_mape(originals, offset)
        assert values.shape == (3,)
        assert np.all(values <= 5.0)

    def test_count_below_threshold(self):
        originals = np.stack([random_image(seed=i) for i in range(4)])
        recon = originals.copy()
        recon[0] = 255 - recon[0]  # ruin one
        assert count_below_threshold(originals, recon, threshold=20.0) >= 3

    def test_max_value(self):
        assert mape(np.zeros((2, 2)), np.full((2, 2), 255.0)) == 255.0


class TestSsim:
    def test_identical_images_one(self):
        image = random_image()
        assert np.isclose(ssim(image, image), 1.0, atol=1e-9)

    def test_range_bounds(self):
        a, b = random_image(seed=3), random_image(seed=4)
        value = ssim(a, b)
        assert -1.0 <= value <= 1.0

    def test_inverted_image_strongly_negative_or_low(self):
        image = random_image(seed=5)
        assert ssim(image, 255 - image) < 0.2

    def test_noise_degrades_ssim_monotonically(self):
        rng = np.random.default_rng(6)
        base = random_image(seed=6).astype(float)
        low_noise = np.clip(base + rng.normal(0, 10, base.shape), 0, 255)
        high_noise = np.clip(base + rng.normal(0, 80, base.shape), 0, 255)
        assert ssim(base, low_noise) > ssim(base, high_noise)

    def test_2d_and_3d_agree_for_gray(self):
        a, b = random_image(seed=7), random_image(seed=8)
        assert np.isclose(ssim(a[..., 0], b[..., 0]), ssim(a, b))

    def test_multichannel_averages(self):
        a = random_image(channels=3, seed=9)
        assert np.isclose(ssim(a, a), 1.0, atol=1e-9)

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ssim(np.zeros((4, 4)), np.zeros((5, 5)))

    def test_bad_ndim(self):
        with pytest.raises(ShapeError):
            ssim(np.zeros(4), np.zeros(4))

    def test_batch_and_count(self):
        originals = np.stack([random_image(seed=i, size=12) for i in range(3)])
        recon = originals.copy()
        recon[2] = 255 - recon[2]
        values = batch_ssim(originals, recon)
        assert values.shape == (3,)
        assert count_above_threshold(originals, recon, threshold=0.5) == 2

    def test_smooth_images_more_forgiving_than_noise(self):
        # A small constant shift barely hurts SSIM on smooth images.
        ys, xs = np.mgrid[0:16, 0:16]
        smooth = ((xs + ys) * 255 / 30).astype(float)
        shifted = np.clip(smooth + 8, 0, 255)
        assert ssim(smooth, shifted) > 0.9
