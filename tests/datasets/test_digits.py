"""Stroke-rendered synthetic digits."""

import numpy as np
import pytest

from repro.datasets import SyntheticDigitsConfig, make_synthetic_digits
from repro.errors import DatasetError


class TestSyntheticDigits:
    def test_shapes(self):
        ds = make_synthetic_digits(SyntheticDigitsConfig(num_images=50, image_size=16,
                                                         seed=0))
        assert ds.images.shape == (50, 16, 16, 1)
        assert ds.images.dtype == np.uint8
        assert ds.num_classes == 10

    def test_deterministic(self):
        config = SyntheticDigitsConfig(num_images=30, image_size=16, seed=7)
        a = make_synthetic_digits(config)
        b = make_synthetic_digits(config)
        assert np.array_equal(a.images, b.images)

    def test_all_ten_digits_present(self):
        ds = make_synthetic_digits(SyntheticDigitsConfig(num_images=60, seed=1))
        assert set(ds.labels.tolist()) == set(range(10))

    def test_ink_on_dark_background(self):
        ds = make_synthetic_digits(SyntheticDigitsConfig(num_images=20, seed=2,
                                                         noise_sigma=2.0))
        image = ds.images[0].astype(float)
        # Background dominates: the median pixel is dark, the max bright.
        assert np.median(image) < 60
        assert image.max() > 150

    def test_instances_of_same_digit_differ(self):
        ds = make_synthetic_digits(SyntheticDigitsConfig(num_images=60, seed=3))
        zeros = ds.images[ds.labels == 0]
        assert len(zeros) >= 2
        assert not np.array_equal(zeros[0], zeros[1])

    def test_digits_are_classifiable(self):
        # Same-digit images must be closer than different-digit images.
        ds = make_synthetic_digits(SyntheticDigitsConfig(num_images=100, seed=4,
                                                         noise_sigma=3.0))
        images = ds.images.astype(float).reshape(len(ds), -1)
        means = np.stack([images[ds.labels == d].mean(axis=0) for d in range(10)])
        correct = 0
        for image, label in zip(images, ds.labels):
            distances = np.abs(means - image).mean(axis=1)
            correct += int(distances.argmin() == label)
        assert correct / len(ds) > 0.8  # nearest-class-mean already works

    def test_invalid_configs(self):
        with pytest.raises(DatasetError):
            make_synthetic_digits(SyntheticDigitsConfig(num_images=5))
        with pytest.raises(DatasetError):
            make_synthetic_digits(SyntheticDigitsConfig(image_size=8))
