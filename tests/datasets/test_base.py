"""ImageDataset container: validation, subsetting, statistics."""

import numpy as np
import pytest

from repro.datasets import ImageDataset
from repro.errors import DatasetError


def make_images(n=6, size=8, channels=3, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(n, size, size, channels), dtype=np.uint8)


class TestValidation:
    def test_valid_construction(self):
        ds = ImageDataset(make_images(), np.arange(6) % 3)
        assert len(ds) == 6
        assert ds.image_shape == (8, 8, 3)

    def test_wrong_ndim(self):
        with pytest.raises(DatasetError):
            ImageDataset(np.zeros((4, 8, 8), dtype=np.uint8), np.zeros(4))

    def test_wrong_dtype(self):
        with pytest.raises(DatasetError):
            ImageDataset(np.zeros((4, 8, 8, 3)), np.zeros(4))

    def test_length_mismatch(self):
        with pytest.raises(DatasetError):
            ImageDataset(make_images(4), np.zeros(5))

    def test_labels_beyond_class_names(self):
        with pytest.raises(DatasetError):
            ImageDataset(make_images(3), np.array([0, 1, 5]), class_names=["a", "b"])


class TestAccess:
    def test_getitem(self):
        ds = ImageDataset(make_images(), np.arange(6))
        image, label = ds[2]
        assert image.shape == (8, 8, 3)
        assert label == 2

    def test_num_classes_from_labels(self):
        ds = ImageDataset(make_images(), np.array([0, 0, 1, 1, 2, 2]))
        assert ds.num_classes == 3

    def test_num_classes_from_names(self):
        ds = ImageDataset(make_images(), np.zeros(6, dtype=int),
                          class_names=["a", "b", "c", "d"])
        assert ds.num_classes == 4

    def test_pixels_per_image(self):
        ds = ImageDataset(make_images(size=8, channels=3), np.zeros(6, dtype=int))
        assert ds.pixels_per_image == 8 * 8 * 3

    def test_subset(self):
        ds = ImageDataset(make_images(), np.arange(6))
        sub = ds.subset([1, 3])
        assert len(sub) == 2
        assert sub.labels.tolist() == [1, 3]
        assert np.array_equal(sub.images[0], ds.images[1])

    def test_subset_is_copy(self):
        ds = ImageDataset(make_images(), np.arange(6))
        sub = ds.subset([0])
        sub.images[0, 0, 0, 0] = 255
        # fancy indexing copies, so the parent must be untouched unless equal already
        assert ds.images[0, 0, 0, 0] == make_images()[0, 0, 0, 0]


class TestStatistics:
    def test_per_image_std_shape(self):
        ds = ImageDataset(make_images(), np.zeros(6, dtype=int))
        assert ds.per_image_std().shape == (6,)

    def test_per_image_std_value(self):
        flat = np.zeros((1, 4, 4, 1), dtype=np.uint8)
        flat[0, :2] = 100
        ds = ImageDataset(flat, np.zeros(1, dtype=int))
        expected = np.array([100] * 8 + [0] * 8, dtype=float).std()
        assert np.isclose(ds.per_image_std()[0], expected)

    def test_constant_image_zero_std(self):
        images = np.full((1, 4, 4, 1), 7, dtype=np.uint8)
        ds = ImageDataset(images, np.zeros(1, dtype=int))
        assert ds.per_image_std()[0] == 0.0
