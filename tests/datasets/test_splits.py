"""Stratified train/test splitting."""

import numpy as np
import pytest

from repro.datasets import ImageDataset, train_test_split
from repro.errors import DatasetError


def dataset(n=40, classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return ImageDataset(
        rng.integers(0, 256, size=(n, 6, 6, 1), dtype=np.uint8),
        np.arange(n) % classes,
    )


class TestSplit:
    def test_sizes(self):
        # 10 images per class, 20% -> 2 test images per class.
        train, test = train_test_split(dataset(40), test_fraction=0.2, seed=0)
        assert len(train) == 32
        assert len(test) == 8

    def test_disjoint_and_complete(self):
        ds = dataset(20)
        # Tag each image uniquely through its first pixel.
        ds.images[:, 0, 0, 0] = np.arange(20)
        train, test = train_test_split(ds, test_fraction=0.3, seed=1)
        tags = sorted(np.concatenate([train.images[:, 0, 0, 0], test.images[:, 0, 0, 0]]))
        assert tags == list(range(20))

    def test_stratified(self):
        train, test = train_test_split(dataset(40, classes=4), test_fraction=0.25, seed=2)
        for split in (train, test):
            assert set(split.labels.tolist()) == {0, 1, 2, 3}

    def test_deterministic(self):
        a_train, _ = train_test_split(dataset(30), seed=7)
        b_train, _ = train_test_split(dataset(30), seed=7)
        assert np.array_equal(a_train.images, b_train.images)

    def test_each_class_keeps_at_least_one_train_sample(self):
        train, test = train_test_split(dataset(8, classes=4), test_fraction=0.5, seed=0)
        for label in range(4):
            assert (train.labels == label).sum() >= 1

    def test_invalid_fraction(self):
        with pytest.raises(DatasetError):
            train_test_split(dataset(), test_fraction=0.0)
        with pytest.raises(DatasetError):
            train_test_split(dataset(), test_fraction=1.0)
