"""Synthetic CIFAR / face generators: determinism, structure, learnability hooks."""

import numpy as np
import pytest

from repro.datasets import (
    SyntheticCifarConfig,
    SyntheticFacesConfig,
    make_synthetic_cifar,
    make_synthetic_faces,
)
from repro.errors import DatasetError


class TestSyntheticCifar:
    def test_shapes_and_dtype(self):
        ds = make_synthetic_cifar(SyntheticCifarConfig(num_images=30, num_classes=5,
                                                       image_size=16, seed=0))
        assert ds.images.shape == (30, 16, 16, 3)
        assert ds.images.dtype == np.uint8
        assert ds.num_classes == 5

    def test_deterministic(self):
        config = SyntheticCifarConfig(num_images=20, num_classes=4, image_size=12, seed=9)
        a = make_synthetic_cifar(config)
        b = make_synthetic_cifar(config)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = make_synthetic_cifar(SyntheticCifarConfig(num_images=20, seed=1, image_size=12))
        b = make_synthetic_cifar(SyntheticCifarConfig(num_images=20, seed=2, image_size=12))
        assert not np.array_equal(a.images, b.images)

    def test_all_classes_present(self):
        ds = make_synthetic_cifar(SyntheticCifarConfig(num_images=40, num_classes=8,
                                                       image_size=12, seed=0))
        assert set(ds.labels.tolist()) == set(range(8))

    def test_std_spread_is_wide(self):
        # Contrast jitter must spread the per-image std (Sec. IV-A needs it).
        ds = make_synthetic_cifar(SyntheticCifarConfig(num_images=150, image_size=16, seed=0))
        stds = ds.per_image_std()
        assert stds.max() - stds.min() > 15.0

    def test_grayscale_variant(self):
        ds = make_synthetic_cifar(SyntheticCifarConfig(num_images=10, channels=1,
                                                       image_size=12, seed=0))
        assert ds.image_shape == (12, 12, 1)

    def test_classes_are_visually_distinct(self):
        # Mean intra-class distance should be smaller than inter-class.
        ds = make_synthetic_cifar(SyntheticCifarConfig(num_images=60, num_classes=3,
                                                       image_size=12, seed=0,
                                                       contrast_range=(1.0, 1.0),
                                                       noise_sigma=4.0))
        means = np.stack([
            ds.images[ds.labels == k].astype(float).mean(axis=0) for k in range(3)
        ])
        intra = np.mean([
            np.abs(ds.images[ds.labels == k].astype(float) - means[k]).mean()
            for k in range(3)
        ])
        inter = np.mean([
            np.abs(means[i] - means[j]).mean()
            for i in range(3) for j in range(3) if i != j
        ])
        assert inter > intra

    def test_invalid_configs(self):
        with pytest.raises(DatasetError):
            make_synthetic_cifar(SyntheticCifarConfig(num_images=5, num_classes=10))
        with pytest.raises(DatasetError):
            make_synthetic_cifar(SyntheticCifarConfig(channels=2))
        with pytest.raises(DatasetError):
            make_synthetic_cifar(SyntheticCifarConfig(image_size=4))
        with pytest.raises(DatasetError):
            make_synthetic_cifar(SyntheticCifarConfig(contrast_range=(0.0, 1.0)))


class TestSyntheticFaces:
    def test_shapes(self):
        ds = make_synthetic_faces(SyntheticFacesConfig(num_identities=4,
                                                       images_per_identity=3,
                                                       image_size=24, seed=0))
        assert ds.images.shape == (12, 24, 24, 1)
        assert ds.num_classes == 4

    def test_deterministic(self):
        config = SyntheticFacesConfig(num_identities=3, images_per_identity=2,
                                      image_size=20, seed=4)
        assert np.array_equal(make_synthetic_faces(config).images,
                              make_synthetic_faces(config).images)

    def test_identity_consistency(self):
        # Same-identity faces must be closer than different-identity faces.
        ds = make_synthetic_faces(SyntheticFacesConfig(num_identities=5,
                                                       images_per_identity=4,
                                                       image_size=24, seed=0,
                                                       noise_sigma=2.0))
        images = ds.images.astype(float)
        same, diff = [], []
        for i in range(len(ds)):
            for j in range(i + 1, len(ds)):
                distance = np.abs(images[i] - images[j]).mean()
                (same if ds.labels[i] == ds.labels[j] else diff).append(distance)
        assert np.mean(same) < np.mean(diff)

    def test_rgb_variant(self):
        ds = make_synthetic_faces(SyntheticFacesConfig(num_identities=2,
                                                       images_per_identity=2,
                                                       channels=3, image_size=20, seed=0))
        assert ds.image_shape == (20, 20, 3)

    def test_faces_are_smooth_structured(self):
        # Faces must be much smoother than uniform noise (SSIM needs texture).
        from repro.attacks.decoder import total_variation
        ds = make_synthetic_faces(SyntheticFacesConfig(num_identities=2,
                                                       images_per_identity=2,
                                                       image_size=24, seed=0))
        noise = np.random.default_rng(0).integers(0, 256, size=(24, 24, 1))
        assert total_variation(ds.images[0]) < 0.5 * total_variation(noise)

    def test_invalid_configs(self):
        with pytest.raises(DatasetError):
            make_synthetic_faces(SyntheticFacesConfig(num_identities=1))
        with pytest.raises(DatasetError):
            make_synthetic_faces(SyntheticFacesConfig(images_per_identity=0))
        with pytest.raises(DatasetError):
            make_synthetic_faces(SyntheticFacesConfig(image_size=8))
