"""Dataset npz persistence."""

import numpy as np
import pytest

from repro.datasets import (
    ImageDataset,
    SyntheticCifarConfig,
    load_dataset,
    make_synthetic_cifar,
    save_dataset,
)
from repro.errors import DatasetError


class TestDatasetIO:
    def test_roundtrip(self, tmp_path):
        ds = make_synthetic_cifar(SyntheticCifarConfig(num_images=20, image_size=12, seed=0))
        path = tmp_path / "data.npz"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert np.array_equal(loaded.images, ds.images)
        assert np.array_equal(loaded.labels, ds.labels)
        assert loaded.class_names == ds.class_names

    def test_roundtrip_without_class_names(self, tmp_path):
        images = np.zeros((3, 4, 4, 1), dtype=np.uint8)
        ds = ImageDataset(images, np.arange(3))
        path = tmp_path / "data.npz"
        save_dataset(ds, path)
        loaded = load_dataset(path)
        assert loaded.class_names is None
        assert len(loaded) == 3

    def test_invalid_archive_raises(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(DatasetError):
            load_dataset(path)
