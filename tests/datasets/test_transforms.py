"""Transforms: grayscale, batching, normalization, augmentation."""

import numpy as np
import pytest

from repro.datasets import ImageDataset, images_to_batch, normalize_batch, to_grayscale
from repro.datasets.transforms import random_flip_horizontal
from repro.errors import DatasetError


def rgb_dataset(n=4, size=8, seed=0):
    rng = np.random.default_rng(seed)
    return ImageDataset(
        rng.integers(0, 256, size=(n, size, size, 3), dtype=np.uint8),
        np.arange(n),
    )


class TestGrayscale:
    def test_output_single_channel(self):
        gray = to_grayscale(rgb_dataset())
        assert gray.image_shape == (8, 8, 1)
        assert gray.images.dtype == np.uint8

    def test_luma_weights(self):
        images = np.zeros((1, 2, 2, 3), dtype=np.uint8)
        images[..., 0] = 255  # pure red
        gray = to_grayscale(ImageDataset(images, np.zeros(1, dtype=int)))
        assert np.allclose(gray.images, round(0.299 * 255))

    def test_already_gray_is_noop(self):
        images = np.zeros((2, 4, 4, 1), dtype=np.uint8)
        ds = ImageDataset(images, np.zeros(2, dtype=int))
        assert to_grayscale(ds) is ds

    def test_preserves_labels(self):
        ds = rgb_dataset()
        assert np.array_equal(to_grayscale(ds).labels, ds.labels)


class TestBatching:
    def test_images_to_batch_layout(self):
        ds = rgb_dataset()
        batch = images_to_batch(ds.images)
        assert batch.shape == (4, 3, 8, 8)
        assert batch.max() <= 1.0 and batch.min() >= 0.0

    def test_single_image_gets_batch_axis(self):
        batch = images_to_batch(rgb_dataset().images[0])
        assert batch.shape == (1, 3, 8, 8)

    def test_values_transposed_correctly(self):
        images = np.zeros((1, 2, 2, 3), dtype=np.uint8)
        images[0, 0, 1, 2] = 255
        batch = images_to_batch(images)
        assert batch[0, 2, 0, 1] == 1.0


class TestNormalize:
    def test_self_normalization(self):
        batch = images_to_batch(rgb_dataset(n=16).images)
        normalized, mean, std = normalize_batch(batch)
        assert np.allclose(normalized.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        assert np.allclose(normalized.std(axis=(0, 2, 3)), 1.0, atol=1e-10)

    def test_reuse_statistics(self):
        batch = images_to_batch(rgb_dataset(n=8).images)
        _, mean, std = normalize_batch(batch)
        other = images_to_batch(rgb_dataset(n=4, seed=3).images)
        normalized, mean2, std2 = normalize_batch(other, mean, std)
        assert np.array_equal(mean, mean2)
        assert np.array_equal(std, std2)

    def test_constant_channel_guard(self):
        batch = np.zeros((2, 1, 4, 4))
        normalized, _, std = normalize_batch(batch)
        assert np.all(np.isfinite(normalized))
        assert std[0] == 1.0


class TestAugmentation:
    def test_flip_probability_one_flips_all(self):
        batch = images_to_batch(rgb_dataset().images)
        flipped = random_flip_horizontal(batch, np.random.default_rng(0), probability=1.0)
        assert np.allclose(flipped, batch[:, :, :, ::-1])

    def test_flip_probability_zero_is_identity(self):
        batch = images_to_batch(rgb_dataset().images)
        out = random_flip_horizontal(batch, np.random.default_rng(0), probability=0.0)
        assert np.allclose(out, batch)

    def test_flip_does_not_modify_input(self):
        batch = images_to_batch(rgb_dataset().images)
        copy = batch.copy()
        random_flip_horizontal(batch, np.random.default_rng(0), probability=1.0)
        assert np.allclose(batch, copy)
