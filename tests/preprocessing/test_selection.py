"""Sec. IV-A std-based candidate selection."""

import math

import numpy as np
import pytest

from repro.datasets import ImageDataset
from repro.errors import CapacityError
from repro.preprocessing import (
    dataset_std_summary,
    pixel_value_histogram,
    select_by_std_range,
    select_encoding_targets,
    weight_histogram,
)


def dataset_with_stds(stds, size=16, seed=0):
    """Build images whose per-image std approximately matches ``stds``."""
    rng = np.random.default_rng(seed)
    images = []
    for target in stds:
        # Half the pixels at 128-target, half at 128+target -> std == target.
        flat = np.full(size * size, 128.0)
        flat[: size * size // 2] = 128.0 - target
        flat[size * size // 2:] = 128.0 + target
        rng.shuffle(flat)
        images.append(flat.reshape(size, size, 1))
    images = np.clip(np.array(images), 0, 255).astype(np.uint8)
    return ImageDataset(images, np.zeros(len(stds), dtype=np.int64))


class TestSelectByRange:
    def test_strict_window(self):
        ds = dataset_with_stds([10, 20, 30, 40, 50])
        indices = select_by_std_range(ds, 15, 45)
        assert indices.tolist() == [1, 2, 3]

    def test_exclusive_bounds(self):
        ds = dataset_with_stds([20.0])
        assert select_by_std_range(ds, 20.0, 30.0).size == 0


class TestSelectEncodingTargets:
    def test_window_around_mean(self):
        ds = dataset_with_stds([30, 49, 50, 51, 52, 70])
        result = select_encoding_targets(ds, capacity=3, window=5.0, widen_if_short=False)
        expected_min = math.floor(ds.per_image_std().mean())
        assert result.std_range[0] == expected_min
        assert result.std_range[1] == expected_min + 5.0

    def test_targets_within_window(self):
        ds = dataset_with_stds(np.linspace(20, 80, 40))
        result = select_encoding_targets(ds, capacity=5, window=6.0)
        stds = ds.per_image_std()[result.target_indices]
        low, high = result.std_range
        assert np.all((stds > low) & (stds < high))

    def test_capacity_respected(self):
        ds = dataset_with_stds(np.linspace(20, 80, 40))
        result = select_encoding_targets(ds, capacity=5, window=20.0)
        assert len(result) == 5

    def test_short_candidates_without_widening(self):
        ds = dataset_with_stds(np.linspace(20, 80, 20))
        result = select_encoding_targets(ds, capacity=15, window=4.0,
                                         widen_if_short=False)
        assert len(result) < 15
        assert len(result) == len(result.candidate_indices)

    def test_widening_finds_more(self):
        ds = dataset_with_stds(np.linspace(20, 80, 20))
        narrow = select_encoding_targets(ds, capacity=15, window=4.0,
                                         widen_if_short=False)
        widened = select_encoding_targets(ds, capacity=15, window=4.0,
                                          widen_if_short=True)
        assert len(widened) >= len(narrow)

    def test_explicit_std_range(self):
        ds = dataset_with_stds([30, 50, 52, 54, 70])
        result = select_encoding_targets(ds, capacity=3, std_range=(50, 55),
                                         widen_if_short=False)
        assert result.std_range == (50.0, 55.0)
        stds = ds.per_image_std()[result.target_indices]
        assert np.all((stds > 50) & (stds < 55))

    def test_deterministic_draw(self):
        ds = dataset_with_stds(np.linspace(40, 60, 30))
        a = select_encoding_targets(ds, capacity=5, window=10.0, seed=3)
        b = select_encoding_targets(ds, capacity=5, window=10.0, seed=3)
        assert np.array_equal(a.target_indices, b.target_indices)

    def test_invalid_capacity(self):
        ds = dataset_with_stds([50, 51])
        with pytest.raises(CapacityError):
            select_encoding_targets(ds, capacity=0)

    def test_no_candidates_raises(self):
        ds = dataset_with_stds([10.0, 10.0])
        with pytest.raises(CapacityError):
            select_encoding_targets(ds, capacity=1, std_range=(200, 210),
                                    widen_if_short=False)


class TestStats:
    def test_pixel_histogram_normalised(self):
        ds = dataset_with_stds([30, 40])
        density, edges = pixel_value_histogram(ds.images, bins=32)
        assert np.isclose(density.sum(), 1.0)
        assert len(edges) == 33
        assert edges[0] == 0.0 and edges[-1] == 255.0

    def test_weight_histogram_normalised(self):
        density, _ = weight_histogram(np.random.default_rng(0).standard_normal(1000))
        assert np.isclose(density.sum(), 1.0)

    def test_std_summary_keys(self):
        summary = dataset_std_summary(dataset_with_stds([30, 40, 50]))
        assert set(summary) == {"mean", "min", "max", "median"}
        assert summary["min"] <= summary["median"] <= summary["max"]
