"""Sanitization defenses: noise injection and weight clipping."""

import numpy as np
import pytest

from repro.defenses import clip_weights, inject_noise
from repro.errors import ConfigError
from repro.models import parameter_vector
from repro.models.mlp import MLP


class TestInjectNoise:
    def test_zero_fraction_is_noop(self):
        model = MLP([16, 8], rng=np.random.default_rng(0))
        before = parameter_vector(model).copy()
        inject_noise(model, 0.0)
        assert np.array_equal(parameter_vector(model), before)

    def test_noise_scale_proportional(self):
        model = MLP([64, 64], rng=np.random.default_rng(1))
        before = parameter_vector(model).copy()
        inject_noise(model, 0.1, seed=0)
        delta = parameter_vector(model) - before
        # Noise std should be ~10% of the weight std.
        assert 0.05 * before.std() < delta.std() < 0.2 * before.std()

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            model = MLP([16, 8], rng=np.random.default_rng(2))
            inject_noise(model, 0.2, seed=5)
            results.append(parameter_vector(model))
        assert np.array_equal(results[0], results[1])

    def test_negative_fraction_raises(self):
        with pytest.raises(ConfigError):
            inject_noise(MLP([4, 2]), -0.1)

    def test_names_subset(self):
        model = MLP([16, 16, 8], rng=np.random.default_rng(3))
        before_fc1 = model.fc1.weight.data.copy()
        before_fc0 = model.fc0.weight.data.copy()
        inject_noise(model, 0.2, names=["fc0.weight"], seed=0)
        assert np.array_equal(model.fc1.weight.data, before_fc1)
        assert not np.array_equal(model.fc0.weight.data, before_fc0)

    def test_degrades_embedded_payload(self):
        """Noise directly corrupts a planted image payload."""
        from repro.attacks import SecretPayload, decode_images
        from repro.metrics import batch_mape
        from repro.models import set_parameter_vector
        rng = np.random.default_rng(4)
        images = rng.integers(0, 256, size=(2, 8, 8, 1), dtype=np.uint8)
        images[:, 0, 0, 0], images[:, 0, 1, 0] = 0, 255
        payload = SecretPayload(images, np.zeros(2, dtype=np.int64))
        model = MLP([16, 16], rng=np.random.default_rng(5))
        vector = parameter_vector(model)
        vector[:payload.total_pixels] = payload.secret_vector() / 255.0
        set_parameter_vector(model, vector)
        clean_mape = batch_mape(images, decode_images(parameter_vector(model),
                                                      payload, "pos")).mean()
        inject_noise(model, 0.5, seed=0)
        noisy_mape = batch_mape(images, decode_images(parameter_vector(model),
                                                      payload, "pos")).mean()
        assert noisy_mape > clean_mape + 5.0


class TestClipWeights:
    def test_invalid_percentile(self):
        with pytest.raises(ConfigError):
            clip_weights(MLP([4, 2]), percentile=40.0)

    def test_clips_tails(self):
        model = MLP([64, 64], rng=np.random.default_rng(6))
        model.fc0.weight.data[0, 0] = 100.0  # plant an outlier
        clip_weights(model, percentile=99.0)
        limit = np.abs(model.fc0.weight.data).max()
        assert limit < 100.0

    def test_bulk_unchanged(self):
        model = MLP([64, 64], rng=np.random.default_rng(7))
        before = model.fc0.weight.data.copy()
        clip_weights(model, percentile=99.0)
        after = model.fc0.weight.data
        changed = (before != after).mean()
        assert changed < 0.03  # only ~1% clipped per tail definition

    def test_percentile_100_noop(self):
        model = MLP([16, 8], rng=np.random.default_rng(8))
        before = parameter_vector(model).copy()
        clip_weights(model, percentile=100.0)
        assert np.allclose(parameter_vector(model), before)
