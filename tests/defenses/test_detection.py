"""Defender audits: anomaly testing and correlation scanning."""

import numpy as np
import pytest

from repro.datasets import ImageDataset
from repro.defenses import (
    correlation_scan,
    detect_attack,
    weight_distribution_anomaly,
)
from repro.models import set_parameter_vector
from repro.models.mlp import MLP


def planted_model(dataset, seed=0, offset=0, negate=False):
    """MLP whose weight vector contains the dataset's pixels at ``offset``."""
    model = MLP([64, 64, 32], rng=np.random.default_rng(seed))
    from repro.models import parameter_vector
    vector = parameter_vector(model)
    pixels = dataset.images.reshape(-1).astype(float) / 255.0 - 0.5
    pixels = -pixels if negate else pixels
    end = min(offset + pixels.size, vector.size)
    vector[offset:end] = pixels[: end - offset]
    set_parameter_vector(model, vector)
    return model


def small_dataset(n=4, size=8, seed=0):
    rng = np.random.default_rng(seed)
    return ImageDataset(
        rng.integers(0, 256, size=(n, size, size, 1), dtype=np.uint8),
        np.arange(n) % 2,
    )


class TestCorrelationScan:
    def test_detects_planted_images(self):
        ds = small_dataset()
        model = planted_model(ds)
        max_abs, offsets = correlation_scan(model, ds)
        assert np.all(max_abs > 0.9)

    def test_detects_negated_plant(self):
        ds = small_dataset(seed=1)
        model = planted_model(ds, negate=True)
        max_abs, _ = correlation_scan(model, ds)
        assert np.all(max_abs > 0.9)

    def test_detects_offset_plant(self):
        ds = small_dataset(seed=2)
        model = planted_model(ds, offset=128)
        max_abs, offsets = correlation_scan(model, ds, stride_fraction=0.25)
        assert np.all(max_abs > 0.8)

    def test_benign_model_low_correlation(self):
        ds = small_dataset(seed=3)
        model = MLP([64, 64, 32], rng=np.random.default_rng(9))
        max_abs, _ = correlation_scan(model, ds)
        assert np.all(max_abs < 0.5)

    def test_tiny_model_returns_zeros(self):
        ds = small_dataset()
        model = MLP([4, 2], rng=np.random.default_rng(0))
        max_abs, offsets = correlation_scan(model, ds)
        assert np.all(max_abs == 0.0)


class TestAnomaly:
    def test_same_model_zero(self):
        model = MLP([32, 16], rng=np.random.default_rng(0))
        assert weight_distribution_anomaly(model, model) < 1e-9

    def test_two_benign_inits_similar(self):
        a = MLP([64, 64], rng=np.random.default_rng(1))
        b = MLP([64, 64], rng=np.random.default_rng(2))
        assert weight_distribution_anomaly(a, b) < 0.1

    def test_planted_model_anomalous(self):
        # Realistic payloads are far from the init distribution: build a
        # skewed (bimodal, bright-heavy) image set and fill most of the
        # weight vector with it -- like the attack's Fig. 2a reshaping.
        rng = np.random.default_rng(4)
        images = np.where(rng.random((90, 8, 8, 1)) < 0.7, 210, 35).astype(np.uint8)
        ds = ImageDataset(images, np.zeros(90, dtype=np.int64))
        reference = MLP([64, 64, 32], rng=np.random.default_rng(5))
        attacked = planted_model(ds, seed=5)
        assert weight_distribution_anomaly(attacked, reference) > 0.1


class TestDetectAttack:
    def test_flags_planted_model(self):
        ds = small_dataset(n=6, seed=6)
        model = planted_model(ds, seed=6)
        report = detect_attack(model, ds)
        assert report.flagged
        assert report.suspicious_images > 0
        assert "ATTACK SUSPECTED" in str(report)

    def test_clears_benign_model(self):
        ds = small_dataset(n=6, seed=7)
        model = MLP([64, 64, 32], rng=np.random.default_rng(8))
        report = detect_attack(model, ds)
        assert not report.flagged
        assert "clean" in str(report)

    def test_subsampling_cap(self):
        ds = small_dataset(n=6, seed=8)
        model = planted_model(ds, seed=9)
        report = detect_attack(model, ds, max_images=3)
        assert report.suspicious_images <= 3

    def test_reference_adds_ks(self):
        ds = small_dataset(n=4, seed=9)
        model = MLP([64, 64, 32], rng=np.random.default_rng(10))
        reference = MLP([64, 64, 32], rng=np.random.default_rng(11))
        report = detect_attack(model, ds, reference=reference)
        assert report.ks_statistic is not None

    def test_detects_real_trained_attack(self, trained_attack):
        """End-to-end: the audit catches the paper's actual attack."""
        result = trained_attack["result"]
        train = trained_attack["train"]
        report = detect_attack(result.model, train, max_images=48)
        assert report.flagged
        assert report.max_abs_correlation > 0.5
