"""Retraining-based payload removal."""

import numpy as np

from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.defenses import retrain_cleanse
from repro.pipeline.evaluation import evaluate_attack


class TestRetrainCleanse:
    def test_perturb_and_restore_removes_payload(self, trained_attack):
        """Noise-then-finetune corrupts the payload, keeps the model."""
        from repro.defenses import perturb_and_restore
        result = trained_attack["result"]
        train = trained_attack["train"]
        test = trained_attack["test"]
        state = result.model.state_dict()

        test_batch = images_to_batch(test.images)
        test_batch, _, _ = normalize_batch(test_batch, result.mean, result.std)
        before = evaluate_attack(result.model, test_batch, test.labels,
                                 groups=result.groups,
                                 mean=result.mean, std=result.std)

        train_batch = images_to_batch(train.images)
        train_batch, _, _ = normalize_batch(train_batch, result.mean, result.std)
        perturb_and_restore(result.model, train_batch, train.labels,
                            noise_fraction=0.6, epochs=3, lr=0.02)
        after = evaluate_attack(result.model, test_batch, test.labels,
                                groups=result.groups,
                                mean=result.mean, std=result.std)
        result.model.load_state_dict(state)

        # Reconstruction quality decays ...
        assert after.mean_mape > before.mean_mape
        # ... while the model remains usable.
        assert after.accuracy > 0.5

    def test_correlation_decays(self, trained_attack):
        from repro.attacks import LayerwiseCorrelationPenalty
        result = trained_attack["result"]
        train = trained_attack["train"]
        state = result.model.state_dict()
        penalty = LayerwiseCorrelationPenalty(result.groups)
        before = abs(penalty.correlations()[0])

        train_batch = images_to_batch(train.images)
        train_batch, _, _ = normalize_batch(train_batch, result.mean, result.std)
        retrain_cleanse(result.model, train_batch, train.labels,
                        epochs=6, lr=0.05, weight_decay=5e-3)
        after = abs(penalty.correlations()[0])
        result.model.load_state_dict(state)
        assert after < before
