"""Every example script must at least import cleanly (cheap CI guard).

The examples guard their work behind ``if __name__ == "__main__"``, so
importing them executes only definitions -- catching syntax errors,
broken imports and renamed APIs without paying for training runs.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert hasattr(module, "main"), f"{path.name} must define main()"


def test_expected_examples_exist():
    names = {p.stem for p in EXAMPLE_FILES}
    for expected in ("quickstart", "cifar_attack_comparison", "face_attack_flow",
                     "quantization_defense_study", "defense_audit", "sweep_study"):
        assert expected in names
