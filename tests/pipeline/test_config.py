"""Pipeline configuration validation."""

import pytest

from repro.errors import ConfigError
from repro.pipeline import AttackConfig, QuantizationConfig, TrainingConfig


class TestTrainingConfig:
    def test_defaults_valid(self):
        TrainingConfig().validate()

    def test_bad_epochs(self):
        with pytest.raises(ConfigError):
            TrainingConfig(epochs=0).validate()

    def test_bad_lr(self):
        with pytest.raises(ConfigError):
            TrainingConfig(lr=0.0).validate()

    def test_bad_batch_size(self):
        with pytest.raises(ConfigError):
            TrainingConfig(batch_size=0).validate()

    def test_frozen(self):
        with pytest.raises(Exception):
            TrainingConfig().epochs = 5


class TestAttackConfig:
    def test_defaults_valid(self):
        AttackConfig().validate()

    def test_paper_grouping_default(self):
        config = AttackConfig()
        assert config.layer_ranges == ((1, 12), (13, 16), (17, -1))
        assert config.rates[0] == 0.0 and config.rates[1] == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            AttackConfig(layer_ranges=((1, -1),), rates=(1.0, 2.0)).validate()

    def test_all_zero_rates(self):
        with pytest.raises(ConfigError):
            AttackConfig(layer_ranges=((1, -1),), rates=(0.0,)).validate()

    def test_negative_rate(self):
        with pytest.raises(ConfigError):
            AttackConfig(layer_ranges=((1, -1),), rates=(-1.0,)).validate()


class TestQuantizationConfig:
    def test_defaults_valid(self):
        QuantizationConfig().validate()

    def test_levels(self):
        assert QuantizationConfig(bits=4).levels == 16
        assert QuantizationConfig(bits=3).levels == 8

    def test_bad_bits(self):
        with pytest.raises(ConfigError):
            QuantizationConfig(bits=0).validate()
        with pytest.raises(ConfigError):
            QuantizationConfig(bits=20).validate()

    def test_bad_method(self):
        with pytest.raises(ConfigError):
            QuantizationConfig(method="magic").validate()

    def test_negative_finetune(self):
        with pytest.raises(ConfigError):
            QuantizationConfig(finetune_epochs=-1).validate()
