"""Trainer augmentation and its interaction with the attack."""

import numpy as np

from repro.models.mlp import MLP
from repro.models.simple_cnn import SimpleCNN
from repro.pipeline import Trainer, TrainingConfig

RNG = np.random.default_rng(83)


def image_problem(n=60, size=8, classes=2, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((classes, 3, size, size))
    labels = np.arange(n) % classes
    inputs = base[labels] + 0.3 * rng.standard_normal((n, 3, size, size))
    return inputs, labels


class TestAugmentation:
    def test_augmented_training_still_learns(self):
        inputs, labels = image_problem()
        model = SimpleCNN(in_channels=3, num_classes=2, image_size=8, width=4,
                          rng=np.random.default_rng(0))
        trainer = Trainer(model, inputs, labels,
                          TrainingConfig(epochs=6, batch_size=20, lr=0.05),
                          augment=True)
        history = trainer.train()
        assert history.task_loss[-1] < history.task_loss[0]

    def test_augment_changes_trajectory(self):
        inputs, labels = image_problem(seed=1)
        weights = []
        for augment in (False, True):
            model = SimpleCNN(in_channels=3, num_classes=2, image_size=8, width=4,
                              rng=np.random.default_rng(2))
            Trainer(model, inputs, labels,
                    TrainingConfig(epochs=2, batch_size=20, lr=0.05, seed=3),
                    augment=augment).train()
            weights.append(model.fc1.weight.data.copy())
        assert not np.allclose(weights[0], weights[1])

    def test_attack_survives_augmentation(self):
        """The penalty correlates weights with a fixed secret, so flips
        on the task inputs do not break the encoding."""
        from repro.attacks import CorrelationPenalty
        inputs, labels = image_problem(seed=4)
        model = MLP([3 * 8 * 8, 32, 2], rng=np.random.default_rng(5))
        secret = np.random.default_rng(6).random(3 * 8 * 8 * 32) * 255
        penalty = CorrelationPenalty([model.fc0.weight], secret, rate=30.0)
        Trainer(model, inputs, labels,
                TrainingConfig(epochs=10, batch_size=20, lr=0.05),
                penalty=penalty, augment=True).train()
        assert abs(penalty.correlation_value()) > 0.7
