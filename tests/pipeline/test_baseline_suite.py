"""run_baseline_suite: named arms, failure isolation, parallel parity."""

import pytest

from repro.pipeline import run_baseline_suite


def arm_ok():
    return {"accuracy": 0.8, "mape": 12.0}


def arm_better():
    return {"accuracy": 0.9, "mape": 8.0}


def arm_broken():
    raise RuntimeError("training diverged")


ARMS = {"benign": arm_ok, "ours": arm_better, "broken": arm_broken}


class TestBaselineSuite:
    def test_records_in_arm_order(self):
        suite = run_baseline_suite({"benign": arm_ok, "ours": arm_better})
        assert [r["arm"] for r in suite.records] == ["benign", "ours"]
        assert suite.best("accuracy")["arm"] == "ours"

    def test_failed_arm_recorded_not_fatal(self):
        suite = run_baseline_suite(ARMS)
        assert len(suite) == 3
        failed = suite.failures().records[0]
        assert failed["arm"] == "broken"
        assert "training diverged" in failed["error"]
        assert suite.best("accuracy")["arm"] == "ours"

    def test_parallel_matches_serial(self):
        serial = run_baseline_suite(ARMS, parallel=1)
        pooled = run_baseline_suite(ARMS, parallel=3)
        assert serial.records == pooled.records

    def test_empty_suite(self):
        assert len(run_baseline_suite({})) == 0
