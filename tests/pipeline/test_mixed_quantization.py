"""Mixed per-layer quantization (Algorithm 1 on encoding layers only)."""

import numpy as np
import pytest

from repro.models.mlp import MLP
from repro.pipeline import QuantizationConfig
from repro.pipeline.baselines import quantize_model_for_attack

RNG = np.random.default_rng(109)


def model():
    return MLP([32, 32, 32, 8], rng=np.random.default_rng(0))


def target_images(skewed=True):
    images = np.zeros((2, 4, 4, 1), dtype=np.uint8)
    if skewed:
        images[:, :1] = 255  # 25% bright / 75% black -- a skewed histogram
    else:
        images[:] = RNG.integers(0, 256, images.shape)
    return images


class TestMixedQuantization:
    def test_covers_every_encodable_layer(self):
        m = model()
        result = quantize_model_for_attack(
            m, QuantizationConfig(bits=4), target_images=target_images(),
            encoding_names=["fc1.weight"],
        )
        from repro.models import encodable_parameters
        assert set(result.assignments) == {n for n, _ in encodable_parameters(m)}

    def test_encoding_layer_gets_target_histogram(self):
        m = model()
        result = quantize_model_for_attack(
            m, QuantizationConfig(bits=3), target_images=target_images(),
            encoding_names=["fc1.weight"],
        )
        # The skewed 75/25 histogram forces a large bottom cluster in the
        # encoding layer's assignment.
        assignment = result.assignments["fc1.weight"].reshape(-1)
        occupancy = np.bincount(assignment, minlength=8) / assignment.size
        assert occupancy.max() > 0.5

    def test_non_encoding_layers_use_benign_clusters(self):
        m = model()
        result = quantize_model_for_attack(
            m, QuantizationConfig(bits=3), target_images=target_images(),
            encoding_names=["fc1.weight"],
        )
        # k-means on Gaussian weights spreads occupancy far more evenly.
        assignment = result.assignments["fc0.weight"].reshape(-1)
        occupancy = np.bincount(assignment, minlength=8) / assignment.size
        assert occupancy.max() < 0.5

    def test_without_encoding_names_falls_back_to_uniform_method(self):
        m = model()
        result = quantize_model_for_attack(
            m, QuantizationConfig(bits=4), target_images=target_images(),
            encoding_names=None,
        )
        from repro.models import encodable_parameters
        assert set(result.assignments) == {n for n, _ in encodable_parameters(m)}

    def test_non_target_methods_ignore_encoding_names(self):
        m = model()
        result = quantize_model_for_attack(
            m, QuantizationConfig(bits=4, method="weighted_entropy"),
            encoding_names=["fc1.weight"],
        )
        from repro.models import encodable_parameters
        assert set(result.assignments) == {n for n, _ in encodable_parameters(m)}

    def test_levels_respected_everywhere(self):
        m = model()
        result = quantize_model_for_attack(
            m, QuantizationConfig(bits=3), target_images=target_images(),
            encoding_names=["fc1.weight", "fc2.weight"],
        )
        for name in result.assignments:
            assert len(np.unique(result.dequantized(name))) <= 8
