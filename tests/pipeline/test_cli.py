"""CLI: argument parsing and a fast end-to-end smoke run."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_attack_defaults(self):
        args = build_parser().parse_args(["attack"])
        assert args.dataset == "cifar"
        assert args.bits == [4]
        assert args.method == "target_correlated"
        assert args.rate == 20.0

    def test_attack_overrides(self):
        args = build_parser().parse_args([
            "attack", "--dataset", "faces", "--bits", "3",
            "--method", "weighted_entropy", "--rate", "5", "--epochs", "2",
        ])
        assert args.dataset == "faces"
        assert args.bits == [3]
        assert args.method == "weighted_entropy"
        assert args.rate == 5.0
        assert args.epochs == 2

    def test_benign_subcommand(self):
        args = build_parser().parse_args(["benign", "--epochs", "3"])
        assert args.command == "benign"
        assert args.epochs == 3

    def test_audit_subcommand(self):
        args = build_parser().parse_args(["audit", "--rate", "10"])
        assert args.command == "audit"
        assert args.rate == 10.0

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_dataset_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--dataset", "imagenet"])

    def test_bad_method_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "--method", "magic"])


class TestEndToEnd:
    def test_benign_smoke(self, capsys):
        code = main(["benign", "--epochs", "1", "--batch-size", "64"])
        assert code == 0
        assert "benign accuracy" in capsys.readouterr().out

    def test_attack_smoke_with_json(self, tmp_path, capsys):
        out = tmp_path / "res.json"
        code = main(["attack", "--epochs", "2", "--batch-size", "64",
                     "--bits", "6", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "uncompressed" in captured
        assert "released" in captured
        assert out.exists()
        from repro.pipeline import load_result
        data = load_result(out)
        assert data["quantized"] is not None


class TestTelemetryCli:
    def test_global_flags_default(self):
        args = build_parser().parse_args(["info"])
        assert args.trace_out is None
        assert args.log_level == "warning"

    def test_global_flags_parse(self):
        args = build_parser().parse_args(
            ["--trace-out", "t.json", "--log-level", "debug", "benign"])
        assert args.trace_out == "t.json"
        assert args.log_level == "debug"

    def test_profile_defaults(self):
        args = build_parser().parse_args(["profile"])
        assert args.example == "quickstart"
        assert args.top == 12

    def test_profile_bad_example_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "mnist"])

    def test_info_smoke(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "numpy" in out and "metrics" in out

    def test_profile_smoke(self, capsys):
        code = main(["profile", "quickstart", "--steps", "1",
                     "--batch-size", "64", "--top", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "autograd ops" in out
        assert "Conv2dFn" in out
        assert "covers" in out

    def test_trace_out_writes_chrome_trace(self, tmp_path, capsys):
        import json
        trace = tmp_path / "trace.json"
        code = main(["--trace-out", str(trace), "profile", "quickstart",
                     "--steps", "1", "--batch-size", "64"])
        assert code == 0
        data = json.loads(trace.read_text())
        assert any(e["name"] == "trainer.epoch" for e in data["traceEvents"])

    def test_trace_out_unwritable_path_errors_cleanly(self, tmp_path, capsys):
        trace = tmp_path / "no-such-dir" / "trace.json"
        code = main(["--trace-out", str(trace), "info"])
        assert code == 1
        err = capsys.readouterr().err
        assert "could not write trace" in err
