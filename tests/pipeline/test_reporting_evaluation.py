"""Table rendering and AttackEvaluation summary arithmetic."""

import numpy as np
import pytest

from repro.pipeline import format_table
from repro.pipeline.evaluation import AttackEvaluation
from repro.pipeline.reporting import percent


def make_evaluation():
    return AttackEvaluation(
        accuracy=0.875,
        reconstructions=np.zeros((4, 2, 2, 1), dtype=np.uint8),
        originals=np.zeros((4, 2, 2, 1), dtype=np.uint8),
        mape_per_image=np.array([5.0, 15.0, 25.0, 35.0]),
        ssim_per_image=np.array([0.9, 0.6, 0.4, 0.1]),
        recognizable=np.array([True, True, False, True]),
    )


class TestAttackEvaluation:
    def test_counts(self):
        ev = make_evaluation()
        assert ev.encoded_images == 4
        assert ev.recognized_count == 3
        assert ev.recognized_percent == 75.0

    def test_means(self):
        ev = make_evaluation()
        assert np.isclose(ev.mean_mape, 20.0)
        assert np.isclose(ev.mean_ssim, 0.5)

    def test_thresholds(self):
        ev = make_evaluation()
        assert ev.mape_above(20.0) == 2
        assert ev.mape_below(20.0) == 2
        assert ev.ssim_above(0.5) == 2

    def test_empty_payload_nan_means(self):
        ev = AttackEvaluation(
            accuracy=1.0,
            reconstructions=np.zeros((0, 2, 2, 1), dtype=np.uint8),
            originals=np.zeros((0, 2, 2, 1), dtype=np.uint8),
            mape_per_image=np.zeros(0),
            ssim_per_image=np.zeros(0),
            recognizable=np.zeros(0, dtype=bool),
        )
        assert np.isnan(ev.mean_mape)
        assert ev.recognized_percent == 0.0


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all same width

    def test_title(self):
        table = format_table(["x"], [[1]], title="Table I")
        assert table.splitlines()[0] == "Table I"

    def test_float_formatting(self):
        table = format_table(["v"], [[3.14159]])
        assert "3.14" in table
        assert "3.14159" not in table

    def test_percent_helper(self):
        assert percent(0.8831) == "88.31%"
        assert percent(1.0) == "100.00%"

    def test_evaluation_requires_source(self):
        from repro.pipeline.evaluation import evaluate_attack
        from repro.models.mlp import MLP
        model = MLP([4, 2], rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            evaluate_attack(model, np.zeros((2, 1, 2, 2)), np.zeros(2, dtype=int))


class TestFormatTableRobustness:
    def test_empty_rows_render_header_only(self):
        table = format_table(["a", "b"], [])
        lines = table.splitlines()
        assert len(lines) == 2
        assert "a" in lines[0] and "b" in lines[0]

    def test_no_columns_at_all(self):
        assert format_table([], []) == "(empty table)"
        assert format_table([], [], title="t").splitlines()[0] == "t"

    def test_ragged_rows_do_not_raise(self):
        table = format_table(["a"], [["x", "extra"], ["y"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "extra" in lines[2]

    def test_format_records_union_of_keys(self):
        from repro.pipeline import format_records
        table = format_records([{"a": 1}, {"b": 2.5}])
        lines = table.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert len(lines) == 4

    def test_format_records_empty(self):
        from repro.pipeline import format_records
        assert format_records([]) == "(empty table)"

    def test_format_records_pinned_columns(self):
        from repro.pipeline import format_records
        table = format_records([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in table.splitlines()[0]
