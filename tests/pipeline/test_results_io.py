"""JSON serialization of experiment results."""

import numpy as np

from repro.pipeline import evaluation_to_dict, load_result, save_result
from repro.pipeline.evaluation import AttackEvaluation


def make_evaluation():
    return AttackEvaluation(
        accuracy=0.9,
        reconstructions=np.zeros((2, 4, 4, 1), dtype=np.uint8),
        originals=np.zeros((2, 4, 4, 1), dtype=np.uint8),
        mape_per_image=np.array([10.0, 30.0]),
        ssim_per_image=np.array([0.8, 0.3]),
        recognizable=np.array([True, False]),
    )


class TestEvaluationToDict:
    def test_fields(self):
        data = evaluation_to_dict(make_evaluation())
        assert data["accuracy"] == 0.9
        assert data["encoded_images"] == 2
        assert data["mean_mape"] == 20.0
        assert data["recognized_count"] == 1
        assert data["recognizable"] == [True, False]

    def test_json_serializable(self):
        import json
        json.dumps(evaluation_to_dict(make_evaluation()))


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        data = evaluation_to_dict(make_evaluation())
        path = tmp_path / "result.json"
        save_result(data, path)
        assert load_result(path) == data

    def test_attack_result_roundtrip(self, trained_attack, tmp_path):
        from repro.pipeline import attack_result_to_dict
        data = attack_result_to_dict(trained_attack["result"])
        path = tmp_path / "attack.json"
        save_result(data, path)
        loaded = load_result(path)
        assert loaded["encoded_images"] == trained_attack["result"].encoded_images
        assert loaded["quantized"] is None
        assert len(loaded["history"]["task_loss"]) == 10
