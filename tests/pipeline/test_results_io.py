"""JSON serialization of experiment results."""

import numpy as np

from repro.pipeline import evaluation_to_dict, load_result, save_result
from repro.pipeline.evaluation import AttackEvaluation


def make_evaluation():
    return AttackEvaluation(
        accuracy=0.9,
        reconstructions=np.zeros((2, 4, 4, 1), dtype=np.uint8),
        originals=np.zeros((2, 4, 4, 1), dtype=np.uint8),
        mape_per_image=np.array([10.0, 30.0]),
        ssim_per_image=np.array([0.8, 0.3]),
        recognizable=np.array([True, False]),
    )


class TestEvaluationToDict:
    def test_fields(self):
        data = evaluation_to_dict(make_evaluation())
        assert data["accuracy"] == 0.9
        assert data["encoded_images"] == 2
        assert data["mean_mape"] == 20.0
        assert data["recognized_count"] == 1
        assert data["recognizable"] == [True, False]

    def test_json_serializable(self):
        import json
        json.dumps(evaluation_to_dict(make_evaluation()))


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        data = evaluation_to_dict(make_evaluation())
        path = tmp_path / "result.json"
        save_result(data, path)
        assert load_result(path) == data

    def test_attack_result_roundtrip(self, trained_attack, tmp_path):
        from repro.pipeline import attack_result_to_dict
        data = attack_result_to_dict(trained_attack["result"])
        path = tmp_path / "attack.json"
        save_result(data, path)
        loaded = load_result(path)
        assert loaded["encoded_images"] == trained_attack["result"].encoded_images
        assert loaded["quantized"] is None
        assert len(loaded["history"]["task_loss"]) == 10


class TestRunManifest:
    def make_manifest(self):
        from repro.pipeline.config import TrainingConfig
        from repro.telemetry import RunManifest
        return RunManifest.create(
            seed=7, config=TrainingConfig(epochs=2),
            telemetry={"trainer.images": 192.0}, dataset="cifar",
        )

    def test_manifest_path_sidecar(self):
        from repro.pipeline import manifest_path
        assert manifest_path("runs/res.json") == "runs/res.manifest.json"

    def test_manifest_roundtrip(self, tmp_path):
        from repro.pipeline import load_manifest, save_manifest
        manifest = self.make_manifest()
        result_path = tmp_path / "res.json"
        save_manifest(manifest, result_path)
        loaded = load_manifest(result_path)
        assert loaded == manifest
        assert loaded.telemetry["trainer.images"] == 192.0
        assert loaded.extra["dataset"] == "cifar"
        # manifests record graph-compiler activity and capability flags
        graph_extra = loaded.extra["graph"]
        assert set(graph_extra) == {"compile_default", "stats", "capabilities"}
        assert set(graph_extra["capabilities"]) == {
            "graph_compiler", "fusion", "tiling"}
        assert "graph.captures" in graph_extra["stats"]

    def test_save_result_writes_sidecar(self, tmp_path):
        from repro.pipeline import load_manifest, load_result, manifest_path
        import os
        manifest = self.make_manifest()
        path = tmp_path / "res.json"
        save_result({"accuracy": 0.9}, path, manifest=manifest)
        assert load_result(path) == {"accuracy": 0.9}
        assert os.path.exists(manifest_path(path))
        assert load_manifest(path).run_id == manifest.run_id

    def test_save_result_without_manifest_writes_no_sidecar(self, tmp_path):
        import os
        from repro.pipeline import manifest_path
        path = tmp_path / "res.json"
        save_result({"a": 1}, path)
        assert not os.path.exists(manifest_path(path))
