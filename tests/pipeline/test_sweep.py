"""Parameter sweep runner."""

import pytest

from repro.errors import ConfigError
from repro.pipeline.sweep import Sweep, SweepResult, expand_grid


class TestExpandGrid:
    def test_cartesian_product(self):
        points = list(expand_grid({"a": [1, 2], "b": ["x", "y"]}))
        assert len(points) == 4
        assert {"a": 1, "b": "y"} in points

    def test_empty_grid(self):
        assert list(expand_grid({})) == [{}]

    def test_single_axis(self):
        points = list(expand_grid({"bits": [8, 4, 2]}))
        assert [p["bits"] for p in points] == [8, 4, 2]


class TestSweep:
    def test_runs_every_point(self):
        calls = []

        def experiment(a, b):
            calls.append((a, b))
            return {"sum": a + b}

        sweep = Sweep({"a": [1, 2], "b": [10, 20]}, experiment)
        assert len(sweep) == 4
        result = sweep.run()
        assert len(result) == 4
        assert len(calls) == 4
        assert {"a": 2, "b": 20, "sum": 22} in result.records

    def test_progress_callback(self):
        seen = []
        Sweep({"x": [1, 2]}, lambda x: {"y": x}).run(progress=seen.append)
        assert seen == [{"x": 1}, {"x": 2}]

    def test_non_callable_raises(self):
        with pytest.raises(ConfigError):
            Sweep({"a": [1]}, experiment="not callable")


class TestSweepResult:
    def make(self):
        return SweepResult(records=[
            {"bits": 8, "acc": 0.9},
            {"bits": 4, "acc": 0.8},
            {"bits": 2, "acc": 0.3},
        ])

    def test_filter(self):
        assert len(self.make().filter(bits=4)) == 1

    def test_best_maximize(self):
        assert self.make().best("acc")["bits"] == 8

    def test_best_minimize(self):
        assert self.make().best("acc", maximize=False)["bits"] == 2

    def test_best_missing_metric_raises(self):
        with pytest.raises(ConfigError):
            self.make().best("mape")

    def test_columns_union(self):
        result = SweepResult(records=[{"a": 1}, {"b": 2}])
        assert result.columns() == ["a", "b"]

    def test_to_table(self):
        table = self.make().to_table(title="sweep")
        assert "bits" in table and "acc" in table
        assert table.splitlines()[0] == "sweep"

    def test_to_csv(self, tmp_path):
        path = tmp_path / "sweep.csv"
        self.make().to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "bits,acc"
        assert len(lines) == 4


class TestSweepResultWithFailures:
    """Failure records (missing/None/NaN metrics) must not break queries."""

    def make(self):
        return SweepResult(records=[
            {"bits": 8, "acc": 0.9},
            {"bits": 4, "error": "RuntimeError('diverged')",
             "error_kind": "exception"},
            {"bits": 2, "acc": None},
            {"bits": 1, "acc": float("nan")},
        ])

    def test_best_skips_missing_and_unorderable(self):
        assert self.make().best("acc")["bits"] == 8

    def test_best_minimize_skips_failures(self):
        result = SweepResult(records=[
            {"bits": 8, "acc": 0.9},
            {"bits": 4, "error": "boom"},
            {"bits": 2, "acc": 0.3},
        ])
        assert result.best("acc", maximize=False)["bits"] == 2

    def test_best_all_failed_raises(self):
        result = SweepResult(records=[{"bits": 4, "error": "boom"}])
        with pytest.raises(ConfigError):
            result.best("acc")

    def test_filter_ignores_missing_keys(self):
        assert len(self.make().filter(acc=0.9)) == 1
        assert len(self.make().filter(missing_key=1)) == 0

    def test_filter_selects_failures_by_params(self):
        assert self.make().filter(bits=4).records[0]["error_kind"] == "exception"

    def test_failures_and_ok_split(self):
        result = self.make()
        assert len(result.failures()) == 1
        assert len(result.ok()) == 3
        assert len(result.failures()) + len(result.ok()) == len(result)

    def test_to_csv_pads_missing_columns(self, tmp_path):
        path = tmp_path / "ragged.csv"
        self.make().to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 5

    def test_to_table_renders(self):
        assert "error" in self.make().to_table()


class TestSweepTelemetry:
    def test_records_unchanged_by_default(self):
        result = Sweep({"x": [1]}, lambda x: {"y": x}).run()
        assert result.records == [{"x": 1, "y": 1}]

    def test_telemetry_adds_duration_and_snapshot(self):
        from repro.telemetry import default_registry
        default_registry().counter("sweep.test.counter").inc(3)
        result = Sweep({"x": [1, 2]}, lambda x: {"y": x}, telemetry=True).run()
        for record in result.records:
            assert record["duration_s"] >= 0.0
            assert record["tm.sweep.test.counter"] >= 3.0

    def test_points_emit_spans(self):
        from repro.telemetry import recording
        with recording() as recorder:
            Sweep({"x": [1, 2, 3]}, lambda x: {"y": x}).run()
        assert len(recorder.by_name("sweep.point")) == 3
