"""Trainer: loss decreases, penalty hooks fire, history recorded."""

import numpy as np

from repro.autograd.tensor import Tensor
from repro.models.mlp import MLP
from repro.pipeline import Trainer, TrainingConfig


def toy_problem(n=90, features=6, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((classes, features)) * 3
    labels = np.arange(n) % classes
    inputs = centers[labels] + rng.standard_normal((n, features)) * 0.3
    return inputs, labels


class TestTrainer:
    def test_loss_decreases(self):
        inputs, labels = toy_problem()
        model = MLP([6, 16, 3], rng=np.random.default_rng(0))
        trainer = Trainer(model, inputs, labels, TrainingConfig(epochs=10, lr=0.1))
        history = trainer.train()
        assert history.task_loss[-1] < history.task_loss[0]
        assert history.epochs == 10

    def test_model_in_eval_mode_after_training(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        Trainer(model, inputs, labels, TrainingConfig(epochs=1)).train()
        assert not model.training

    def test_penalty_included_in_history(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        calls = []

        def penalty():
            calls.append(1)
            return Tensor(0.25)

        trainer = Trainer(model, inputs, labels,
                          TrainingConfig(epochs=2, batch_size=30), penalty=penalty)
        history = trainer.train()
        assert len(calls) == 2 * 3  # epochs * batches
        assert np.allclose(history.penalty, 0.25)

    def test_penalty_affects_updates(self):
        inputs, labels = toy_problem()
        from repro.attacks import CorrelationPenalty
        model_a = MLP([6, 8, 3], rng=np.random.default_rng(1))
        model_b = MLP([6, 8, 3], rng=np.random.default_rng(1))
        secret = np.random.default_rng(2).random(48)
        penalty = CorrelationPenalty([model_b.fc0.weight], secret, rate=50.0)
        Trainer(model_a, inputs, labels, TrainingConfig(epochs=3, seed=4)).train()
        Trainer(model_b, inputs, labels, TrainingConfig(epochs=3, seed=4),
                penalty=penalty).train()
        assert not np.allclose(model_a.fc0.weight.data, model_b.fc0.weight.data)

    def test_progress_callback(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        seen = []
        Trainer(model, inputs, labels, TrainingConfig(epochs=3)).train(
            progress=lambda e, l: seen.append(e))
        assert seen == [0, 1, 2]

    def test_explicit_epoch_override(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        history = Trainer(model, inputs, labels, TrainingConfig(epochs=10)).train(epochs=2)
        assert history.epochs == 2

    def test_deterministic_given_seed(self):
        inputs, labels = toy_problem()
        results = []
        for _ in range(2):
            model = MLP([6, 8, 3], rng=np.random.default_rng(5))
            Trainer(model, inputs, labels, TrainingConfig(epochs=3, seed=9)).train()
            results.append(model.fc0.weight.data.copy())
        assert np.allclose(results[0], results[1])
