"""CLI sweep subcommand and the global --workers flag."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep"])
        assert args.command == "sweep"
        assert args.bits == [4, 3, 2]
        assert args.rates == [20.0]
        assert args.csv is None
        assert args.point_timeout is None

    def test_sweep_overrides(self):
        args = build_parser().parse_args([
            "sweep", "--bits", "4", "3", "--rates", "5", "20",
            "--dataset", "digits", "--point-timeout", "30",
        ])
        assert args.bits == [4, 3]
        assert args.rates == [5.0, 20.0]
        assert args.point_timeout == 30.0

    def test_workers_is_global(self):
        args = build_parser().parse_args(["--workers", "4", "sweep"])
        assert args.workers == 4
        args = build_parser().parse_args(["--workers", "2", "attack"])
        assert args.workers == 2

    def test_workers_default_serial(self):
        assert build_parser().parse_args(["sweep"]).workers is None

    def test_attack_multiple_bits(self):
        args = build_parser().parse_args(["attack", "--bits", "4", "3", "2"])
        assert args.bits == [4, 3, 2]


@pytest.mark.slow
class TestEndToEnd:
    def test_sweep_smoke_parallel(self, tmp_path, capsys):
        csv = tmp_path / "sweep.csv"
        code = main(["--workers", "2", "sweep", "--bits", "4", "3",
                     "--rates", "20", "--epochs", "1", "--batch-size", "64",
                     "--csv", str(csv)])
        out = capsys.readouterr().out
        assert code == 0
        assert "2-point sweep" in out
        assert "best SSIM" in out
        assert csv.exists()
        lines = csv.read_text().strip().splitlines()
        assert len(lines) == 3  # header + one record per point

    def test_attack_multi_bits_smoke(self, capsys):
        code = main(["--workers", "2", "attack", "--bits", "4", "3",
                     "--epochs", "1", "--batch-size", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "attack arms" in out
        assert "4-bit" in out and "3-bit" in out
