"""The end-to-end attack flow (uses the session-scoped trained attack)."""

import numpy as np
import pytest

from repro.pipeline import AttackConfig, QuantizationConfig, TrainingConfig


class TestUncompressedFlow:
    def test_result_structure(self, trained_attack):
        result = trained_attack["result"]
        assert result.quantized is None
        assert result.quantization is None
        assert result.encoded_images > 0
        assert result.history.epochs == 10

    def test_zero_rate_groups_hold_no_payload(self, trained_attack):
        groups = trained_attack["result"].groups
        assert groups[0].rate == 0.0
        assert groups[0].payload is None
        assert groups[1].payload is not None

    def test_selection_respects_std_window(self, trained_attack):
        result = trained_attack["result"]
        train = trained_attack["train"]
        stds = train.per_image_std()[result.selection.target_indices]
        low, high = result.selection.std_range
        assert np.all((stds > low) & (stds < high))

    def test_attack_achieves_high_correlation(self, trained_attack):
        from repro.attacks import LayerwiseCorrelationPenalty
        penalty = LayerwiseCorrelationPenalty(trained_attack["result"].groups)
        assert abs(penalty.correlations()[0]) > 0.8

    def test_model_accuracy_reasonable(self, trained_attack):
        # Evasiveness: the attacked model must still classify well.
        assert trained_attack["result"].uncompressed.accuracy > 0.6

    def test_encoding_quality(self, trained_attack):
        evaluation = trained_attack["result"].uncompressed
        assert evaluation.mean_mape < 35.0
        assert evaluation.recognized_count > evaluation.encoded_images * 0.4

    def test_reconstruction_shapes(self, trained_attack):
        evaluation = trained_attack["result"].uncompressed
        assert evaluation.reconstructions.shape == evaluation.originals.shape
        assert evaluation.reconstructions.dtype == np.uint8

    def test_payload_matches_groups(self, trained_attack):
        result = trained_attack["result"]
        total_in_groups = sum(
            len(g.payload) for g in result.groups if g.payload is not None
        )
        assert total_in_groups == len(result.payload)


class TestQuantizedFlow:
    @pytest.fixture(scope="class")
    def quantized_run(self, trained_attack):
        """Quantize a copy of the trained attack model at 4 bits."""
        from repro.pipeline.baselines import quantize_and_finetune
        from repro.pipeline.evaluation import evaluate_attack
        from repro.datasets.transforms import images_to_batch, normalize_batch

        result = trained_attack["result"]
        train, test = trained_attack["train"], trained_attack["test"]
        state = result.model.state_dict()
        quant = quantize_and_finetune(
            result.model,
            QuantizationConfig(bits=4, method="target_correlated", finetune_epochs=1),
            train, TrainingConfig(epochs=1, batch_size=32),
            result.mean, result.std, target_images=result.payload.images,
        )
        test_batch = images_to_batch(test.images)
        test_batch, _, _ = normalize_batch(test_batch, result.mean, result.std)
        evaluation = evaluate_attack(
            result.model, test_batch, test.labels, groups=result.groups,
            mean=result.mean, std=result.std,
        )
        yield {"quant": quant, "evaluation": evaluation}
        result.model.load_state_dict(state)  # restore for other tests

    def test_weights_quantized_to_levels(self, trained_attack, quantized_run):
        result = trained_attack["result"]
        from repro.models import encodable_parameters
        for name, param in encodable_parameters(result.model):
            if name in quantized_run["quant"].assignments:
                assert len(np.unique(param.data)) <= 16

    def test_accuracy_survives(self, quantized_run, trained_attack):
        before = trained_attack["result"].uncompressed.accuracy
        after = quantized_run["evaluation"].accuracy
        assert after > before - 0.15

    def test_encoding_survives(self, quantized_run, trained_attack):
        before = trained_attack["result"].uncompressed
        after = quantized_run["evaluation"]
        assert after.mean_mape < before.mean_mape + 10.0
        assert after.recognized_count >= before.recognized_count * 0.5


class TestFlowValidation:
    def test_capacity_error_when_model_too_small(self, cifar_splits):
        from repro.errors import CapacityError
        from repro.models.mlp import MLP
        from repro.pipeline import run_quantized_correlation_attack
        train, test = cifar_splits
        # 16x16x3 = 768 px/image; this tiny MLP holds < 768 weights, so
        # the capacity check must fail before training starts.
        with pytest.raises(CapacityError):
            run_quantized_correlation_attack(
                train, test, lambda: MLP([100, 2, 6], rng=np.random.default_rng(0)),
                TrainingConfig(epochs=1),
                AttackConfig(layer_ranges=((1, -1),), rates=(5.0,)),
                quantization=None,
            )

    def test_progress_stages_reported(self, cifar_splits):
        from repro.models import resnet8_tiny
        from repro.pipeline import run_quantized_correlation_attack
        train, test = cifar_splits
        stages = []
        run_quantized_correlation_attack(
            train, test,
            lambda: resnet8_tiny(num_classes=6, width=8, rng=np.random.default_rng(0)),
            TrainingConfig(epochs=1, batch_size=64),
            AttackConfig(layer_ranges=((1, 3), (4, -1)), rates=(0.0, 5.0), std_window=8.0),
            QuantizationConfig(bits=6, finetune_epochs=0),
            progress=stages.append,
        )
        assert stages == [
            "pre-processing", "training", "evaluating uncompressed",
            "quantizing", "evaluating quantized",
        ]
