"""Benign training, the original uniform attack, quantizer factory."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.pipeline import (
    QuantizationConfig,
    TrainingConfig,
    make_quantizer,
    original_correlation_attack,
    train_benign,
)
from repro.quantization import (
    KMeansQuantizer,
    TargetCorrelatedQuantizer,
    UniformQuantizer,
    WeightedEntropyQuantizer,
)
from tests.conftest import tiny_model_builder


class TestMakeQuantizer:
    def test_builds_each_method(self):
        images = np.zeros((1, 4, 4, 1), dtype=np.uint8)
        cases = {
            "uniform": UniformQuantizer,
            "kmeans": KMeansQuantizer,
            "weighted_entropy": WeightedEntropyQuantizer,
            "target_correlated": TargetCorrelatedQuantizer,
        }
        for method, cls in cases.items():
            quantizer = make_quantizer(
                QuantizationConfig(bits=4, method=method), target_images=images
            )
            assert isinstance(quantizer, cls)
            assert quantizer.levels == 16

    def test_target_correlated_requires_images(self):
        with pytest.raises(ConfigError):
            make_quantizer(QuantizationConfig(method="target_correlated"))


class TestTrainBenign:
    def test_learns(self, cifar_splits):
        train, test = cifar_splits
        result = train_benign(train, test, tiny_model_builder(),
                              TrainingConfig(epochs=8, lr=0.08, batch_size=32))
        assert result.accuracy > 0.55
        assert result.history.task_loss[-1] < result.history.task_loss[0]

    def test_returns_normalization(self, cifar_splits):
        train, test = cifar_splits
        result = train_benign(train, test, tiny_model_builder(),
                              TrainingConfig(epochs=1))
        assert result.mean.shape == (3,)
        assert result.std.shape == (3,)


class TestOriginalAttack:
    @pytest.fixture(scope="class")
    def attack(self, cifar_splits):
        train, test = cifar_splits
        return original_correlation_attack(
            train, test, tiny_model_builder(),
            TrainingConfig(epochs=8, lr=0.08, batch_size=32), rate=20.0,
        )

    def test_payload_fills_capacity(self, attack, cifar_splits):
        train, _ = cifar_splits
        from repro.models import encodable_parameters
        total = sum(p.size for _, p in encodable_parameters(attack.model))
        expected = min(total // train.pixels_per_image, len(train))
        assert len(attack.payload) == expected

    def test_correlation_established(self, attack):
        assert abs(attack.penalty.correlation_value()) > 0.6

    def test_evaluation_populated(self, attack):
        evaluation = attack.evaluation
        assert evaluation.encoded_images == len(attack.payload)
        assert 0.0 <= evaluation.accuracy <= 1.0
        assert evaluation.mape_per_image.shape == (evaluation.encoded_images,)

    def test_weight_vector_length(self, attack):
        from repro.models import encodable_parameters
        total = sum(p.size for _, p in encodable_parameters(attack.model))
        assert attack.weight_vector().size == total

    def test_explicit_image_count(self, cifar_splits):
        train, test = cifar_splits
        result = original_correlation_attack(
            train, test, tiny_model_builder(),
            TrainingConfig(epochs=1, batch_size=64), rate=5.0, num_images=3,
        )
        assert len(result.payload) == 3
