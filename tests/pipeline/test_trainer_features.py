"""Trainer extensions: validation, schedules, clipping, divergence guard."""

import numpy as np
import pytest

from repro.errors import ConfigError, GradientError
from repro.models.mlp import MLP
from repro.pipeline import Trainer, TrainingConfig


def toy_problem(n=90, features=6, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((classes, features)) * 3
    labels = np.arange(n) % classes
    inputs = centers[labels] + rng.standard_normal((n, features)) * 0.3
    return inputs, labels


class TestValidation:
    def test_val_accuracy_tracked(self):
        inputs, labels = toy_problem()
        model = MLP([6, 16, 3], rng=np.random.default_rng(0))
        trainer = Trainer(model, inputs, labels,
                          TrainingConfig(epochs=5, lr=0.1),
                          validation=(inputs, labels))
        history = trainer.train()
        assert len(history.val_accuracy) == 5
        assert history.best_val_accuracy >= history.val_accuracy[0]

    def test_best_val_nan_without_validation(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        history = Trainer(model, inputs, labels,
                          TrainingConfig(epochs=1)).train()
        assert np.isnan(history.best_val_accuracy)

    def test_model_back_in_train_mode_between_epochs(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        trainer = Trainer(model, inputs, labels, TrainingConfig(epochs=2),
                          validation=(inputs, labels))
        trainer.train_epoch()
        assert model.training  # validation must not leave eval mode on


class TestSchedules:
    def test_cosine_reduces_lr(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        trainer = Trainer(model, inputs, labels,
                          TrainingConfig(epochs=5, lr=0.1), schedule="cosine")
        trainer.train()
        assert trainer.optimizer.lr < 0.1

    def test_step_schedule(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        trainer = Trainer(model, inputs, labels,
                          TrainingConfig(epochs=6, lr=0.1), schedule="step")
        trainer.train()
        assert trainer.optimizer.lr < 0.1

    def test_unknown_schedule_raises(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        with pytest.raises(ConfigError):
            Trainer(model, inputs, labels, TrainingConfig(epochs=1),
                    schedule="linear")


class TestGradClip:
    def test_clipping_caps_global_norm(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        trainer = Trainer(model, inputs, labels,
                          TrainingConfig(epochs=1, lr=0.1), grad_clip=0.01)
        # Run one manual batch and inspect gradients post-clip.
        from repro.autograd.tensor import Tensor
        batch_inputs, batch_labels = next(iter(trainer.loader))
        loss = trainer.loss_fn(model(Tensor(batch_inputs)), batch_labels)
        model.zero_grad()
        loss.backward()
        trainer._clip_gradients()
        total = sum(float((p.grad ** 2).sum())
                    for p in model.parameters() if p.grad is not None)
        assert total ** 0.5 <= 0.01 + 1e-9

    def test_training_with_clipping_still_learns(self):
        inputs, labels = toy_problem()
        model = MLP([6, 16, 3], rng=np.random.default_rng(1))
        history = Trainer(model, inputs, labels,
                          TrainingConfig(epochs=10, lr=0.1),
                          grad_clip=1.0).train()
        assert history.task_loss[-1] < history.task_loss[0]


class TestDivergenceGuard:
    def test_nan_loss_raises(self):
        inputs, labels = toy_problem()
        model = MLP([6, 8, 3], rng=np.random.default_rng(0))
        # Poison the weights so the forward pass produces NaN.
        model.fc0.weight.data[:] = np.nan
        trainer = Trainer(model, inputs, labels, TrainingConfig(epochs=1))
        with pytest.raises(GradientError):
            trainer.train_epoch()
