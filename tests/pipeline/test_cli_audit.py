"""CLI audit subcommand end-to-end (trains two small models)."""

import numpy as np
import pytest

from repro.cli import main


class TestCliAudit:
    def test_audit_flags_attack(self, capsys):
        # Short training still establishes enough correlation to flag.
        code = main(["audit", "--epochs", "4", "--batch-size", "64",
                     "--rate", "30"])
        out = capsys.readouterr().out
        assert "DetectionReport" in out
        assert code == 0  # flagged => exit 0 per the CLI contract
        assert "ATTACK SUSPECTED" in out

    def test_attack_on_digits_dataset(self, capsys, tmp_path):
        out_path = tmp_path / "digits.json"
        code = main(["attack", "--dataset", "digits", "--epochs", "2",
                     "--batch-size", "64", "--bits", "6",
                     "--out", str(out_path)])
        assert code == 0
        assert out_path.exists()
        from repro.pipeline import load_result
        data = load_result(out_path)
        assert data["encoded_images"] >= 1
