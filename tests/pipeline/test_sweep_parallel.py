"""Parallel sweep execution: determinism and failure-record semantics.

The determinism regression tests pin the tentpole guarantee: the same
grid run with ``parallel=1`` and ``parallel=4`` yields identical record
lists, including derived per-point seeds and failure entries.
"""

import numpy as np
import pytest

from repro.pipeline.sweep import ERROR_KEY, Sweep, SweepResult


# Module-level experiments: picklable under any start method.

def deterministic_experiment(a, b):
    return {"sum": a + b, "product": a * b}


def seeded_experiment(scale, rng):
    # The draw depends only on the point's derived seed, not on which
    # process (or how many siblings) ran it.
    return {"draw": float(rng.random()) * scale}


def flaky_experiment(x):
    if x % 3 == 0:
        raise RuntimeError(f"diverged at {x}")
    return {"y": x * 10}


GRID = {"a": [1, 2, 3, 4], "b": [10, 20, 30, 40]}  # 16 points


class TestDeterminism:
    def test_parallel_matches_serial(self):
        sweep = Sweep(GRID, deterministic_experiment)
        serial = sweep.run(parallel=1)
        pooled = sweep.run(parallel=4)
        assert serial.records == pooled.records
        assert len(serial) == 16

    def test_parallel_matches_legacy_inline(self):
        sweep = Sweep(GRID, deterministic_experiment)
        assert sweep.run().records == sweep.run(parallel=4).records

    def test_seeded_records_identical(self):
        sweep = Sweep({"scale": [1.0, 2.0, 3.0]}, seeded_experiment)
        serial = sweep.run(parallel=1, seed=99)
        pooled = sweep.run(parallel=4, seed=99)
        assert serial.records == pooled.records
        # and the seed actually matters
        assert sweep.run(parallel=1, seed=100).records != serial.records

    def test_seeds_differ_across_points(self):
        sweep = Sweep({"scale": [1.0, 1.0, 1.0]}, seeded_experiment)
        draws = [r["draw"] for r in sweep.run(parallel=1, seed=5).records]
        assert len(set(draws)) == 3

    def test_failure_records_identical(self):
        sweep = Sweep({"x": [0, 1, 2, 3, 4, 5]}, flaky_experiment)
        serial = sweep.run(parallel=1)
        pooled = sweep.run(parallel=3)
        assert serial.records == pooled.records
        assert len(serial.failures()) == 2
        assert len(serial.ok()) == 4

    def test_progress_called_in_grid_order(self):
        seen = []
        Sweep({"x": [1, 2, 3]}, lambda x: {"y": x}).run(
            progress=seen.append, parallel=1)
        assert seen == [{"x": 1}, {"x": 2}, {"x": 3}]


class TestFailureRecords:
    def test_failed_point_keeps_params(self):
        result = Sweep({"x": [3]}, flaky_experiment).run(parallel=1)
        record = result.records[0]
        assert record["x"] == 3
        assert "diverged at 3" in record[ERROR_KEY]
        assert record["error_kind"] == "exception"

    def test_legacy_inline_path_still_raises(self):
        with pytest.raises(RuntimeError):
            Sweep({"x": [3]}, flaky_experiment).run()

    def test_best_skips_failures(self):
        result = Sweep({"x": [0, 1, 2]}, flaky_experiment).run(parallel=2)
        assert result.best("y")["x"] == 2

    def test_csv_export_with_failures(self, tmp_path):
        result = Sweep({"x": [0, 1]}, flaky_experiment).run(parallel=1)
        path = tmp_path / "records.csv"
        result.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 records, ragged keys padded

    def test_table_render_with_failures(self):
        result = Sweep({"x": [0, 1]}, flaky_experiment).run(parallel=1)
        table = result.to_table(title="flaky")
        assert "error" in table


class TestPooledTelemetry:
    def test_pooled_telemetry_attaches_per_point_duration(self):
        sweep = Sweep({"x": [1, 2]}, lambda x: {"y": x}, telemetry=True)
        result = sweep.run(parallel=1)
        for record in result.records:
            assert record["duration_s"] >= 0.0
