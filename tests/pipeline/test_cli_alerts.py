"""CLI observability commands: ``repro alerts``, ``repro info``, ``--serve-metrics``."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.monitor.core import PROBE_EVENT
from repro.telemetry.export import active_exporter, reset_health, stop_exporter
from repro.telemetry.metrics import default_registry


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    stop_exporter()
    reset_health()
    default_registry().clear()


def _write_timeseries(path, corr_values):
    with open(path, "w", encoding="utf-8") as handle:
        for epoch, corr in enumerate(corr_values):
            handle.write(json.dumps({
                "event": PROBE_EVENT, "probe": "correlation",
                "scope": "epoch", "epoch": epoch,
                "corr_abs_mean": corr,
            }) + "\n")


class TestParser:
    def test_alerts_defaults(self):
        args = build_parser().parse_args(["alerts", "run.jsonl"])
        assert args.command == "alerts"
        assert args.timeseries == "run.jsonl"
        assert args.corr_above == 0.25
        assert args.psnr_window == 3

    def test_alerts_overrides(self):
        args = build_parser().parse_args(
            ["alerts", "ts.jsonl", "--corr-above", "0.5", "--psnr-window", "5"])
        assert args.corr_above == 0.5
        assert args.psnr_window == 5

    def test_serve_metrics_global_flag(self):
        args = build_parser().parse_args(["--serve-metrics", "9109", "info"])
        assert args.serve_metrics == 9109
        assert build_parser().parse_args(["info"]).serve_metrics is None

    def test_monitor_alerts_flag(self):
        args = build_parser().parse_args(["monitor", "--alerts"])
        assert args.alerts is True


class TestAlertsReplay:
    def test_malicious_timeseries_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "malicious.jsonl"
        _write_timeseries(path, [0.1, 0.3, 0.5, 0.6])
        code = main(["alerts", str(path)])
        assert code == 1
        out = capsys.readouterr().out
        assert "correlation_leak" in out
        assert "critical" in out

    def test_benign_timeseries_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "benign.jsonl"
        _write_timeseries(path, [0.05, 0.06, 0.05, 0.07])
        code = main(["alerts", str(path)])
        assert code == 0
        assert "no alerts" in capsys.readouterr().out

    def test_threshold_is_tunable(self, tmp_path):
        path = tmp_path / "ts.jsonl"
        _write_timeseries(path, [0.1, 0.3])
        assert main(["alerts", str(path), "--corr-above", "0.9"]) == 0

    def test_missing_file_errors_cleanly(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["alerts", str(tmp_path / "absent.jsonl")])
        assert "repro alerts" in str(excinfo.value)


class TestInfo:
    def test_consolidated_table(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro info" in out
        for key in ("backend", "dtype", "workers", "exporter", "metrics"):
            assert key in out
        assert "not running (--serve-metrics PORT)" in out

    def test_bench_rows(self, tmp_path, capsys):
        from repro.monitor import BenchStore

        BenchStore(tmp_path).append("smoke", {"epoch_s": 1.25}, run_id="r1")
        assert main(["info", "--bench-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench:smoke" in out
        assert "1 entries" in out
        assert "epoch_s=1.25" in out


class TestServeMetrics:
    def test_serve_metrics_runs_and_stops_with_command(self, capsys):
        assert main(["--serve-metrics", "0", "info"]) == 0
        captured = capsys.readouterr()
        assert "metrics exporter serving" in captured.err
        assert "serving http://" in captured.out  # info table sees it live
        assert active_exporter() is None  # stopped on the way out
