"""Parallel sweep throughput: the acceptance bar for repro.parallel.

A 16-point sweep over a small model must run at least 2x faster with
``parallel=4`` than with ``parallel=1`` on a 4+ core machine -- while
producing byte-identical records.  The speedup half is skipped when the
host has fewer than 4 cores (process pools cannot beat serial there);
the determinism half runs everywhere, because ``parallel=1`` uses the
in-process fallback and ``parallel=4`` still exercises the real pool.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.models import resnet8_tiny
from repro.pipeline.config import TrainingConfig
from repro.pipeline.sweep import Sweep
from repro.pipeline.trainer import Trainer

GRID = {"lr": [0.02, 0.05, 0.08, 0.12], "batch_size": [16, 24, 32, 48]}
SWEEP_SEED = 123


def train_point(lr, batch_size, rng=None):
    """One sweep point: two training epochs of a tiny ResNet.

    All randomness (data, init, shuffling) derives from the per-point
    ``rng`` the sweep injects, so records depend only on the grid point
    and the sweep seed -- never on which process ran it.
    """
    seed = int(rng.integers(2**31)) if rng is not None else 0
    data_rng = np.random.default_rng(seed)
    inputs = data_rng.normal(size=(96, 3, 16, 16))
    labels = data_rng.integers(0, 4, size=96)
    model = resnet8_tiny(num_classes=4, in_channels=3, width=8,
                         rng=np.random.default_rng(seed + 1))
    trainer = Trainer(
        model, inputs, labels,
        TrainingConfig(epochs=2, batch_size=batch_size, lr=lr, seed=seed),
    )
    history = trainer.train()
    return {"final_loss": float(history.task_loss[-1])}


def run_sweep(parallel):
    sweep = Sweep(GRID, train_point)
    start = time.perf_counter()
    result = sweep.run(parallel=parallel, seed=SWEEP_SEED)
    return result, time.perf_counter() - start


class TestParallelSweepBenchmark:
    def test_parallel_records_identical_to_serial(self):
        serial, _ = run_sweep(parallel=1)
        pooled, _ = run_sweep(parallel=4)
        assert len(serial) == 16
        assert not serial.failures().records
        assert serial.records == pooled.records

    @pytest.mark.skipif((os.cpu_count() or 1) < 4,
                        reason="speedup bar needs 4+ cores")
    def test_parallel4_at_least_2x_faster(self):
        serial, serial_s = run_sweep(parallel=1)
        pooled, pooled_s = run_sweep(parallel=4)
        assert serial.records == pooled.records
        speedup = serial_s / pooled_s
        print(f"\n16-point sweep: serial {serial_s:.2f}s, "
              f"parallel=4 {pooled_s:.2f}s, speedup {speedup:.2f}x")
        assert speedup >= 2.0
