"""Observability stack overhead gate.

Times the same monitored attack-training epoch with and without the
full observability stack live on top of it -- metrics exporter thread,
wall-clock stack sampler, and the default alert-rule engine -- and
asserts the stack adds under the overhead budget.  Per-epoch numbers
and the overhead fraction are appended to BENCH_observability.json so
the trend is tracked across sessions (``repro info`` surfaces the
latest entry).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.monitor import Monitor, default_probes
from repro.monitor.alerts import default_rules
from repro.pipeline import TrainingConfig
from repro.pipeline.trainer import Trainer
from repro.telemetry.export import serve_metrics, stop_exporter
from repro.telemetry.sampler import StackSampler

from .test_monitor_overhead import _attack_setup, _best_epoch_seconds

pytestmark = pytest.mark.slow

# Exporter + sampler + alerts may cost at most this much on top of an
# already-monitored epoch: the exporter is a pull-based idle thread,
# the sampler wakes ~25x/s off-thread, and the rule engine evaluates a
# handful of comparisons once per epoch tick.
OVERHEAD_BUDGET = 0.03
SAMPLER_HZ = 25.0


def _monitored_trainer(alerts=None):
    model, batch, labels, groups, payload, mean, std, penalty = _attack_setup()
    monitor = Monitor(default_probes(decode_images=2), alerts=alerts).bind(
        groups=groups, payload=payload, mean=mean, std=std)
    trainer = Trainer(model, batch, labels,
                      TrainingConfig(epochs=1, batch_size=32, lr=0.05, seed=0),
                      penalty=penalty, probes=monitor)
    return trainer, monitor


def test_observability_stack_overhead(request):
    trainer, monitor = _monitored_trainer()
    trainer.train_epoch()  # warm-up: first-touch allocations stay untimed
    monitored_s = _best_epoch_seconds(trainer)

    observed_trainer, observed_monitor = _monitored_trainer(
        alerts=default_rules())
    observed_trainer.train_epoch()  # same warm-up on the observed side
    exporter = serve_metrics(port=0)
    sampler = StackSampler(hz=SAMPLER_HZ).start()
    try:
        observed_s = _best_epoch_seconds(observed_trainer)
    finally:
        sampler.stop()
        stop_exporter()

    overhead = observed_s / monitored_s - 1.0
    metrics = {
        "monitored_epoch_s": monitored_s,
        "observed_epoch_s": observed_s,
        "observability_overhead_frac": max(0.0, overhead),
        "sampler_samples": float(sampler.sample_count),
    }

    from repro.monitor import BenchStore
    root = os.environ.get("REPRO_BENCH_DIR") or str(request.config.rootpath)
    store = BenchStore(root)
    try:
        store.append("observability", metrics)
    except OSError as exc:
        pytest.skip(f"could not write {store.path('observability')}: {exc}")

    # the stack actually observed something while training ran
    assert sampler.sample_count > 0
    assert exporter.port > 0
    assert observed_monitor.probe_records(scope="epoch")
    assert not observed_monitor.errors()
    assert overhead < OVERHEAD_BUDGET, (
        f"observability stack costs {overhead:.1%} per monitored epoch "
        f"(monitored {monitored_s * 1e3:.1f} ms, "
        f"observed {observed_s * 1e3:.1f} ms); budget {OVERHEAD_BUDGET:.0%}")
