"""Extension: the cited related attacks, measured on the same substrate.

The paper's related work ranks the privacy-attack landscape
qualitatively; this bench quantifies it:

* **model inversion** (ref [10], no malicious training needed) recovers
  a class *prototype* -- far worse per-image fidelity than the
  correlation attack's actual training images;
* **membership inference** (ref [11]) measures a side effect: does the
  correlation attack's memorisation *increase* ordinary membership
  leakage?  (If it did, the attack would lose evasiveness against an
  MIA-auditing data holder.)
"""

import numpy as np
import pytest

from benchmarks.conftest import LAMBDA_SWEEP, run_once
from repro.attacks import (
    InversionConfig,
    invert_class,
    inversion_quality_vs_class,
    membership_inference,
)
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.pipeline.reporting import format_table


@pytest.mark.benchmark(group="ext-related")
def test_inversion_vs_correlation_quality(cache, benchmark):
    def experiment():
        attack = cache.our_attack("rgb", LAMBDA_SWEEP[1])
        attack.restore()
        train = attack.train_dataset
        correlation_eval = attack.evaluate()

        # Invert every class of the same released model.  The point of
        # comparison: the correlation attack reconstructs *specific*
        # training images; an inversion prototype cannot target any
        # particular image, so score it against the same specific images
        # the correlation attack stole (per-class mean MAPE), with the
        # nearest-member score reported as its best case.
        shape = (3, train.image_shape[0], train.image_shape[1])
        prototype_vs_stolen, prototype_best_case = [], []
        for target in range(train.num_classes):
            stolen_targets = attack.payload.images[attack.payload.labels == target]
            class_images = train.images[train.labels == target]
            if len(stolen_targets) == 0:
                continue
            prototype = invert_class(
                attack.model, target, shape,
                InversionConfig(steps=100, lr=0.1, seed=target),
                attack.mean, attack.std,
            )
            from repro.metrics import batch_mape
            repeated = np.repeat(prototype[None], len(stolen_targets), axis=0)
            prototype_vs_stolen.extend(batch_mape(stolen_targets, repeated))
            prototype_best_case.append(
                inversion_quality_vs_class(prototype, class_images))
        return (correlation_eval, np.array(prototype_vs_stolen),
                np.array(prototype_best_case))

    correlation_eval, vs_stolen, best_case = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["attack", "MAPE vs the stolen images", "best-case MAPE"],
        [["correlation encoding", f"{correlation_eval.mean_mape:.1f}", "-"],
         ["model inversion prototype", f"{vs_stolen.mean():.1f}",
          f"{best_case.mean():.1f}"]],
        title="Extension: inversion vs correlation fidelity",
    ))
    # Targeted theft beats untargeted prototypes on the specific images.
    assert correlation_eval.mean_mape < vs_stolen.mean()


@pytest.mark.benchmark(group="ext-related")
def test_membership_leakage_benign_vs_attacked(cache, benchmark):
    def experiment():
        benign = cache.benign("rgb")
        attack = cache.our_attack("rgb", LAMBDA_SWEEP[1])
        attack.restore()
        train, test = cache.datasets["rgb"]
        train_batch = images_to_batch(train.images)
        train_batch, _, _ = normalize_batch(train_batch, benign.mean, benign.std)
        test_batch = images_to_batch(test.images)
        test_batch, _, _ = normalize_batch(test_batch, benign.mean, benign.std)
        benign_result = membership_inference(
            benign.model, train_batch, train.labels, test_batch, test.labels)

        train_batch_a = images_to_batch(train.images)
        train_batch_a, _, _ = normalize_batch(train_batch_a, attack.mean, attack.std)
        attacked_result = membership_inference(
            attack.model, train_batch_a, train.labels,
            attack.test_batch, attack.test_dataset.labels)
        return benign_result, attacked_result

    benign_result, attacked_result = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["model", "MIA AUC", "best advantage"],
        [["benign", f"{benign_result.auc:.3f}", f"{benign_result.advantage():.3f}"],
         ["attacked", f"{attacked_result.auc:.3f}", f"{attacked_result.advantage():.3f}"]],
        title="Extension: loss-threshold membership inference",
    ))
    # Sanity: AUCs are valid probabilities.
    for result in (benign_result, attacked_result):
        assert 0.0 <= result.auc <= 1.0
    # The attack does not blow up ordinary membership leakage: the
    # attacked model's AUC stays within a modest band of the benign
    # model's (the payload lives in weight *values*, not in per-sample
    # loss behaviour).
    assert attacked_result.auc <= benign_result.auc + 0.15
