"""Fig. 4 -- MAPE / accuracy / recognized count of three arms across the
correlation-rate sweep:

* Cor      -- original correlation attack, uncompressed;
* Cor+WQ   -- original attack + weighted-entropy quantization (low bit);
* Comb     -- our full flow (pre-processing + layer-wise rates +
              target-correlated quantization) at the same bit width.

Paper claims: Cor+WQ suffers a large accuracy drop that worsens with the
rate, while Comb restores accuracy and recognizable-image counts to
near-uncompressed levels.
"""

import pytest

from benchmarks.conftest import BITS_SWEEP, LAMBDA_SWEEP, run_once
from repro.pipeline.reporting import format_table, percent

BITS = BITS_SWEEP[1]  # mid-sweep (paper uses its 4-bit point)


@pytest.mark.benchmark(group="fig4")
def test_fig4_three_arm_comparison(cache, benchmark):
    def experiment():
        results = {}
        for lam in LAMBDA_SWEEP:
            original = cache.original_attack("rgb", lam)
            cor = original.evaluate()
            cor_wq = original.quantize(BITS, "weighted_entropy")
            ours = cache.our_attack("rgb", lam)
            comb = ours.quantize(BITS, "target_correlated")
            results[lam] = {"Cor": cor, "Cor+WQ": cor_wq, "Comb": comb}
        return results

    results = run_once(benchmark, experiment)

    rows = []
    for lam, arms in results.items():
        for arm, ev in arms.items():
            rows.append([f"{lam:g}", arm, f"{ev.mean_mape:.2f}",
                         percent(ev.accuracy),
                         f"{ev.recognized_count}/{ev.encoded_images}"])
    print()
    print(format_table(["lambda", "arm", "MAPE", "accuracy", "recognized"],
                       rows, title=f"Fig. 4 at {BITS}-bit"))

    for lam, arms in results.items():
        cor, cor_wq, comb = arms["Cor"], arms["Cor+WQ"], arms["Comb"]
        # Comb restores accuracy relative to Cor+WQ.
        assert comb.accuracy >= cor_wq.accuracy - 0.02, f"lambda={lam}"
        # Comb's recognizable fraction matches or beats Cor+WQ.
        assert comb.recognized_percent >= cor_wq.recognized_percent - 2.0, f"lambda={lam}"
        # Comb lands near the uncompressed attack's accuracy.
        assert comb.accuracy >= cor.accuracy - 0.12, f"lambda={lam}"
    # The WEQ accuracy drop exists somewhere in the sweep (defense effect).
    assert any(
        arms["Cor+WQ"].accuracy < arms["Cor"].accuracy - 0.02
        or arms["Cor+WQ"].recognized_count < arms["Cor"].recognized_count
        for arms in results.values()
    )
