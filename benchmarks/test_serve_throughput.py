"""Serving throughput acceptance gate: batching must pay for itself.

The serve front end's whole reason to exist is deadline-based request
coalescing -- amortizing the per-request dispatch/IPC overhead across a
batch.  This gate drives the same synthetic open-loop trace (seeded
arrivals, heavy-tailed gaps) through two otherwise-identical servers:

* **batched**: ``max_batch=16`` with a small coalescing window -- the
  shipping configuration;
* **batch-1**: ``max_batch=1`` -- every request is its own dispatch.

Same artifact, same worker count, same trace.  The batched server must
sustain at least **2x** the throughput of the batch-1 server, and its
p50/p99 latencies land in ``BENCH_serve.json`` via the BenchStore so
``repro report --bench serve`` tracks drift across sessions.

Marked ``slow`` (deselect with ``-m "not slow"``); shard execution is
in-process serial so the gate measures batching, not fork latency, and
stays meaningful on single-core machines.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.models.registry import build_model
from repro.serve import (
    LoadGenConfig,
    ModelServer,
    ServeConfig,
    generate_trace,
    run_loadgen,
    save_artifact,
)

KW = dict(num_classes=6, in_channels=3, width=8)
SHAPE = (3, 16, 16)
N_REQUESTS = 200
SEED = 77


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve_bench") / "released"
    model = build_model("resnet8_tiny", rng=np.random.default_rng(SEED), **KW)
    save_artifact(model, path, "resnet8_tiny", model_kwargs=KW,
                  input_shape=SHAPE, seed=SEED)
    return str(path)


def _trace():
    # arrivals span ~40ms of trace time: fast enough that the batched
    # server's coalescing window actually fills, slow enough to be an
    # arrival *process* rather than a single burst
    return generate_trace(LoadGenConfig(seed=SEED, n_requests=N_REQUESTS,
                                        rate_rps=5000.0, alpha=1.5,
                                        deadline_ms=60_000.0))


def _run(path, trace, max_batch):
    config = ServeConfig(start_method="spawn", shards=1, max_batch=max_batch,
                         max_wait_ms=5.0 if max_batch > 1 else 0.0,
                         queue_capacity=2 * N_REQUESTS)

    async def _go():
        async with ModelServer({"m": path}, config=config) as server:
            return await run_loadgen(server, trace)

    return asyncio.run(_go())


@pytest.mark.slow
class TestServingThroughputGate:
    def test_batching_at_least_2x_over_batch_size_1(self, artifact, request):
        trace = _trace()
        _run(artifact, trace, max_batch=16)  # warm-up: caches, BLAS init
        batched = _run(artifact, trace, max_batch=16)
        single = _run(artifact, trace, max_batch=1)

        assert batched.completed == N_REQUESTS, batched.error_kinds
        assert single.completed == N_REQUESTS, single.error_kinds
        assert batched.mean_batch > 1.5, \
            "the coalescing window never formed real batches"

        speedup = batched.throughput_rps / single.throughput_rps
        print(f"\nserve throughput: batched {batched.throughput_rps:.0f} rps "
              f"(mean batch {batched.mean_batch:.1f}, "
              f"p50 {batched.p50_ms:.1f} ms, p99 {batched.p99_ms:.1f} ms) "
              f"vs batch-1 {single.throughput_rps:.0f} rps "
              f"(p50 {single.p50_ms:.1f} ms) -> {speedup:.2f}x")

        root = (os.environ.get("REPRO_BENCH_DIR")
                or str(request.config.rootpath))
        from repro.monitor import BenchStore

        store = BenchStore(root)
        metrics = {
            "throughput_rps": round(batched.throughput_rps, 2),
            "latency_p50_ms": round(batched.p50_ms, 3),
            "latency_p99_ms": round(batched.p99_ms, 3),
            "mean_batch": round(batched.mean_batch, 3),
            "batch1_throughput_rps": round(single.throughput_rps, 2),
            "batching_speedup": round(speedup, 3),
        }
        try:
            store.append("serve", metrics)
            for regression in store.check("serve", metrics):
                print(f"[bench] regression: {regression}")
        except OSError as exc:  # read-only checkouts must not fail the gate
            print(f"[bench] could not write {store.path('serve')}: {exc}")

        assert speedup >= 2.0, \
            f"batching speedup {speedup:.2f}x is below the 2x gate"
