"""Extension: the three Song et al. attacks under compression.

Sec. II-B of the paper argues the ordering qualitatively:

* **LSB encoding** dies instantly under quantization (the replaced
  mantissa bits do not survive re-discretisation);
* **sign encoding** carries 1 bit/parameter, an 8x capacity penalty for
  8-bit pixels, and signs partially survive quantization (representative
  values keep most signs);
* **correlated value encoding** uses full weight values and, with the
  paper's target-correlated quantizer, survives low-bit quantization.

This bench measures all three end-to-end on the same model family and
payload images, before and after 4-bit quantization.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.attacks import (
    SignEncodingPenalty,
    bit_error_rate,
    bits_to_images,
    images_to_bits,
    lsb_decode,
    lsb_encode,
    sign_decode_bits,
    sign_image_capacity,
)
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.metrics import batch_mape
from repro.models.introspect import encodable_parameters
from repro.pipeline import QuantizationConfig, TrainingConfig
from repro.pipeline.baselines import quantize_and_finetune
from repro.pipeline.reporting import format_table


@pytest.mark.benchmark(group="ext-attack-family")
def test_attack_family_under_quantization(cache, benchmark):
    def experiment():
        results = {}

        # ---- correlated value encoding (the cached our-flow attack).
        corr = cache.our_attack("rgb", 20.0)
        corr_before = corr.evaluate()
        corr_after = corr.quantize(4, "target_correlated")
        results["correlation"] = {
            "capacity": corr_before.encoded_images,
            "mape_before": corr_before.mean_mape,
            "mape_after": corr_after.mean_mape,
        }

        train, test = cache.datasets["rgb"]
        images = train.images[:2]
        payload_bits = images_to_bits(images)

        # ---- LSB: post-training bit replacement on a benign model copy.
        benign = cache.benign("rgb")
        from repro.models import resnet8_tiny
        lsb_model = resnet8_tiny(num_classes=6, in_channels=3, width=8,
                                 rng=np.random.default_rng(7))
        lsb_model.load_state_dict(benign.model.state_dict())
        params = [p for _, p in encodable_parameters(lsb_model)]
        lsb_encode(params, payload_bits, bits_per_weight=8)
        decoded = lsb_decode(params, payload_bits.size, 8)
        lsb_before = bit_error_rate(payload_bits, decoded)
        quantize_and_finetune(
            lsb_model, QuantizationConfig(bits=4, method="uniform", finetune_epochs=0),
            train, TrainingConfig(epochs=1), benign.mean, benign.std,
        )
        decoded = lsb_decode(params, payload_bits.size, 8)
        lsb_after = bit_error_rate(payload_bits, decoded)
        results["lsb"] = {"ber_before": lsb_before, "ber_after": lsb_after}

        # ---- sign encoding: train a fresh model with the sign penalty.
        from repro.pipeline.trainer import Trainer
        sign_model = resnet8_tiny(num_classes=6, in_channels=3, width=8,
                                  rng=np.random.default_rng(8))
        sign_params = [p for _, p in encodable_parameters(sign_model)]
        total_weights = sum(p.size for p in sign_params)
        capacity = sign_image_capacity(total_weights, train.pixels_per_image)
        sign_images = train.images[:max(capacity, 1)]
        sign_bits = images_to_bits(sign_images)
        # The hinge penalty averages over all ~19k parameters, so its
        # per-weight gradient is rate/l -- the rate must scale with the
        # parameter count to move weights across zero.
        penalty = SignEncodingPenalty(sign_params, sign_bits, rate=500.0)
        train_batch = images_to_batch(train.images)
        train_batch, mean, std = normalize_batch(train_batch)
        Trainer(sign_model, train_batch, train.labels,
                TrainingConfig(epochs=15, batch_size=32, lr=0.08),
                penalty=penalty).train()
        decoded_bits = sign_decode_bits(sign_params, sign_bits.size)
        sign_before = bit_error_rate(sign_bits, decoded_bits)
        quantize_and_finetune(
            sign_model, QuantizationConfig(bits=4, method="kmeans", finetune_epochs=1),
            train, TrainingConfig(epochs=1, batch_size=32), mean, std,
        )
        decoded_bits = sign_decode_bits(sign_params, sign_bits.size)
        sign_after = bit_error_rate(sign_bits, decoded_bits)
        sign_recon = bits_to_images(decoded_bits, sign_images.shape)
        sign_mape = float(batch_mape(sign_images, sign_recon).mean())
        results["sign"] = {
            "capacity": len(sign_images),
            "ber_before": sign_before, "ber_after": sign_after,
            "mape_after": sign_mape,
        }
        return results

    results = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["attack", "payload", "fidelity before 4b", "fidelity after 4b"],
        [
            ["correlation (ours)",
             f"{results['correlation']['capacity']} images",
             f"MAPE {results['correlation']['mape_before']:.1f}",
             f"MAPE {results['correlation']['mape_after']:.1f}"],
            ["LSB (8 bits/weight)", "2 images",
             f"BER {results['lsb']['ber_before']:.3f}",
             f"BER {results['lsb']['ber_after']:.3f}"],
            ["sign (1 bit/weight)",
             f"{results['sign']['capacity']} images",
             f"BER {results['sign']['ber_before']:.3f}",
             f"BER {results['sign']['ber_after']:.3f} "
             f"(MAPE {results['sign']['mape_after']:.1f})"],
        ],
        title="Extension: Song et al. attack family under 4-bit quantization",
    ))

    # LSB: perfect before, destroyed after (BER near 0.5 = random).
    assert results["lsb"]["ber_before"] == 0.0
    assert results["lsb"]["ber_after"] > 0.25
    # Sign: encodes with low error, degrades under quantization but far
    # less than LSB.
    assert results["sign"]["ber_before"] < 0.2
    assert results["sign"]["ber_after"] < results["lsb"]["ber_after"]
    # Correlation capacity dwarfs sign capacity (the paper's efficiency
    # argument: one pixel per weight vs. one bit per weight).
    assert results["correlation"]["capacity"] > results["sign"]["capacity"]
    # Correlation survives quantization with bounded MAPE growth.
    assert results["correlation"]["mape_after"] < results["correlation"]["mape_before"] + 8.0
