"""Fig. 3 -- weight distributions of the quantized attack model on 32
quantization levels: weighted-entropy vs. target-correlated.

Paper claim: WEQ significantly reshapes the attacked weight distribution
(degrading accuracy beyond what retraining can recover), while the
target-correlated quantizer approximates the original distribution.
Quantified as histogram overlap / KS distance between each quantized
weight vector and the unquantized attacked weights, at 32 levels
(5-bit), exactly the figure's setting.
"""

import pytest

from benchmarks.conftest import LAMBDA_SWEEP, run_once
from repro.metrics import histogram_overlap, ks_distance
from repro.pipeline.reporting import format_table
from repro.quantization import TargetCorrelatedQuantizer, WeightedEntropyQuantizer
from repro.quantization.target_correlated import detect_flip

LEVELS = 32  # the figure's "32 quantization levels"


@pytest.mark.benchmark(group="fig3")
def test_fig3_quantizer_distribution_preservation(cache, benchmark):
    def experiment():
        attack = cache.original_attack("rgb", LAMBDA_SWEEP[1])
        group = next(g for g in attack.groups if g.payload is not None)
        weights = group.weight_vector()
        flip = detect_flip(weights, group.payload.secret_vector())

        weq = WeightedEntropyQuantizer(LEVELS)
        ours = TargetCorrelatedQuantizer(attack.payload.images, LEVELS, flip=flip)
        results = {}
        for name, quantizer in [("weighted_entropy", weq), ("target_correlated", ours)]:
            codebook, assignment = quantizer.quantize_vector(weights)
            recon = codebook[assignment]
            results[name] = {
                "overlap": histogram_overlap(recon, weights, bins=32),
                "ks": ks_distance(recon, weights),
            }
        return results

    results = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["quantizer", "histogram overlap", "KS distance"],
        [[name, f"{r['overlap']:.3f}", f"{r['ks']:.3f}"]
         for name, r in results.items()],
        title=f"Fig. 3: distribution preservation at {LEVELS} levels",
    ))
    ours = results["target_correlated"]
    weq = results["weighted_entropy"]
    # Algorithm 1 preserves the attacked distribution better than WEQ.
    assert ours["overlap"] > weq["overlap"]
    assert ours["ks"] < weq["ks"]
    # And preserves it well in absolute terms.
    assert ours["overlap"] > 0.8
