"""Table II -- badly encoded images (MAPE > 20) per layer group.

Paper: with a uniform correlation rate, the early groups encode far
worse than the deep group at every rate, and raising the rate helps the
deep group much more than group 1:

    lambda=3:  group1 100%, group2 75%,   group3 27.6% bad
    lambda=5:  group1 74%,  group2 35.7%, group3 20.4% bad
    lambda=10: group1 48%,  group2 32.1%, group3 15.1% bad
"""

import numpy as np
import pytest

from benchmarks.conftest import LAMBDA_SWEEP, run_once
from repro.attacks.decoder import decode_images
from repro.metrics import batch_mape
from repro.pipeline.reporting import format_table


def per_group_bad_fraction(attack, threshold=20.0):
    """Fraction of MAPE>threshold images per active group."""
    out = {}
    for group in attack.groups:
        if group.payload is None:
            continue
        recon = decode_images(group.weight_vector(), group.payload, polarity="reference")
        mape = batch_mape(group.payload.images, recon)
        out[group.name] = (int((mape > threshold).sum()), len(mape))
    return out


@pytest.mark.benchmark(group="table2")
def test_table2_group_encoding_quality(cache, benchmark):
    def experiment():
        results = {}
        for lam in LAMBDA_SWEEP:
            attack = cache.original_attack("rgb", lam)
            results[lam] = per_group_bad_fraction(attack)
        return results

    results = run_once(benchmark, experiment)

    group_names = sorted(next(iter(results.values())).keys())
    rows = []
    for lam, groups in results.items():
        row = [f"{lam:g}"]
        for name in group_names:
            bad, total = groups[name]
            row.append(f"{bad}/{total} ({100.0 * bad / max(total, 1):.0f}%)")
        rows.append(row)
    print()
    print(format_table(["lambda"] + group_names, rows,
                       title="Table II: badly encoded images (MAPE > 20) per group"))

    # Claim 1: early groups (1+2 combined -- they hold only a few images
    # at this scale) encode no better than the deep group at the low
    # rate, the paper's clearest case (its lambda=3 row: 100%/75% bad in
    # groups 1/2 vs 27.6% in group 3).  At higher rates the tiny
    # substrate's early layers eventually encode fine -- its easy task
    # lacks ResNet-34's early-layer fragility -- so the ordering there
    # is reported but not asserted.
    for lam in LAMBDA_SWEEP[:1]:
        groups = results[lam]
        early_bad = groups["group1"][0] + groups["group2"][0]
        early_total = groups["group1"][1] + groups["group2"][1]
        frac_early = early_bad / max(early_total, 1)
        frac_deep = groups["group3"][0] / max(groups["group3"][1], 1)
        assert frac_early >= frac_deep - 0.05, (
            f"lambda={lam}: early groups unexpectedly encoded better than the deep group"
        )
    # Claim 2: raising the rate improves the deep group's encoding.
    low, high = LAMBDA_SWEEP[0], LAMBDA_SWEEP[-1]
    frac_low = results[low]["group3"][0] / max(results[low]["group3"][1], 1)
    frac_high = results[high]["group3"][0] / max(results[high]["group3"][1], 1)
    assert frac_high <= frac_low + 0.05
