"""Ablations over the three components of the paper's attack flow.

DESIGN.md calls out three design choices; each ablation removes one:

* **pre-processing** (Sec. IV-A): std-window target selection vs. a
  random draw, same layer-wise training -- selection should not *hurt*
  encoding quality and typically improves it;
* **layer-wise rates** (Sec. IV-B): (0, 0, lambda) vs. uniform
  (lambda, lambda, lambda) -- zeroing the early groups buys accuracy
  and/or average encoding quality after quantization;
* **histogram flip** (Sec. IV-C implementation detail): Algorithm 1
  with the correlation-sign-aware histogram vs. the raw histogram on a
  negatively-correlated model with a skewed (face) pixel distribution.
"""

import pytest

from benchmarks.conftest import BITS_SWEEP, FACE_BITS, LAMBDA_SWEEP, run_once
from repro.pipeline.reporting import format_table, percent
from repro.quantization.target_correlated import detect_flip

RATE = LAMBDA_SWEEP[1]
BITS = BITS_SWEEP[0]


@pytest.mark.benchmark(group="ablation")
def test_ablation_preprocessing(cache, benchmark):
    def experiment():
        with_selection = cache.attack("rgb", (0.0, 0.0, RATE), preprocess=True)
        without = cache.attack("rgb", (0.0, 0.0, RATE), preprocess=False)
        return {
            "std selection": with_selection.quantize(BITS, "target_correlated"),
            "random targets": without.quantize(BITS, "target_correlated"),
        }

    results = run_once(benchmark, experiment)
    rows = [[name, percent(ev.accuracy), f"{ev.mean_mape:.2f}",
             f"{ev.recognized_count}/{ev.encoded_images}"]
            for name, ev in results.items()]
    print()
    print(format_table(["targets", "accuracy", "MAPE", "recognizable"],
                       rows, title=f"Ablation: Sec. IV-A pre-processing ({BITS}-bit)"))
    selected = results["std selection"]
    random_draw = results["random targets"]
    # Selection must not hurt quality (and usually helps).
    assert selected.mean_mape <= random_draw.mean_mape + 2.0
    assert selected.accuracy >= random_draw.accuracy - 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_layerwise_rates(cache, benchmark):
    # The benefit of zeroing the early groups shows at the paper's
    # low-rate regime, where Table II says the early groups encode
    # badly: a uniform rate wastes capacity on bad images, so the
    # layer-wise variant wins on average quality. (At very high rates
    # this tiny substrate's early layers encode fine -- its easy 6-class
    # task lacks the paper's early-layer accuracy fragility -- so the
    # contrast lives at the low end of the sweep.)
    rate = LAMBDA_SWEEP[0]
    bits = BITS_SWEEP[0]

    def experiment():
        layerwise = cache.attack("rgb", (0.0, 0.0, rate), preprocess=True)
        uniform = cache.attack("rgb", (rate, rate, rate), preprocess=True)
        return {
            "layer-wise (0,0,r)": layerwise.quantize(bits, "target_correlated"),
            "uniform (r,r,r)": uniform.quantize(bits, "target_correlated"),
        }

    results = run_once(benchmark, experiment)
    rows = [[name, percent(ev.accuracy), f"{ev.mean_mape:.2f}",
             f"{ev.recognized_percent:.0f}%"]
            for name, ev in results.items()]
    print()
    print(format_table(["rates", "accuracy", "MAPE", "recognizable %"],
                       rows, title=f"Ablation: Sec. IV-B layer-wise rates ({bits}-bit)"))
    layerwise = results["layer-wise (0,0,r)"]
    uniform = results["uniform (r,r,r)"]
    # Zeroing the early groups must not cost accuracy ...
    assert layerwise.accuracy >= uniform.accuracy - 0.02
    # ... and buys average encoding quality and recognizability.
    assert layerwise.mean_mape <= uniform.mean_mape + 0.5
    assert layerwise.recognized_percent >= uniform.recognized_percent - 2.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_histogram_flip(face_experiment, benchmark):
    attack = face_experiment.attack

    def experiment():
        group = next(g for g in attack.groups if g.payload is not None)
        attack.restore()
        detected = detect_flip(group.weight_vector(), group.payload.secret_vector())
        with_flip = attack.quantize(FACE_BITS, "target_correlated",
                                    flip_override=detected)
        without_flip = attack.quantize(FACE_BITS, "target_correlated",
                                       flip_override=False)
        return detected, with_flip, without_flip

    detected, with_flip, without_flip = run_once(benchmark, experiment)

    rows = [
        ["sign-aware histogram", percent(with_flip.accuracy),
         f"{with_flip.mean_mape:.1f}", f"{with_flip.mean_ssim:.3f}"],
        ["raw histogram", percent(without_flip.accuracy),
         f"{without_flip.mean_mape:.1f}", f"{without_flip.mean_ssim:.3f}"],
    ]
    print()
    print(format_table(["variant", "accuracy", "MAPE", "SSIM"], rows,
                       title=f"Ablation: histogram flip (faces, {FACE_BITS}-bit, "
                             f"detected flip={detected})"))
    if detected:
        # When the correlation came out negative, the sign-aware variant
        # must not lose to the raw histogram on reconstruction quality.
        assert with_flip.mean_mape <= without_flip.mean_mape + 1.0
        assert with_flip.mean_ssim >= without_flip.mean_ssim - 0.02
    else:
        # Correlation came out positive: both variants coincide.
        assert abs(with_flip.mean_mape - without_flip.mean_mape) < 1e-6
