"""Backend acceptance gates: end-to-end speedup and kernel attribution.

Two bars for the ``repro.backend`` layer on a fixed-seed training
epoch of the tiny ResNet substrate:

* the fast backend must be at least **1.3x** faster than reference on
  the same data, same seeds, same model init;
* the op profiler must attribute at least **90%** of the step's wall
  time to named backend kernels -- if attribution decays, the kernel
  seam has sprung a leak (ops inlining numpy again).

Timing halves are marked ``slow`` (deselect with ``-m "not slow"``)
and skip on single-core machines where wall-clock comparisons of
BLAS-threaded workloads are too noisy to gate on.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import backend as B
from repro.backend import fast
from repro.models import resnet8_tiny
from repro.pipeline.config import TrainingConfig
from repro.pipeline.trainer import Trainer
from repro.telemetry import profile

BATCH_SIZE = 64  # amortizes per-op Python overhead like real training
SEED = 123


def make_trainer(backend):
    rng = np.random.default_rng(SEED)
    inputs = rng.normal(size=(192, 3, 16, 16))
    labels = rng.integers(0, 6, size=192)
    model = resnet8_tiny(num_classes=6, in_channels=3, width=8,
                         rng=np.random.default_rng(SEED + 1))
    config = TrainingConfig(epochs=1, batch_size=BATCH_SIZE, lr=0.05, seed=SEED)
    return Trainer(model, inputs, labels, config, backend=backend)


def epoch_seconds(backend, repeats=3):
    """Best-of-``repeats`` wall time of one training epoch."""
    trainer = make_trainer(backend)
    trainer.train_epoch()  # warm-up: index caches, pools, BLAS init
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        trainer.train_epoch()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="wall-clock gate needs 2+ cores")
class TestBackendSpeedup:
    def test_fast_backend_at_least_1_3x(self):
        fast.clear_caches()
        reference_s = epoch_seconds("reference")
        fast_s = epoch_seconds("fast")
        speedup = reference_s / fast_s
        print(f"\ntraining epoch: reference {reference_s * 1e3:.1f} ms, "
              f"fast {fast_s * 1e3:.1f} ms, speedup {speedup:.2f}x")
        assert speedup >= 1.3

    def test_profiler_attributes_90_percent_to_kernels(self):
        # Pinned to float64: the 90% bar gauges attribution completeness
        # (every hot path behind a named kernel), and was calibrated on
        # double-precision kernel times.  Under the float32 policy the
        # kernels themselves shrink against fixed per-op Python overhead,
        # which would move this ratio without any attribution leak.
        from repro import precision
        with precision.use_dtype("float64"):
            trainer = make_trainer("fast")
            trainer.train_epoch()  # warm-up
            with profile() as prof:
                trainer.train_epoch()
        coverage = prof.kernel_coverage()
        top = ", ".join(f"{stat.name} {stat.total_time * 1e3:.1f}ms"
                        for stat in prof.top_kernels(3))
        print(f"\nkernel coverage {coverage:.1%} of "
              f"{prof.wall_time * 1e3:.1f} ms epoch (top: {top})")
        assert coverage >= 0.90


class TestBackendEquivalenceGate:
    def test_training_losses_in_tolerance_band(self):
        # cheap enough to run in the default suite: one epoch per backend.
        # Pinned to float64 -- the 1e-5 band is a double-precision
        # contract; the float32 policy's cross-dtype bands live in
        # backend.equivalence.DTYPE_RTOL and test_precision_speedup.py.
        from repro import precision

        with precision.use_dtype("float64"):
            reference = make_trainer("reference")
            fast_t = make_trainer("fast")
            ref_loss = reference.train_epoch()
            fast_loss = fast_t.train_epoch()
        np.testing.assert_allclose(fast_loss, ref_loss, rtol=1e-5)
