"""Data-parallel acceptance gate: 4 ranks must beat serial by >= 2.5x.

The DDP runtime's reason to exist is wall-clock: shard every batch
across persistent fork workers, move gradients through shared memory
(never pickle), and pay only a tree all-reduce plus a few barriers per
step.  This gate trains the same fixed-seed workload serially and at
``ddp_workers=4`` and requires a **2.5x** epoch-throughput speedup
(ISSUE/ROADMAP target; the theoretical ceiling at 4 ranks is 4x, and
the barrier + all-reduce overhead must stay under the difference).

The workload is compute-bound on purpose -- big enough batches through
a real conv net that per-step numpy work dwarfs the per-step barrier
cost; a dispatch-bound workload (tiny batches) would measure fork
overhead instead of scaling.  Losses are not compared bit-exactly here
(per-rank batch-norm statistics make multi-rank training a *different*
but equally valid run -- ``tests/integration/test_ddp_golden.py`` pins
the behavioural contract); this gate checks the loss stays finite and
the run really was data-parallel.

Results land in ``BENCH_ddp.json`` via the BenchStore so scaling drift
across sessions is visible to ``repro report``.  Marked ``slow`` and
skipped below 4 cores, where 4 ranks time-slice a smaller number of
cores and the ratio measures the scheduler, not the runtime.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import precision
from repro.models import resnet8_tiny
from repro.parallel import ddp
from repro.pipeline.config import TrainingConfig
from repro.pipeline.trainer import Trainer
from repro.telemetry.metrics import default_registry

SEED = 321
IMAGE_SIZE = 16
BATCH_SIZE = 64         # compute-bound: amortize barriers over real work
N_IMAGES = 512
REPEATS = 3
WORLD = 4
GATE = 2.5


def make_trainer(ddp_workers: int) -> Trainer:
    rng = np.random.default_rng(SEED)
    inputs = rng.standard_normal(
        (N_IMAGES, 3, IMAGE_SIZE, IMAGE_SIZE)
    ).astype(np.float32)
    labels = rng.integers(0, 6, size=N_IMAGES)
    with precision.use_dtype("float32"):
        model = resnet8_tiny(num_classes=6, in_channels=3, width=16,
                             rng=np.random.default_rng(SEED + 1))
    config = TrainingConfig(epochs=1, batch_size=BATCH_SIZE, lr=0.01,
                            seed=SEED)
    return Trainer(model, inputs, labels, config, dtype="float32",
                   backend="fast", ddp_workers=ddp_workers)


def epoch_seconds(trainer: Trainer) -> float:
    """Best-of-``REPEATS`` wall time of one training epoch (after a
    warm-up epoch that forks the workers / initializes BLAS)."""
    trainer.train_epoch()
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        trainer.train_epoch()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < WORLD,
                    reason=f"scaling gate needs {WORLD}+ cores")
@pytest.mark.skipif(not ddp.available(), reason="fork start method unavailable")
class TestDdpSpeedupGate:
    def test_four_workers_at_least_2_5x_over_serial(self, request):
        serial = make_trainer(1)
        serial_s = epoch_seconds(serial)

        parallel = make_trainer(WORLD)
        try:
            parallel_s = epoch_seconds(parallel)
            epoch = dict(parallel._ddp.last_epoch)
        finally:
            parallel.close()

        # the run really was data-parallel, over shared memory
        steps = N_IMAGES // BATCH_SIZE
        assert epoch["steps"] == steps
        assert epoch["worker_steps"] == steps * (WORLD - 1)
        assert epoch["bytes_moved"] > 0
        assert np.isfinite(parallel.history.task_loss).all()

        speedup = serial_s / parallel_s
        registry = default_registry()
        allreduce_ms = registry.timer("ddp.allreduce_s").last * 1e3
        print(f"\nddp speedup: serial {serial_s * 1e3:.1f} ms/epoch vs "
              f"{WORLD} workers {parallel_s * 1e3:.1f} ms/epoch -> "
              f"{speedup:.2f}x (allreduce {allreduce_ms:.2f} ms/step)")

        root = (os.environ.get("REPRO_BENCH_DIR")
                or str(request.config.rootpath))
        from repro.monitor import BenchStore

        store = BenchStore(root)
        metrics = {
            "serial_ms": round(serial_s * 1e3, 3),
            "ddp4_ms": round(parallel_s * 1e3, 3),
            "speedup": round(speedup, 3),
            "workers": WORLD,
            "steps": epoch["steps"],
            "bytes_moved": epoch["bytes_moved"],
        }
        try:
            store.append("ddp", metrics)
            for regression in store.check("ddp", metrics):
                print(f"[bench] regression: {regression}")
        except OSError as exc:  # read-only checkouts must not fail the gate
            print(f"[bench] could not write {store.path('ddp')}: {exc}")

        assert speedup >= GATE, \
            f"ddp speedup {speedup:.2f}x is below the {GATE}x gate"
