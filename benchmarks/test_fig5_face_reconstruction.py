"""Fig. 5 -- reconstructed face images: our quantized attack vs. the
original weighted-entropy quantization at 3 bits (eight gray levels).

The paper shows the qualitative face grid; this bench quantifies the
same comparison as per-image MAPE / SSIM series over the embedded faces
plus an ASCII rendering of the first reconstructed face from each arm.
"""

import numpy as np
import pytest

from benchmarks.conftest import FACE_BITS, run_once
from repro.pipeline.reporting import format_table

_ASCII_LEVELS = " .:-=+*#%@"


def ascii_face(image: np.ndarray, width: int = 24) -> str:
    """Render a grayscale face as ASCII art (coarse visual check)."""
    gray = image[..., 0].astype(float)
    rows = []
    step = max(1, gray.shape[0] // width)
    for r in range(0, gray.shape[0], step):
        row = ""
        for c in range(0, gray.shape[1], step):
            level = int(gray[r, c] / 256.0 * len(_ASCII_LEVELS))
            row += _ASCII_LEVELS[min(level, len(_ASCII_LEVELS) - 1)] * 2
        rows.append(row)
    return "\n".join(rows)


@pytest.mark.benchmark(group="fig5")
def test_fig5_face_reconstruction_quality(face_experiment, benchmark):
    attack = face_experiment.attack

    def experiment():
        proposed = attack.quantize(FACE_BITS, "target_correlated")
        original = attack.quantize(FACE_BITS, "weighted_entropy")
        return proposed, original

    proposed, original = run_once(benchmark, experiment)

    count = min(8, proposed.encoded_images)
    rows = []
    for index in range(count):
        rows.append([
            f"face {index}",
            f"{proposed.mape_per_image[index]:.1f}",
            f"{original.mape_per_image[index]:.1f}",
            f"{proposed.ssim_per_image[index]:.3f}",
            f"{original.ssim_per_image[index]:.3f}",
        ])
    print()
    print(format_table(
        ["image", "ours MAPE", "WEQ MAPE", "ours SSIM", "WEQ SSIM"],
        rows, title=f"Fig. 5: per-face reconstruction quality at {FACE_BITS}-bit"))

    print("\noriginal face:")
    print(ascii_face(proposed.originals[0]))
    print("\nours (target-correlated):")
    print(ascii_face(proposed.reconstructions[0]))
    print("\nweighted entropy:")
    print(ascii_face(original.reconstructions[0]))

    # Our method preserves face texture better on average.
    assert proposed.mean_ssim > original.mean_ssim
    assert proposed.mean_mape < original.mean_mape
    # Per-image: ours wins SSIM on a majority of the faces.
    wins = (proposed.ssim_per_image > original.ssim_per_image).mean()
    assert wins > 0.5
