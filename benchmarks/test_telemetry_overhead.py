"""Telemetry overhead smoke benchmark.

Times the same small training epoch three ways:

* **disabled** -- no recorder, no profiler: the shipped default.  The
  instrumentation left in the hot loop must be invisible here.
* **traced**   -- a TraceRecorder active (spans recorded per batch).
* **profiled** -- the autograd op hook active (per-op timing).

Prints an epochs/sec comparison table and asserts the disabled path's
analytically-measured instrumentation cost stays under the 5% budget
(tests/telemetry/test_overhead.py enforces the same bound in tier 1;
this benchmark adds the enabled-mode numbers for the record).
"""

from __future__ import annotations

import time

import numpy as np

from repro.models import resnet8_tiny
from repro.pipeline import TrainingConfig
from repro.pipeline.reporting import format_table
from repro.pipeline.trainer import Trainer
from repro.telemetry import profile, recording


def _make_trainer() -> Trainer:
    rng = np.random.default_rng(0)
    inputs = rng.normal(size=(128, 3, 16, 16))
    labels = rng.integers(0, 4, size=128)
    model = resnet8_tiny(num_classes=4, in_channels=3, width=8, rng=rng)
    return Trainer(model, inputs, labels,
                   TrainingConfig(epochs=1, batch_size=32, lr=0.05))


def _best_epoch_seconds(trainer: Trainer, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        trainer.train_epoch()
        best = min(best, time.perf_counter() - start)
    return best


def test_telemetry_overhead_smoke():
    trainer = _make_trainer()
    trainer.train_epoch()  # warm-up

    disabled = _best_epoch_seconds(trainer)
    with recording() as recorder:
        traced = _best_epoch_seconds(trainer)
    with profile() as prof:
        profiled = _best_epoch_seconds(trainer)

    rows = [
        ["disabled", disabled * 1e3, 1.0],
        ["traced", traced * 1e3, traced / disabled],
        ["profiled", profiled * 1e3, profiled / disabled],
    ]
    print()
    print(format_table(["mode", "epoch ms", "vs disabled"], rows,
                       title="telemetry overhead (min of 3 epochs)"))
    print(f"spans recorded: {len(recorder)}, "
          f"op calls profiled: {prof.total_calls}")

    # The enabled modes do real extra work but must stay in the same
    # order of magnitude; the disabled bound is the hard requirement
    # (asserted analytically in tier 1 where timing noise is removed).
    assert traced < disabled * 3.0
    assert profiled < disabled * 3.0
    assert len(recorder) > 0
    assert prof.total_calls > 0
