"""Fig. 2 -- (a) weight distributions of benign vs. attacked models;
(b) pixel-value distributions of images grouped by std.

Paper claims quantified here:

* (a) the attack reshapes the benign weight distribution towards the
  target pixel distribution, more strongly at higher correlation rates
  (blue benign line vs. the lambda=1 / lambda=10 lines);
* (b) images whose std sits in the window around the dataset mean have
  pixel distributions similar to the attacked weights, while very low /
  very high std images look different.
"""

import numpy as np
import pytest

from benchmarks.conftest import LAMBDA_SWEEP, run_once
from repro.metrics import histogram_overlap
from repro.models import parameter_vector
from repro.pipeline.reporting import format_table
from repro.preprocessing import select_by_std_range


@pytest.mark.benchmark(group="fig2")
def test_fig2a_weight_distribution_reshaping(cache, benchmark):
    lam_low, _, lam_high = LAMBDA_SWEEP

    def experiment():
        benign = cache.benign("rgb")
        low = cache.original_attack("rgb", lam_low)
        high = cache.original_attack("rgb", lam_high)
        pixels = low.payload.secret_vector()
        names = [n for g in low.groups for n in g.param_names]
        overlaps = {
            "benign": histogram_overlap(parameter_vector(benign.model, names), pixels),
            f"lambda={lam_low:g}": histogram_overlap(
                parameter_vector(low.model, names), pixels),
            f"lambda={lam_high:g}": histogram_overlap(
                parameter_vector(high.model, names), pixels),
        }
        return overlaps

    overlaps = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["model", "overlap with target pixel distribution"],
        [[k, f"{v:.3f}"] for k, v in overlaps.items()],
        title="Fig. 2(a): weight-distribution overlap with the pixel distribution",
    ))
    lam_low, _, lam_high = LAMBDA_SWEEP
    # The attack must pull the weight distribution towards the pixels.
    assert overlaps[f"lambda={lam_low:g}"] > overlaps["benign"]
    # A higher rate pulls at least as hard.
    assert overlaps[f"lambda={lam_high:g}"] >= overlaps[f"lambda={lam_low:g}"] - 0.05


@pytest.mark.benchmark(group="fig2")
def test_fig2b_pixel_distributions_by_std(cache, benchmark):
    """Images in the std window around the dataset mean have the most
    *typical* pixel distribution -- the property the Sec. IV-A selection
    rule exploits (an attacked model's weights mirror the typical pixel
    distribution, so typical targets encode best)."""

    def experiment():
        train, _ = cache.datasets["rgb"]
        stds = train.per_image_std()
        mean_std = stds.mean()
        windows = {
            "low std": (stds.min() - 1, np.percentile(stds, 20)),
            "window around mean": (np.floor(mean_std) - 4, np.floor(mean_std) + 4),
            "high std": (np.percentile(stds, 80), stds.max() + 1),
        }
        full = train.images.reshape(-1).astype(float)
        typicality = {}
        for label, (low, high) in windows.items():
            indices = select_by_std_range(train, low, high)
            if len(indices) == 0:
                continue
            pixels = train.images[indices].reshape(-1).astype(float)
            typicality[label] = histogram_overlap(pixels, full)
        return typicality

    typicality = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["std window", "overlap with dataset pixel distribution"],
        [[k, f"{v:.3f}"] for k, v in typicality.items()],
        title="Fig. 2(b): pixel-distribution typicality by std window",
    ))
    # The window around the mean is the most typical slice.
    assert typicality["window around mean"] >= typicality["low std"]
    assert typicality["window around mean"] >= typicality["high std"]
