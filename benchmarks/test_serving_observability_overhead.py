"""Per-request observability overhead gate for the serving path.

PR 9's tracer rides every request: a context object, four clock
stamps, SLO histogram observations, a flight-ring append, and (with a
recorder active) a five-span tree per request.  All of that must stay
in the noise next to real inference work: this gate replays the same
open-loop trace through two otherwise-identical servers -- tracing off
vs. the full stack on (request spans into a live recorder + SLO
histograms + flight ring) -- and asserts the observed throughput drop
stays under the budget.  Numbers land in ``BENCH_serve_obs.json`` so
the trend is tracked across sessions.

Marked ``slow``; shard execution is in-process serial so the gate
measures tracing overhead, not fork latency.
"""

from __future__ import annotations

import asyncio
import os

import numpy as np
import pytest

from repro.models.registry import build_model
from repro.serve import (
    LoadGenConfig,
    ModelServer,
    ServeConfig,
    generate_trace,
    run_loadgen,
    save_artifact,
)
from repro.telemetry.trace import recording

pytestmark = pytest.mark.slow

KW = dict(num_classes=6, in_channels=3, width=8)
#: CIFAR-sized inputs (the paper's serving artifacts): per-request
#: compute is then ~2 ms, so the tracer's ~25 us/request cost is
#: measured against realistic work, not against a toy forward pass.
SHAPE = (3, 32, 32)
N_REQUESTS = 250
SEED = 91

#: Tracing may cost at most this fraction of baseline throughput.
OVERHEAD_BUDGET = 0.05
#: Best-of-N runs per side: the gate compares capability, not jitter.
REPEATS = 3


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    path = tmp_path_factory.mktemp("serve_obs") / "released"
    model = build_model("resnet8_tiny", rng=np.random.default_rng(SEED), **KW)
    save_artifact(model, path, "resnet8_tiny", model_kwargs=KW,
                  input_shape=SHAPE, seed=SEED)
    return str(path)


def _trace():
    return generate_trace(LoadGenConfig(seed=SEED, n_requests=N_REQUESTS,
                                        rate_rps=5000.0, alpha=1.5,
                                        deadline_ms=60_000.0))


def _run(path, trace, traced, flight_dir=None):
    config = ServeConfig(start_method="spawn", shards=1, max_batch=16,
                         max_wait_ms=4.0, queue_capacity=2 * N_REQUESTS,
                         trace_requests=traced,
                         flight_dir=flight_dir)

    async def _go():
        async with ModelServer({"m": path}, config=config) as server:
            # time_scale=0: every arrival is immediate, so the run
            # measures pure request-path throughput with no open-loop
            # sleeps -- the quantity tracing could actually slow down
            return await run_loadgen(server, trace, time_scale=0.0)

    if traced:
        with recording() as recorder:
            report = asyncio.run(_go())
        assert len(recorder.by_name("serve.request")) == N_REQUESTS
        return report
    return asyncio.run(_go())


class TestServingObservabilityOverhead:
    def test_tracing_overhead_under_budget(self, artifact, tmp_path, request):
        trace = _trace()
        _run(artifact, trace, traced=True,
             flight_dir=str(tmp_path))  # warm-up: caches, BLAS init
        # adjacent off/on pairs, gated on the *best* pair: ambient CPU
        # contention in CI swings single runs by several percent in
        # both directions, so the gate asks whether the traced server
        # can match the baseline, not whether every sample does
        pairs = []
        for _ in range(REPEATS):
            off = _run(artifact, trace, traced=False)
            on = _run(artifact, trace, traced=True,
                      flight_dir=str(tmp_path))
            assert off.completed == N_REQUESTS, off.error_kinds
            assert on.completed == N_REQUESTS, on.error_kinds
            pairs.append((off.throughput_rps, on.throughput_rps))

        overheads = [1.0 - on / off for off, on in pairs]
        overhead = min(overheads)
        baseline, observed = max(p[0] for p in pairs), max(p[1] for p in pairs)
        print(f"\nserving observability overhead: "
              f"off {baseline:.0f} rps vs on {observed:.0f} rps, "
              f"best-pair overhead {max(0.0, overhead):.2%} "
              f"(pairs {[f'{o:.1%}' for o in overheads]}, "
              f"budget {OVERHEAD_BUDGET:.0%})")

        root = (os.environ.get("REPRO_BENCH_DIR")
                or str(request.config.rootpath))
        from repro.monitor import BenchStore

        store = BenchStore(root)
        metrics = {
            "baseline_rps": round(baseline, 2),
            "traced_rps": round(observed, 2),
            "tracing_overhead_frac": round(max(0.0, overhead), 4),
            "tracing_overhead_median_frac": round(
                max(0.0, sorted(overheads)[len(overheads) // 2]), 4),
        }
        try:
            store.append("serve_obs", metrics)
            for regression in store.check("serve_obs", metrics):
                print(f"[bench] regression: {regression}")
        except OSError as exc:  # read-only checkouts must not fail the gate
            print(f"[bench] could not write {store.path('serve_obs')}: {exc}")

        assert overhead < OVERHEAD_BUDGET, (
            f"per-request tracing costs {overhead:.1%} of serving "
            f"throughput (off {baseline:.0f} rps, on {observed:.0f} rps); "
            f"budget {OVERHEAD_BUDGET:.0%}")
