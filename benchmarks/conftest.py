"""Shared experiment cache for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures at CPU
scale (see DESIGN.md's experiment index).  Training is the expensive
part, so trained models are memoized per configuration; quantization
variants reload the cached state dict.

Scaled-down substrate: the paper trains ResNet-34 on CIFAR-10 with
lambda_c in {3, 5, 10}.  Here a narrow ResNet-8 trains on the synthetic
16x16 dataset, and because the correlated weight count l is ~1000x
smaller, the equivalent rate sweep is LAMBDA_SWEEP = (5, 20, 50) --
chosen so the uncompressed attack spans the same accuracy/quality
trade-off band as the paper's sweep.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np
import pytest

from repro.attacks.layerwise import (
    LayerwiseCorrelationPenalty,
    assign_payload,
    group_by_layer_ranges,
)
from repro.attacks.secret import SecretPayload
from repro.datasets import (
    SyntheticCifarConfig,
    SyntheticFacesConfig,
    make_synthetic_cifar,
    make_synthetic_faces,
    to_grayscale,
    train_test_split,
)
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.models import face_net_mini, resnet8_tiny
from repro.pipeline import QuantizationConfig, TrainingConfig
from repro.pipeline.baselines import quantize_and_finetune, train_benign
from repro.pipeline.evaluation import AttackEvaluation, evaluate_attack
from repro.pipeline.trainer import Trainer
from repro.preprocessing import select_encoding_targets

# The paper's lambda_c in {3, 5, 10} maps onto this sweep at our scale.
LAMBDA_SWEEP = (5.0, 20.0, 50.0)
PAPER_LAMBDAS = (3.0, 5.0, 10.0)
# The paper sweeps 8/6/4-bit on ResNet-34; the narrow CPU substrate has
# ~1000x fewer weights per layer, so quantization starts to bite one to
# two bits lower -- 4/3/2-bit spans the same qualitative regime.
BITS_SWEEP = (4, 3, 2)
PAPER_BITS = (8, 6, 4)
FACE_BITS = 3  # the paper's face experiment also uses 3-bit
EPOCHS = 15
GROUPS_RANGES = ((1, 2), (3, 4), (5, -1))  # three groups over 7 encodable layers


@dataclass
class TrainedAttack:
    """A trained attack model plus everything needed to evaluate it."""

    model: object
    groups: list
    payload: SecretPayload
    mean: np.ndarray
    std: np.ndarray
    penalty: LayerwiseCorrelationPenalty
    train_dataset: object
    test_dataset: object
    test_batch: np.ndarray
    base_state: Dict[str, np.ndarray]

    def restore(self) -> None:
        self.model.load_state_dict(self.base_state)

    def evaluate(self) -> AttackEvaluation:
        return evaluate_attack(
            self.model, self.test_batch, self.test_dataset.labels,
            groups=self.groups, mean=self.mean, std=self.std,
        )

    def quantize(self, bits: int, method: str, finetune_epochs: int = 2,
                 flip_override: Optional[bool] = None) -> AttackEvaluation:
        """Restore the trained weights, quantize, fine-tune, evaluate."""
        from repro.quantization.target_correlated import detect_flip
        self.restore()
        if flip_override is not None:
            flip = flip_override
        else:
            flip = False
            for group in self.groups:
                if group.payload is not None:
                    flip = detect_flip(group.weight_vector(), group.payload.secret_vector())
                    break
        encoding_names = [
            name for group in self.groups if group.payload is not None
            for name in group.param_names
        ]
        quantize_and_finetune(
            self.model,
            QuantizationConfig(bits=bits, method=method,
                               finetune_epochs=finetune_epochs, finetune_lr=0.02),
            self.train_dataset,
            TrainingConfig(epochs=1, batch_size=32, lr=0.08),
            self.mean, self.std,
            target_images=self.payload.images,
            penalty=self.penalty,
            flip=flip,
            encoding_names=encoding_names,
        )
        return self.evaluate()


class ExperimentCache:
    """Memoized trainings shared by all benchmark files."""

    def __init__(self) -> None:
        self._attacks: Dict[Tuple, TrainedAttack] = {}
        self._benign: Dict[str, object] = {}
        rgb = make_synthetic_cifar(
            SyntheticCifarConfig(num_images=240, num_classes=6, image_size=16, seed=3)
        )
        self.datasets = {"rgb": train_test_split(rgb, 0.2, seed=0),
                         "gray": train_test_split(to_grayscale(rgb), 0.2, seed=0)}

    # ---------------------------------------------------------------- util
    def _build_model(self, color: str):
        channels = 3 if color == "rgb" else 1
        return resnet8_tiny(num_classes=6, in_channels=channels, width=8,
                            rng=np.random.default_rng(7))

    def attack(self, color: str, rates: Tuple[float, float, float],
               preprocess: bool) -> TrainedAttack:
        """Train (or fetch) a layer-wise correlation attack model.

        ``preprocess=False`` uses the whole std spectrum (the original
        attack's random draw); ``preprocess=True`` applies Sec. IV-A.
        """
        key = (color, rates, preprocess)
        if key in self._attacks:
            self._attacks[key].restore()
            return self._attacks[key]

        train, test = self.datasets[color]
        train_batch = images_to_batch(train.images)
        train_batch, mean, std = normalize_batch(train_batch)
        test_batch = images_to_batch(test.images)
        test_batch, _, _ = normalize_batch(test_batch, mean, std)

        model = self._build_model(color)
        groups = group_by_layer_ranges(model, GROUPS_RANGES, rates)
        pixels = train.pixels_per_image
        capacity = sum(g.capacity(pixels) for g in groups if g.rate > 0.0)
        # Grayscale images are 3x smaller, so full capacity would encode
        # ~75 images and saturate this narrow model (the paper's models
        # are huge relative to their payloads); cap the payload instead.
        if color == "gray":
            capacity = max(1, capacity // 2)
        if preprocess:
            selection = select_encoding_targets(train, capacity, window=8.0, seed=0)
            indices = selection.target_indices
        else:
            rng = np.random.default_rng(0)
            count = min(capacity, len(train))
            indices = np.sort(rng.choice(len(train), size=count, replace=False))
        payload_all = SecretPayload.from_dataset(train, indices)
        assigned = assign_payload(groups, payload_all)
        payload = payload_all.take(assigned)
        penalty = LayerwiseCorrelationPenalty(groups)
        trainer = Trainer(model, train_batch, train.labels,
                          TrainingConfig(epochs=EPOCHS, batch_size=32, lr=0.08, seed=0),
                          penalty=penalty)
        trainer.train()
        trained = TrainedAttack(
            model=model, groups=groups, payload=payload, mean=mean, std=std,
            penalty=penalty, train_dataset=train, test_dataset=test,
            test_batch=test_batch, base_state=model.state_dict(),
        )
        self._attacks[key] = trained
        return trained

    def original_attack(self, color: str, rate: float) -> TrainedAttack:
        """Uniform rate over every group, no pre-processing (Song et al.)."""
        return self.attack(color, (rate, rate, rate), preprocess=False)

    def our_attack(self, color: str, rate: float) -> TrainedAttack:
        """The paper's flow: zero-rate early groups + std pre-processing."""
        return self.attack(color, (0.0, 0.0, rate), preprocess=True)

    def benign(self, color: str):
        if color not in self._benign:
            train, test = self.datasets[color]
            self._benign[color] = train_benign(
                train, test, lambda: self._build_model(color),
                TrainingConfig(epochs=EPOCHS, batch_size=32, lr=0.08, seed=0),
            )
        return self._benign[color]


@pytest.fixture(scope="session")
def cache():
    return ExperimentCache()


@dataclass
class FaceExperiment:
    attack: TrainedAttack
    uncompressed: AttackEvaluation


@pytest.fixture(scope="session")
def face_experiment():
    """Trained face-recognition attack (Table IV / Fig. 5 substrate)."""
    faces = make_synthetic_faces(
        SyntheticFacesConfig(num_identities=12, images_per_identity=8,
                             image_size=24, seed=5)
    )
    train, test = train_test_split(faces, test_fraction=0.25, seed=0)
    train_batch = images_to_batch(train.images)
    train_batch, mean, std = normalize_batch(train_batch)
    test_batch = images_to_batch(test.images)
    test_batch, _, _ = normalize_batch(test_batch, mean, std)

    model = face_net_mini(num_identities=12, width=8, rng=np.random.default_rng(3))
    groups = group_by_layer_ranges(model, ((1, 2), (3, 5), (6, -1)), (0.0, 0.0, 20.0))
    pixels = train.pixels_per_image
    capacity = sum(g.capacity(pixels) for g in groups if g.rate > 0.0)
    # Encode 60% of capacity: the paper's face model is huge relative to
    # its payload, so saturating this small model would cost evasiveness.
    capacity = max(1, int(capacity * 0.6))
    selection = select_encoding_targets(train, capacity, window=10.0, seed=0)
    payload_all = SecretPayload.from_dataset(train, selection.target_indices)
    assigned = assign_payload(groups, payload_all)
    payload = payload_all.take(assigned)
    penalty = LayerwiseCorrelationPenalty(groups)
    Trainer(model, train_batch, train.labels,
            TrainingConfig(epochs=25, batch_size=16, lr=0.05, seed=0),
            penalty=penalty).train()
    trained = TrainedAttack(
        model=model, groups=groups, payload=payload, mean=mean, std=std,
        penalty=penalty, train_dataset=train, test_dataset=test,
        test_batch=test_batch, base_state=model.state_dict(),
    )
    return FaceExperiment(attack=trained, uncompressed=trained.evaluate())


def run_once(benchmark, fn):
    """Measure ``fn`` exactly once (experiments are not micro-benchmarks)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# --------------------------------------------------------------------------
# Benchmark trajectory: every gated benchmark session appends its per-test
# wall times (plus any metrics tests push via the ``bench_metrics`` fixture)
# to BENCH_monitor.json through repro.monitor.bench.BenchStore, so
# ``repro report --bench monitor`` can show drift across sessions.

_BENCH_DURATIONS: Dict[str, float] = {}
_BENCH_EXTRA: Dict[str, float] = {}


@pytest.fixture(scope="session")
def bench_metrics() -> Dict[str, float]:
    """Named metrics merged into this session's BENCH_monitor.json entry."""
    return _BENCH_EXTRA


def _metric_name(nodeid: str) -> str:
    """``benchmarks/test_x.py::test_y[p]`` -> ``y_p_s`` (lower-better)."""
    test = nodeid.rsplit("::", 1)[-1]
    if test.startswith("test_"):
        test = test[len("test_"):]
    return re.sub(r"[^A-Za-z0-9]+", "_", test).strip("_") + "_s"


def pytest_runtest_logreport(report):
    if (report.when == "call" and report.passed
            and report.nodeid.startswith("benchmarks")):
        _BENCH_DURATIONS[_metric_name(report.nodeid)] = report.duration


def pytest_sessionfinish(session, exitstatus):
    metrics = {**_BENCH_DURATIONS, **_BENCH_EXTRA}
    if not metrics:
        return
    from repro.monitor import BenchStore

    root = os.environ.get("REPRO_BENCH_DIR") or str(session.config.rootpath)
    store = BenchStore(root)
    try:
        store.append("monitor", metrics, exitstatus=int(exitstatus))
    except OSError as exc:
        print(f"\n[bench] could not write {store.path('monitor')}: {exc}")
        return
    print(f"\n[bench] {len(metrics)} metrics appended to "
          f"{store.path('monitor')}")
    regressions = store.check("monitor", metrics)
    for regression in regressions:
        print(f"[bench] regression: {regression}")
