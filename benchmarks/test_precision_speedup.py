"""Precision-policy acceptance gates: dtype speedup and tape memory.

Two bars for the float32 compute policy plus the autograd tape memory
planner, on the same fixed-seed training epoch the backend gate uses:

* **Speed**: a float32 epoch on the fast backend (the shipping
  configuration) must be at least **1.25x** faster than the float64
  fast-backend epoch -- the PR-3 baseline this PR starts from.
* **Memory**: the tape planner's early release must cut the peak of
  live saved-activation bytes by at least **30%** versus the unplanned
  tape (every saved array pinned until the walk ends), measured by the
  planner's own byte accounting during a real epoch.

The third gate -- golden fixed-seed attack metrics staying inside their
bands at float32 -- is enforced by
``tests/integration/test_golden_pipeline.py``, which runs under the
float32 default policy.

Timing halves are marked ``slow`` (deselect with ``-m "not slow"``)
and skip on single-core machines, like the backend speedup gate.  Each
timing session appends its numbers to ``BENCH_precision.json`` via the
PR-4 BenchStore so drift across sessions is visible to
``repro report``.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import precision
from repro.autograd import last_tape_stats
from repro.backend import fast
from repro.models import resnet8_tiny
from repro.pipeline.config import TrainingConfig
from repro.pipeline.trainer import Trainer

BATCH_SIZE = 64
SEED = 123


def make_trainer(dtype, backend="fast"):
    rng = np.random.default_rng(SEED)
    inputs = rng.normal(size=(192, 3, 16, 16))
    labels = rng.integers(0, 6, size=192)
    with precision.use_dtype(dtype):
        # parameters materialize at the policy dtype; the trainer then
        # scopes the same policy around every epoch
        model = resnet8_tiny(num_classes=6, in_channels=3, width=8,
                             rng=np.random.default_rng(SEED + 1))
    config = TrainingConfig(epochs=1, batch_size=BATCH_SIZE, lr=0.05, seed=SEED)
    return Trainer(model, inputs, labels, config, backend=backend, dtype=dtype)


def epoch_seconds(dtype, repeats=3):
    """Best-of-``repeats`` wall time of one training epoch at ``dtype``."""
    trainer = make_trainer(dtype)
    trainer.train_epoch()  # warm-up: index caches, pools, BLAS init
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        trainer.train_epoch()
        best = min(best, time.perf_counter() - start)
    return best


class TestTapePlanner:
    def test_peak_saved_bytes_cut_by_30_percent(self):
        trainer = make_trainer("float32")
        trainer.train_epoch()
        stats = last_tape_stats()
        assert stats is not None and stats.functions > 0
        print(f"\ntape planner: peak {stats.peak_live_bytes / 2**20:.2f} MiB "
              f"planned vs {stats.unplanned_peak_bytes / 2**20:.2f} MiB "
              f"unplanned ({stats.peak_reduction:.1%} reduction, "
              f"{stats.recycled_buffers} buffers recycled)")
        assert stats.peak_reduction >= 0.30

    def test_planner_books_balance(self):
        trainer = make_trainer("float32")
        trainer.train_epoch()
        stats = last_tape_stats()
        assert stats.released_bytes == stats.total_saved_bytes
        assert stats.peak_live_bytes <= stats.unplanned_peak_bytes

    def test_float32_training_loss_tracks_float64(self):
        # same seeds, same data: the dtype must only perturb the loss at
        # single-precision rounding scale, never change the trajectory
        loss32 = make_trainer("float32", backend="reference").train_epoch()
        loss64 = make_trainer("float64", backend="reference").train_epoch()
        np.testing.assert_allclose(loss32, loss64, rtol=1e-3)


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="wall-clock gate needs 2+ cores")
class TestPrecisionSpeedup:
    def test_float32_epoch_at_least_1_25x_over_float64(self, request):
        fast.clear_caches()
        float64_s = epoch_seconds("float64")
        fast.clear_caches()
        float32_s = epoch_seconds("float32")
        speedup = float64_s / float32_s
        stats = last_tape_stats()
        print(f"\ntraining epoch (fast backend): float64 "
              f"{float64_s * 1e3:.1f} ms, float32 {float32_s * 1e3:.1f} ms, "
              f"speedup {speedup:.2f}x")
        root = os.environ.get("REPRO_BENCH_DIR") or str(request.config.rootpath)
        from repro.monitor import BenchStore

        try:
            BenchStore(root).append("precision", {
                "epoch_float64_s": round(float64_s, 6),
                "epoch_float32_s": round(float32_s, 6),
                "speedup_float32": round(speedup, 4),
                "tape_peak_reduction": round(stats.peak_reduction, 4),
            })
        except OSError as exc:  # read-only checkouts must not fail the gate
            print(f"[bench] could not write BENCH_precision.json: {exc}")
        assert speedup >= 1.25
