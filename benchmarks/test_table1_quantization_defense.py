"""Table I -- weighted-entropy quantization as a defense.

Paper: the original correlated value encoding attack (uniform rate) is
quantized with WEQ at 8/6/4 bits; accuracy and the recognizable-image
count collapse as the bit width drops, and raising lambda_c at 4-bit
trades accuracy for recognizable images.

Paper numbers (ResNet-34 / CIFAR-10, 151 encoded RGB images):
    lambda=3:  8b 88 imgs / 88.79%,  6b 82 / 88.16%,  4b 58 / 83.04%
    lambda=5:  4b 59 / 80.35%
    lambda=10: 4b 75 / 75.46%
"""

import pytest

from benchmarks.conftest import BITS_SWEEP, LAMBDA_SWEEP, PAPER_BITS, PAPER_LAMBDAS, run_once
from repro.pipeline.reporting import format_table, percent


@pytest.mark.benchmark(group="table1")
def test_table1_weq_defense(cache, benchmark):
    lam_low, lam_mid, lam_high = LAMBDA_SWEEP
    lowest_bits = BITS_SWEEP[-1]

    def experiment():
        rows = []
        # lambda low across the bit sweep (paper: 8/6/4 -> ours: 4/3/2).
        attack = cache.original_attack("rgb", lam_low)
        baseline = attack.evaluate()
        for bits in BITS_SWEEP:
            ev = attack.quantize(bits, "weighted_entropy")
            rows.append((lam_low, bits, ev))
        # lambda mid/high at the lowest bit width.
        for lam in (lam_mid, lam_high):
            attack = cache.original_attack("rgb", lam)
            rows.append((lam, lowest_bits, attack.quantize(lowest_bits, "weighted_entropy")))
        return baseline, rows

    baseline, rows = run_once(benchmark, experiment)

    table_rows = [
        [f"{lam:g}", bits, ev.recognized_count, f"{ev.encoded_images}",
         percent(ev.accuracy)]
        for lam, bits, ev in rows
    ]
    print()
    print(format_table(
        ["lambda", "bits", "recognizable", "encoded", "accuracy"], table_rows,
        title=(f"Table I: original attack + WEQ (paper lambdas {PAPER_LAMBDAS} -> "
               f"scaled {LAMBDA_SWEEP}; paper bits {PAPER_BITS} -> scaled {BITS_SWEEP})"),
    ))
    print(f"uncompressed attack (lambda={LAMBDA_SWEEP[0]:g}): "
          f"{baseline.recognized_count}/{baseline.encoded_images} recognizable, "
          f"accuracy {percent(baseline.accuracy)}")

    by_key = {(lam, bits): ev for lam, bits, ev in rows}
    low = LAMBDA_SWEEP[0]
    high_bits, _, low_bits = BITS_SWEEP
    # Claim 1: at fixed lambda, dropping the bit width hurts accuracy
    # and/or recognizability (the defense effect).
    assert by_key[(low, low_bits)].accuracy <= by_key[(low, high_bits)].accuracy + 0.02
    defense_bites = (
        by_key[(low, low_bits)].accuracy < baseline.accuracy - 0.05
        or by_key[(low, low_bits)].recognized_count < baseline.recognized_count
    )
    assert defense_bites, "low-bit WEQ failed to degrade the attack"
    # Claim 2: lowest-bit WEQ accuracy never beats the uncompressed attack.
    for lam in LAMBDA_SWEEP:
        assert by_key[(lam, low_bits)].accuracy <= baseline.accuracy + 0.02
