"""Monitor probe-overhead gate.

Times the same attack-training epoch with and without the full default
probe suite attached (correlation, drift, decode, grad/update, memory,
throughput, kernel share) and asserts the probed epoch stays under the
overhead budget.  The per-epoch numbers and the overhead fraction are
pushed into the session's BENCH_monitor.json entry so the trend is
tracked across sessions (``repro report --bench monitor``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.attacks.layerwise import (
    LayerwiseCorrelationPenalty,
    assign_payload,
    group_by_layer_ranges,
)
from repro.attacks.secret import SecretPayload
from repro.datasets import SyntheticCifarConfig, make_synthetic_cifar
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.models import resnet8_tiny
from repro.monitor import Monitor, default_probes
from repro.pipeline import TrainingConfig
from repro.pipeline.trainer import Trainer

pytestmark = pytest.mark.slow

# Probed epoch may cost at most this much extra.  The budget is
# relative to the bare epoch: float32 compute plus the tape planner
# made training ~1.5x faster while the probe suite stays pinned to
# float64 metrics by design (repro.precision.METRICS_DTYPE), so the
# same absolute probe cost is a larger fraction than under the old
# float64 compute path (where the budget was 7%).  Absolute probe cost
# drift is still caught by the BENCH_monitor.json trend comparator.
OVERHEAD_BUDGET = 0.15


def _attack_setup():
    data = make_synthetic_cifar(
        SyntheticCifarConfig(num_images=160, num_classes=4, image_size=16,
                             seed=9))
    batch = images_to_batch(data.images)
    batch, mean, std = normalize_batch(batch)
    model = resnet8_tiny(num_classes=4, in_channels=3, width=8,
                         rng=np.random.default_rng(9))
    groups = group_by_layer_ranges(model, ((1, 2), (3, 4), (5, -1)),
                                   (0.0, 0.0, 20.0))
    pixels = data.pixels_per_image
    capacity = sum(g.capacity(pixels) for g in groups if g.rate > 0.0)
    payload_all = SecretPayload.from_dataset(
        data, np.arange(min(capacity, len(data))))
    payload = payload_all.take(assign_payload(groups, payload_all))
    penalty = LayerwiseCorrelationPenalty(groups)
    return model, batch, data.labels, groups, payload, mean, std, penalty


def _best_epoch_seconds(trainer: Trainer, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        trainer.train_epoch()
        best = min(best, time.perf_counter() - start)
    return best


def test_monitor_probe_overhead(bench_metrics):
    model, batch, labels, groups, payload, mean, std, penalty = _attack_setup()
    config = TrainingConfig(epochs=1, batch_size=32, lr=0.05, seed=0)

    bare = Trainer(model, batch, labels, config, penalty=penalty)
    bare.train_epoch()  # warm-up: first-touch allocations stay untimed
    bare_s = _best_epoch_seconds(bare)

    monitor = Monitor(default_probes(decode_images=2)).bind(
        groups=groups, payload=payload, mean=mean, std=std)
    probed = Trainer(model, batch, labels, config, penalty=penalty,
                     probes=monitor)
    probed_s = _best_epoch_seconds(probed)

    overhead = probed_s / bare_s - 1.0
    bench_metrics["monitor_bare_epoch_s"] = bare_s
    bench_metrics["monitor_probed_epoch_s"] = probed_s
    bench_metrics["monitor_overhead_frac"] = max(0.0, overhead)

    assert monitor.probe_records(scope="epoch"), "probes never fired"
    assert not monitor.errors(), f"probe errors: {monitor.errors()}"
    assert overhead < OVERHEAD_BUDGET, (
        f"probe suite costs {overhead:.1%} per epoch "
        f"(bare {bare_s * 1e3:.1f} ms, probed {probed_s * 1e3:.1f} ms); "
        f"budget {OVERHEAD_BUDGET:.0%}")
