"""Extension: the data holder's pre-release audit and sanitization.

Measures what the paper leaves to future work:

* detection -- the correlation scan flags the attacked model and clears
  the benign one (a perfect separation at this scale);
* sanitization -- noise injection sweeps out the payload at a
  controllable accuracy cost.
"""

import numpy as np
import pytest

from benchmarks.conftest import LAMBDA_SWEEP, run_once
from repro.defenses import detect_attack, inject_noise
from repro.metrics import evaluate_accuracy
from repro.pipeline.evaluation import evaluate_attack
from repro.pipeline.reporting import format_table, percent

NOISE_SWEEP = (0.0, 0.1, 0.3, 0.6)


@pytest.mark.benchmark(group="ext-defense")
def test_audit_separates_attacked_from_benign(cache, benchmark):
    def experiment():
        attack = cache.our_attack("rgb", LAMBDA_SWEEP[1])
        benign = cache.benign("rgb")
        train, _ = cache.datasets["rgb"]
        attacked_report = detect_attack(attack.model, train,
                                        reference=benign.model, max_images=48)
        benign_report = detect_attack(benign.model, train, max_images=48)
        return attacked_report, benign_report

    attacked_report, benign_report = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["model", "max |corr|", "suspicious images", "flagged"],
        [["attacked", f"{attacked_report.max_abs_correlation:.3f}",
          attacked_report.suspicious_images, attacked_report.flagged],
         ["benign", f"{benign_report.max_abs_correlation:.3f}",
          benign_report.suspicious_images, benign_report.flagged]],
        title="Extension: pre-release audit",
    ))
    assert attacked_report.flagged
    assert not benign_report.flagged
    assert attacked_report.max_abs_correlation > benign_report.max_abs_correlation


@pytest.mark.benchmark(group="ext-defense")
def test_noise_sanitization_tradeoff(cache, benchmark):
    def experiment():
        attack = cache.our_attack("rgb", LAMBDA_SWEEP[1])
        results = {}
        for fraction in NOISE_SWEEP:
            attack.restore()
            inject_noise(attack.model, fraction, seed=0)
            results[fraction] = evaluate_attack(
                attack.model, attack.test_batch, attack.test_dataset.labels,
                groups=attack.groups, mean=attack.mean, std=attack.std,
            )
        attack.restore()
        return results

    results = run_once(benchmark, experiment)

    rows = [[f"{f:.0%}", percent(ev.accuracy), f"{ev.mean_mape:.1f}",
             f"{ev.recognized_count}/{ev.encoded_images}"]
            for f, ev in results.items()]
    print()
    print(format_table(["noise", "accuracy", "MAPE", "recognizable"],
                       rows, title="Extension: noise-injection sanitization"))

    clean = results[0.0]
    heavy = results[NOISE_SWEEP[-1]]
    # Heavy noise corrupts the payload ...
    assert heavy.mean_mape > clean.mean_mape + 3.0
    # ... monotonically in the sweep ...
    mapes = [results[f].mean_mape for f in NOISE_SWEEP]
    assert all(b >= a - 1.0 for a, b in zip(mapes, mapes[1:]))
    # ... while moderate noise keeps accuracy within a usable band.
    assert results[0.1].accuracy > clean.accuracy - 0.1
