"""Graph-compiler acceptance gate: compiled replay must pay for itself.

The graph compiler's whole reason to exist is the per-step dispatch tax
of the attack-training loop: a tiny model, tiny batches, and ~60 kernel
calls of Python machinery per step (Function.apply, Tensor wrapping,
the backward's topological walk).  This gate trains the same
fixed-seed encoding-attack workload twice:

* **eager**: the fast backend, step-by-step autograd -- the shipping
  pre-compiler configuration;
* **compiled**: the compiled backend with ``compile=True`` -- one warm
  up capture per batch signature, replays after that.

Same data, same seeds, same model init, same float32 training
precision.  The workload is deliberately in the dispatch-bound regime
the compiler targets (batch 4 of 8x8 images through the demo-sized
SimpleCNN, the regime where per-step Python overhead rivals the numpy
work); the kernel-bound regime is ``test_backend_speedup.py``'s
territory.  Compiled must finish an epoch at least **2x** faster
(ROADMAP targets 3x; gated conservatively) with losses within rtol
1e-5 of eager -- today they are bit-identical, which
``tests/graph/test_trainer_compile.py`` pins exactly; this gate only
enforces the looser contract so a future allclose-grade kernel cannot
silently change training results beyond tolerance.  Results land in
``BENCH_graph.json`` via the BenchStore so drift across sessions is
visible to ``repro report``.

Marked ``slow`` (deselect with ``-m "not slow"``) and skipped on
single-core machines where wall-clock ratios are too noisy to gate on.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro import backend
from repro import precision
from repro.attacks.correlated import CorrelationPenalty
from repro.models.simple_cnn import SimpleCNN
from repro.pipeline.config import TrainingConfig
from repro.pipeline.trainer import Trainer

SEED = 123
IMAGE_SIZE = 8          # the demo-artifact input size
BATCH_SIZE = 4          # dispatch-bound on purpose; see module docstring
N_IMAGES = 192
REPEATS = 5


def make_trainer(compile_flag: bool) -> Trainer:
    rng = np.random.default_rng(SEED)
    inputs = rng.standard_normal(
        (N_IMAGES, 3, IMAGE_SIZE, IMAGE_SIZE)
    ).astype(np.float32)
    labels = rng.integers(0, 6, size=N_IMAGES)
    with precision.use_dtype("float32"):
        model = SimpleCNN(num_classes=6, width=8, image_size=IMAGE_SIZE,
                          rng=np.random.default_rng(SEED + 1))
    penalty = CorrelationPenalty(
        [model.parameters()[0]],
        rng.standard_normal(64).astype(np.float32), rate=0.1,
    )
    config = TrainingConfig(epochs=1, batch_size=BATCH_SIZE, lr=0.01,
                            seed=SEED)
    return Trainer(model, inputs, labels, config, penalty=penalty,
                   dtype="float32", compile=compile_flag)


def epoch_seconds(trainer: Trainer, backend_name: str) -> float:
    """Best-of-``REPEATS`` wall time of one training epoch."""
    with backend.use_backend(backend_name):
        trainer.train_epoch()  # warm-up: capture, index caches, BLAS init
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            trainer.train_epoch()
            best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.slow
@pytest.mark.skipif((os.cpu_count() or 1) < 2,
                    reason="wall-clock gate needs 2+ cores")
class TestGraphSpeedupGate:
    def test_compiled_epoch_at_least_2x_over_eager_fast(self, request):
        eager = make_trainer(False)
        compiled = make_trainer(True)
        eager_s = epoch_seconds(eager, "fast")
        compiled_s = epoch_seconds(compiled, "compiled")

        stats = compiled.compile_stats
        assert stats["captures"] >= 1, "no program was ever captured"
        assert stats["replays"] > 0, "compiled epochs never replayed"
        assert stats["fallbacks"] == 0, "replays fell back to eager"

        # same seeds, same shuffle order: epoch loss traces must agree
        # within the compiler's numeric contract (today: bit-identical)
        np.testing.assert_allclose(
            np.asarray(compiled.history.task_loss),
            np.asarray(eager.history.task_loss), rtol=1e-5,
        )
        np.testing.assert_allclose(
            np.asarray(compiled.history.penalty),
            np.asarray(eager.history.penalty), rtol=1e-5,
        )

        speedup = eager_s / compiled_s
        print(f"\ngraph speedup: eager fast {eager_s * 1e3:.2f} ms/epoch vs "
              f"compiled {compiled_s * 1e3:.2f} ms/epoch -> {speedup:.2f}x "
              f"(captures {stats['captures']}, replays {stats['replays']})")

        root = (os.environ.get("REPRO_BENCH_DIR")
                or str(request.config.rootpath))
        from repro.monitor import BenchStore

        store = BenchStore(root)
        metrics = {
            "eager_ms": round(eager_s * 1e3, 3),
            "compiled_ms": round(compiled_s * 1e3, 3),
            "speedup": round(speedup, 3),
            "captures": stats["captures"],
            "replays": stats["replays"],
            "programs": stats["programs"],
        }
        try:
            store.append("graph", metrics)
            for regression in store.check("graph", metrics):
                print(f"[bench] regression: {regression}")
        except OSError as exc:  # read-only checkouts must not fail the gate
            print(f"[bench] could not write {store.path('graph')}: {exc}")

        assert speedup >= 2.0, \
            f"compiled speedup {speedup:.2f}x is below the 2x gate"
