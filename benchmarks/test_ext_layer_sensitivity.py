"""Extension: measured layer-sensitivity profile (Sec. IV-B's premise).

The paper asserts that "layers that are closer to the input, especially
convolution layers for feature extraction, carry more importance than
others in terms of accuracy" and picks its groups by hand.  This bench
measures the premise directly -- quantize each encodable layer to 1 bit
in isolation and record the accuracy drop -- and shows that
:func:`repro.quantization.suggest_groups` recovers a paper-style
grouping (small sensitive early groups, one large insensitive deep
group) without any hand-tuning.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.pipeline.reporting import format_table
from repro.quantization import quantization_sensitivity, suggest_groups


@pytest.mark.benchmark(group="ext-sensitivity")
def test_layer_sensitivity_profile(cache, benchmark):
    def experiment():
        benign = cache.benign("rgb")
        train, _ = cache.datasets["rgb"]
        from repro.datasets.transforms import images_to_batch, normalize_batch
        batch = images_to_batch(train.images)
        batch, _, _ = normalize_batch(batch, benign.mean, benign.std)
        profile = quantization_sensitivity(benign.model, batch, train.labels, bits=1)
        ranges = suggest_groups(profile, num_groups=3)
        return profile, ranges

    profile, ranges = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["layer", "1-bit accuracy drop"],
        [[entry.name, f"{entry.accuracy_drop:+.3f}"] for entry in profile],
        title="Extension: per-layer quantization sensitivity",
    ))
    print(f"suggested groups: {ranges}")

    drops = np.array([max(entry.accuracy_drop, 0.0) for entry in profile])
    # The paper's premise, stated as the grouping exploits it: per-layer
    # sensitivity *density* falls from the first suggested group to the
    # last -- the deep group is the safest place to encode.  (Raw
    # front-half vs back-half sums can be skewed by tiny 1x1 shortcut
    # convs, which are sensitive but sit mid-network.)
    densities = [
        drops[start - 1:end].mean() for start, end in ranges
    ]
    assert densities[0] >= densities[-1]
    # The derived grouping is paper-shaped: the last (encoding) group is
    # the largest, and groups are contiguous and complete.
    sizes = [end - start + 1 for start, end in ranges]
    assert sizes[-1] == max(sizes)
    assert ranges[0][0] == 1 and ranges[-1][1] == len(profile)
