"""Table III -- the full CIFAR comparison.

Paper: for each lambda in the sweep and for gray + RGB data, compare the
original uncompressed attack against our quantized flow at 8/6/4 bits on
MAPE, accuracy and recognized-image count.  Key claims:

* our 8-6-4 bit models keep accuracy within ~1-2 points of the
  uncompressed attack model (often better at 8-bit);
* our MAPE beats the original attack's at every rate (pre-processing +
  layer-wise rates improve encoding quality);
* recognized counts stay comparable to the uncompressed attack.
"""

import pytest

from benchmarks.conftest import BITS_SWEEP as BITS
from benchmarks.conftest import LAMBDA_SWEEP, run_once
from repro.pipeline.reporting import format_table, percent


@pytest.mark.benchmark(group="table3")
@pytest.mark.parametrize("color", ["gray", "rgb"])
def test_table3_full_comparison(cache, benchmark, color):
    def experiment():
        results = {}
        for lam in LAMBDA_SWEEP:
            original = cache.original_attack(color, lam).evaluate()
            ours = cache.our_attack(color, lam)
            ours_uncompressed = ours.evaluate()
            quantized = {bits: ours.quantize(bits, "target_correlated") for bits in BITS}
            results[lam] = {
                "original": original,
                "ours_uncompressed": ours_uncompressed,
                "quantized": quantized,
            }
        return results

    results = run_once(benchmark, experiment)

    rows = []
    for lam, entry in results.items():
        original = entry["original"]
        rows.append([f"{lam:g}", "original (uncompressed)", f"{original.mean_mape:.2f}",
                     percent(original.accuracy),
                     f"{original.recognized_count}/{original.encoded_images}"])
        for bits in BITS:
            ev = entry["quantized"][bits]
            rows.append([f"{lam:g}", f"ours {bits}-bit", f"{ev.mean_mape:.2f}",
                         percent(ev.accuracy),
                         f"{ev.recognized_count}/{ev.encoded_images}"])
    print()
    print(format_table(["lambda", "model", "MAPE", "accuracy", "recognized"],
                       rows, title=f"Table III ({color.upper()})"))

    for lam, entry in results.items():
        original = entry["original"]
        uncompressed = entry["ours_uncompressed"]
        # Accuracy stays near the uncompressed attack model at the two
        # upper bit widths (the paper's sweep likewise stops where
        # quantization starts to bite -- its own 4-bit rows drop a little).
        for bits in BITS[:2]:
            ev = entry["quantized"][bits]
            assert ev.accuracy > uncompressed.accuracy - 0.12, (
                f"{color} lambda={lam} {bits}b: accuracy collapsed"
            )
        # Encoding-quality claims: our flow's highest-bit model stays in
        # the original attack's MAPE band (margin covers the gray arm's
        # min-max decode noise at this scale) and stays in its
        # recognizability band.
        best = entry["quantized"][BITS[0]]
        assert best.mean_mape < original.mean_mape + 4.0, (
            f"{color} lambda={lam}: our {BITS[0]}-bit MAPE did not match the original attack"
        )
        assert best.recognized_percent >= original.recognized_percent - 20.0, (
            f"{color} lambda={lam}: our {BITS[0]}-bit recognizability collapsed"
        )
    # The paper's "sometimes even greater when the correlation rate is
    # small": at the low rate our quantized model matches or beats the
    # original uncompressed attack on recognizability.
    low = LAMBDA_SWEEP[0]
    assert (results[low]["quantized"][BITS[0]].recognized_percent
            >= results[low]["original"].recognized_percent - 2.0)
