"""Extension: released-model storage accounting across compressions.

Deep compression's pipeline is prune -> quantize -> Huffman.  This bench
reports the storage cost of the released attack model under each stage
combination and verifies the arithmetic relationships (each stage can
only shrink the coded part), including that the target-correlated
quantizer's skewed cluster occupancies Huffman-code at least as well as
a benign quantizer's.
"""

import pytest

from benchmarks.conftest import BITS_SWEEP, LAMBDA_SWEEP, run_once
from repro.pipeline.reporting import format_table
from repro.quantization import (
    MagnitudePruner,
    huffman_model_bytes,
    pruned_model_bytes,
    quantized_model_bytes,
)

BITS = BITS_SWEEP[0]


@pytest.mark.benchmark(group="ext-storage")
def test_storage_accounting(cache, benchmark):
    def experiment():
        attack = cache.our_attack("rgb", LAMBDA_SWEEP[1])
        attack.restore()
        model = attack.model
        dense_bytes = sum(p.size for p in model.parameters()) * 4

        from repro.pipeline.baselines import make_quantizer
        from repro.pipeline.config import QuantizationConfig

        sizes = {"dense float32": dense_bytes}
        huffman = {}
        for method in ("weighted_entropy", "target_correlated"):
            attack.restore()
            quantizer = make_quantizer(
                QuantizationConfig(bits=BITS, method=method),
                target_images=attack.payload.images,
            )
            result = quantizer.quantize_model(model)
            sizes[f"{method} {BITS}b"] = quantized_model_bytes(model, result)
            huffman[method] = huffman_model_bytes(result)
            sizes[f"{method} {BITS}b + huffman(coded part)"] = huffman[method]

        attack.restore()
        pruner = MagnitudePruner(0.9, scope="global")
        sizes["pruned 90% (sparse storage)"] = pruned_model_bytes(
            model, pruner.prune_model(model))
        attack.restore()
        return sizes, huffman

    sizes, huffman = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["representation", "bytes"],
        [[name, size] for name, size in sizes.items()],
        title="Extension: released-model storage",
    ))

    dense = sizes["dense float32"]
    for method in ("weighted_entropy", "target_correlated"):
        assert sizes[f"{method} {BITS}b"] < dense
    # Huffman-coded assignments never exceed the fixed-width coded part.
    assert huffman["target_correlated"] <= huffman["weighted_entropy"] * 1.3
    assert sizes["pruned 90% (sparse storage)"] < dense
