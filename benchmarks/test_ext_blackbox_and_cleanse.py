"""Extension: the black-box capacity-abuse attack + retrain cleansing.

Two forward-looking experiments around the paper's threat model:

* **capacity abuse** -- when the adversary cannot read weights at all,
  label-encoded synthetic queries still leak data through the released
  model's *decision function*, and (unlike LSB) survive quantization;
* **retrain cleansing** -- a data holder who fine-tunes on clean data
  with weight decay before releasing erodes the correlation payload at
  a measurable accuracy cost.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.attacks import build_query_set, extract_bits, poison_training_set
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.defenses import retrain_cleanse
from repro.models import resnet8_tiny
from repro.pipeline import QuantizationConfig, TrainingConfig
from repro.pipeline.baselines import quantize_and_finetune
from repro.pipeline.evaluation import evaluate_attack
from repro.pipeline.reporting import format_table, percent
from repro.pipeline.trainer import Trainer


@pytest.mark.benchmark(group="ext-blackbox")
def test_capacity_abuse_attack(cache, benchmark):
    def experiment():
        train, test = cache.datasets["rgb"]
        image_shape = (3, train.image_shape[0], train.image_shape[1])
        secret = np.random.default_rng(5).integers(0, 2, 120).astype(np.uint8)
        queries = build_query_set(secret, image_shape, train.num_classes, seed=17)

        train_batch = images_to_batch(train.images)
        train_batch, mean, std = normalize_batch(train_batch)
        test_batch = images_to_batch(test.images)
        test_batch, _, _ = normalize_batch(test_batch, mean, std)
        # The malicious code normalises the queries with the same stats.
        normalized_queries = build_query_set(secret, image_shape,
                                             train.num_classes, seed=17)
        poisoned_inputs, poisoned_labels = poison_training_set(
            train_batch, train.labels,
            type(queries)(
                inputs=(normalized_queries.inputs - mean.reshape(1, -1, 1, 1))
                / std.reshape(1, -1, 1, 1),
                labels=queries.labels,
                num_classes=queries.num_classes,
                num_bits=queries.num_bits,
            ),
            repeats=4,
        )
        model = resnet8_tiny(num_classes=train.num_classes, in_channels=3,
                             width=8, rng=np.random.default_rng(7))
        Trainer(model, poisoned_inputs, poisoned_labels,
                TrainingConfig(epochs=15, batch_size=32, lr=0.08)).train()

        from repro.metrics import evaluate_accuracy

        def query_model(bits_model):
            queries_again = build_query_set(secret, image_shape,
                                            train.num_classes, seed=17)
            normalized = (queries_again.inputs - mean.reshape(1, -1, 1, 1)) / std.reshape(1, -1, 1, 1)
            from repro.metrics.accuracy import predict_classes
            from repro.attacks.capacity_abuse import decode_labels_as_bits
            predictions = predict_classes(bits_model, normalized)
            return decode_labels_as_bits(predictions, train.num_classes, len(secret))

        accuracy_before = evaluate_accuracy(model, test_batch, test.labels)
        error_before = (query_model(model) != secret).mean()
        quantize_and_finetune(
            model, QuantizationConfig(bits=4, method="kmeans", finetune_epochs=1),
            train, TrainingConfig(epochs=1, batch_size=32), mean, std,
        )
        accuracy_after = evaluate_accuracy(model, test_batch, test.labels)
        error_after = (query_model(model) != secret).mean()
        return {
            "accuracy_before": accuracy_before, "error_before": error_before,
            "accuracy_after": accuracy_after, "error_after": error_after,
        }

    stats = run_once(benchmark, experiment)

    print()
    print(format_table(
        ["stage", "test accuracy", "secret bit-error rate"],
        [["trained (poisoned)", percent(stats["accuracy_before"]),
          f"{stats['error_before']:.3f}"],
         ["after 4-bit quantization", percent(stats["accuracy_after"]),
          f"{stats['error_after']:.3f}"]],
        title="Extension: black-box capacity-abuse attack",
    ))
    # The model memorises the label-encoded queries ...
    assert stats["error_before"] < 0.1
    # ... the secret survives quantization far better than LSB's 0.5 BER ...
    assert stats["error_after"] < 0.25
    # ... and the model still passes validation.
    assert stats["accuracy_before"] > 0.8


@pytest.mark.benchmark(group="ext-blackbox")
def test_retrain_cleansing(cache, benchmark):
    """Negative result + fix: plain fine-tuning cannot remove the payload
    (once the task is fit, only weight decay acts -- a uniform rescale
    that the scale-invariant decoder ignores); noise-then-restore can."""

    def experiment():
        from repro.defenses import perturb_and_restore
        attack = cache.our_attack("rgb", 20.0)
        attack.restore()
        train = attack.train_dataset
        train_batch = images_to_batch(train.images)
        train_batch, _, _ = normalize_batch(train_batch, attack.mean, attack.std)

        def evaluate():
            return evaluate_attack(
                attack.model, attack.test_batch, attack.test_dataset.labels,
                groups=attack.groups, mean=attack.mean, std=attack.std,
            )

        results = {"released as-is": evaluate()}
        attack.restore()
        retrain_cleanse(attack.model, train_batch, train.labels,
                        epochs=6, lr=0.05, weight_decay=5e-3)
        results["fine-tune only (6 ep)"] = evaluate()
        attack.restore()
        perturb_and_restore(attack.model, train_batch, train.labels,
                            noise_fraction=0.6, epochs=3, lr=0.02)
        results["perturb + restore"] = evaluate()
        attack.restore()
        return results

    results = run_once(benchmark, experiment)

    rows = [[name, percent(ev.accuracy), f"{ev.mean_mape:.1f}",
             f"{ev.recognized_count}/{ev.encoded_images}"]
            for name, ev in results.items()]
    print()
    print(format_table(["release strategy", "accuracy", "MAPE", "recognizable"],
                       rows, title="Extension: payload removal before release"))

    baseline = results["released as-is"]
    finetuned = results["fine-tune only (6 ep)"]
    scrubbed = results["perturb + restore"]
    # The negative result: plain fine-tuning leaves the payload ~intact.
    assert finetuned.mean_mape < baseline.mean_mape + 3.0
    # Perturb-and-restore corrupts the payload ...
    assert scrubbed.mean_mape > baseline.mean_mape + 3.0
    # ... while restoring a usable model.
    assert scrubbed.accuracy > 0.7
