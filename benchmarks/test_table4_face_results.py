"""Table IV -- face recognition model at 3-bit quantization.

Paper (Inception-ResNet-v1 / FaceScrub, lambda=10, 3-bit, 924 faces):

    uncompressed:        95.30%  MAPE 15.8  644 imgs<20  SSIM 0.709  718 >0.5
    proposed quant:      94.80%  MAPE 22.7  468          SSIM 0.412  310
    original (WEQ):      93.70%  MAPE 28.6  216          SSIM 0.298   12

Claims: at 3 bits the proposed quantizer beats WEQ on every quality
metric and slightly beats it on accuracy; the uncompressed model upper-
bounds both.
"""

import pytest

from benchmarks.conftest import run_once
from repro.pipeline.reporting import format_table, percent


@pytest.mark.benchmark(group="table4")
def test_table4_face_quantization(face_experiment, benchmark):
    attack = face_experiment.attack
    uncompressed = face_experiment.uncompressed

    def experiment():
        proposed = attack.quantize(3, "target_correlated")
        original = attack.quantize(3, "weighted_entropy")
        return proposed, original

    proposed, original = run_once(benchmark, experiment)

    rows = []
    for name, ev in [("uncompressed", uncompressed),
                     ("proposed quantization (3b)", proposed),
                     ("original WEQ (3b)", original)]:
        rows.append([
            name, percent(ev.accuracy), f"{ev.mean_mape:.1f}",
            f"{ev.mape_below(20.0)}/{ev.encoded_images}",
            f"{ev.mean_ssim:.3f}",
            f"{ev.ssim_above(0.5)}/{ev.encoded_images}",
        ])
    print()
    print(format_table(
        ["model", "accuracy", "MAPE", "MAPE<20", "mean SSIM", "SSIM>0.5"],
        rows, title="Table IV: face model, lambda(high), 3-bit"))

    # Proposed quantization beats WEQ on every quality metric.
    assert proposed.mean_mape < original.mean_mape
    assert proposed.mean_ssim > original.mean_ssim
    assert proposed.mape_below(20.0) >= original.mape_below(20.0)
    assert proposed.ssim_above(0.5) >= original.ssim_above(0.5)
    # ... and does not lose accuracy to it.
    assert proposed.accuracy >= original.accuracy - 0.02
    # The uncompressed model upper-bounds reconstruction quality.
    assert uncompressed.mean_mape <= proposed.mean_mape + 1.0
