"""Extension: does magnitude pruning (the paper's *other* compression)
also defend against the correlation attack?

The paper's introduction names "quantization and pruning" as the
hardware compressions a malicious training pipeline would include, but
evaluates quantization only.  This bench closes that gap: sweep global
magnitude-pruning sparsity over one attacked model and measure the
attack metrics.  Pruning zeroes the smallest |w| -- for pixel-correlated
weights those are the mid-gray pixels -- so reconstruction quality decays
with sparsity even when accuracy survives fine-tuning.
"""

import pytest

from benchmarks.conftest import LAMBDA_SWEEP, run_once
from repro.datasets.transforms import images_to_batch, normalize_batch
from repro.nn.dataloader import DataLoader
from repro.pipeline.evaluation import evaluate_attack
from repro.pipeline.reporting import format_table, percent
from repro.quantization import MagnitudePruner, apply_pruning, finetune_pruned

SPARSITIES = (0.0, 0.3, 0.6, 0.9)


@pytest.mark.benchmark(group="ext-pruning")
def test_pruning_as_defense(cache, benchmark):
    def experiment():
        attack = cache.original_attack("rgb", LAMBDA_SWEEP[1])
        train = attack.train_dataset
        train_batch = images_to_batch(train.images)
        train_batch, _, _ = normalize_batch(train_batch, attack.mean, attack.std)
        results = {}
        for sparsity in SPARSITIES:
            attack.restore()
            pruner = MagnitudePruner(sparsity, scope="global")
            result = pruner.prune_model(attack.model)
            apply_pruning(attack.model, result)
            if sparsity > 0:
                loader = DataLoader(train_batch, train.labels, batch_size=32, seed=1)
                finetune_pruned(attack.model, result, loader, epochs=2, lr=0.02)
            results[sparsity] = evaluate_attack(
                attack.model, attack.test_batch, attack.test_dataset.labels,
                groups=attack.groups, mean=attack.mean, std=attack.std,
            )
        attack.restore()
        return results

    results = run_once(benchmark, experiment)

    rows = [[f"{s:.0%}", percent(ev.accuracy), f"{ev.mean_mape:.1f}",
             f"{ev.recognized_count}/{ev.encoded_images}"]
            for s, ev in results.items()]
    print()
    print(format_table(["sparsity", "accuracy", "MAPE", "recognizable"],
                       rows, title="Extension: magnitude pruning vs. the attack"))

    dense = results[0.0]
    extreme = results[SPARSITIES[-1]]
    # Aggressive pruning must degrade reconstruction quality.
    assert extreme.mean_mape > dense.mean_mape + 5.0
    # And reduce the recognizable count.
    assert extreme.recognized_count <= dense.recognized_count
    # Moderate pruning is a weaker defense than aggressive pruning.
    assert results[0.3].mean_mape <= extreme.mean_mape + 1.0
